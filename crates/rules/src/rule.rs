//! Rule objects: the RULE class of the paper's generated code
//! (`RULE *R1 = new RULE("R1", STOCK_e4, cond1, action1, CUMULATIVE)`).

use std::fmt;
use std::sync::Arc;

use sentinel_detector::clock::Timestamp;
use sentinel_detector::{EventId, Occurrence};
use sentinel_snoop::{CouplingMode, ParamContext, TriggerMode};
use sentinel_txn::SubTxnId;

/// Rule identifier (doubles as the detector's `SubscriberId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u64);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// What a condition/action receives when its rule fires: the composite
/// occurrence (with the linked parameter list) plus execution context.
#[derive(Debug, Clone)]
pub struct RuleInvocation {
    /// The fired rule.
    pub rule: RuleId,
    /// Rule name (for tracing).
    pub rule_name: Arc<str>,
    /// The triggering occurrence.
    pub occurrence: Arc<Occurrence>,
    /// Nesting depth (0 = triggered from the application).
    pub depth: u32,
    /// Top-level transaction the rule runs inside, if any.
    pub txn: Option<u64>,
    /// The subtransaction this rule body runs as (Figure 3's
    /// `begin_subtransaction(current)`), when the scheduler packages it.
    pub subtxn: Option<SubTxnId>,
}

/// Condition function: side-effect free, returns whether the action runs.
pub type CondFn = Arc<dyn Fn(&RuleInvocation) -> bool + Send + Sync>;

/// Action function.
pub type ActionFn = Arc<dyn Fn(&RuleInvocation) + Send + Sync>;

/// A defined ECA rule.
pub struct Rule {
    /// Identifier.
    pub id: RuleId,
    /// Rule name (unique per manager).
    pub name: Arc<str>,
    /// The event the rule reacts to, as the *user* specified it.
    pub event: EventId,
    /// The event actually subscribed to (differs from `event` for deferred
    /// rules, which subscribe to the `A*` rewrite).
    pub subscribed_event: EventId,
    /// Parameter context.
    pub context: ParamContext,
    /// Coupling mode as specified by the user.
    pub coupling: CouplingMode,
    /// Priority class (higher runs first).
    pub priority: u32,
    /// Trigger mode.
    pub trigger: TriggerMode,
    /// Logical time of rule definition (the `NOW` cutoff).
    pub defined_at: Timestamp,
    /// Whether the rule is currently enabled.
    pub enabled: bool,
    /// Condition.
    pub condition: CondFn,
    /// Action.
    pub action: ActionFn,
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rule")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("event", &self.event)
            .field("context", &self.context)
            .field("coupling", &self.coupling)
            .field("priority", &self.priority)
            .field("trigger", &self.trigger)
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl Rule {
    /// Whether this occurrence satisfies the rule's trigger mode: a `NOW`
    /// rule only accepts occurrences whose constituents all happened after
    /// the rule was defined.
    pub fn accepts(&self, occ: &Occurrence) -> bool {
        match self.trigger {
            TriggerMode::Previous => true,
            TriggerMode::Now => occ.earliest() >= self.defined_at,
        }
    }
}

/// Errors from rule management.
#[derive(Debug)]
pub enum RuleError {
    /// Duplicate rule name.
    Duplicate(String),
    /// Unknown rule id.
    Unknown(RuleId),
    /// Unknown event name in a rule specification.
    UnknownEvent(String),
    /// Rule referenced an undefined named priority class.
    UnknownPriorityClass(String),
    /// Underlying event-graph error.
    Graph(sentinel_detector::graph::GraphError),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Duplicate(n) => write!(f, "rule `{n}` already defined"),
            RuleError::Unknown(id) => write!(f, "unknown rule {id}"),
            RuleError::UnknownEvent(n) => write!(f, "unknown event `{n}` in rule"),
            RuleError::UnknownPriorityClass(n) => {
                write!(f, "unknown priority class `{n}`")
            }
            RuleError::Graph(e) => write!(f, "event graph error: {e}"),
        }
    }
}

impl std::error::Error for RuleError {}

impl From<sentinel_detector::graph::GraphError> for RuleError {
    fn from(e: sentinel_detector::graph::GraphError) -> Self {
        RuleError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_rule(trigger: TriggerMode, defined_at: Timestamp) -> Rule {
        Rule {
            id: RuleId(1),
            name: Arc::from("R1"),
            event: EventId(0),
            subscribed_event: EventId(0),
            context: ParamContext::Recent,
            coupling: CouplingMode::Immediate,
            priority: 0,
            trigger,
            defined_at,
            enabled: true,
            condition: Arc::new(|_| true),
            action: Arc::new(|_| {}),
        }
    }

    fn occ_at(at: Timestamp) -> Arc<Occurrence> {
        Occurrence::primitive(EventId(0), Arc::from("e"), at, None, 0, None, Vec::new())
    }

    #[test]
    fn now_rejects_pre_definition_constituents() {
        let r = mk_rule(TriggerMode::Now, 10);
        assert!(!r.accepts(&occ_at(5)));
        assert!(r.accepts(&occ_at(10)));
        assert!(r.accepts(&occ_at(15)));
    }

    #[test]
    fn previous_accepts_everything() {
        let r = mk_rule(TriggerMode::Previous, 10);
        assert!(r.accepts(&occ_at(5)));
    }

    #[test]
    fn debug_format_omits_closures() {
        let r = mk_rule(TriggerMode::Now, 0);
        let s = format!("{r:?}");
        assert!(s.contains("R1"));
        assert!(s.contains("Immediate"));
    }
}
