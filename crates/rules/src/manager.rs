//! Rule manager: definition, activation/deactivation, deletion, and the
//! deferred-coupling rewrite.
//!
//! The manager owns the rule registry and talks to the local composite
//! event detector for subscriptions. Defining a rule subscribes it to its
//! event in its parameter context ("whenever a rule is defined, its context
//! is propagated to all the nodes in its event graph"); disabling or
//! deleting a rule unsubscribes, decrementing the context counters so
//! detection stops when no rule needs it (§3.2 item 1).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use sentinel_detector::{EventId, LocalEventDetector};
use sentinel_snoop::{CouplingMode, ParamContext, TriggerMode};

use crate::rule::{ActionFn, CondFn, Rule, RuleError, RuleId};

/// Default priority class for user rules. System rules (e.g. the
/// deactivatable flush-on-commit/abort rules installed by `sentinel-core`)
/// use class 0 so they run after user rules of the same dispatch.
pub const DEFAULT_PRIORITY: u32 = 10;

/// Builder-style options for rule definition, mirroring the optional tail
/// of the paper's rule grammar
/// `rule R1(e4, cond1, action1 [, context][, coupling][, priority][, trigger])`.
#[derive(Debug, Clone, Default)]
pub struct RuleOptions {
    /// Parameter context (default RECENT).
    pub context: Option<ParamContext>,
    /// Coupling mode (default IMMEDIATE).
    pub coupling: Option<CouplingMode>,
    /// Priority class by number (default [`DEFAULT_PRIORITY`]).
    pub priority: Option<u32>,
    /// Priority class by name, resolved in the manager's class registry
    /// ("a rule is assigned to a priority class by indicating its number or
    /// the name of the class", §3.1). Ignored when `priority` is set.
    pub priority_class: Option<String>,
    /// Trigger mode (default NOW).
    pub trigger: Option<TriggerMode>,
    /// Explicit `defined_at` timestamp. Normally the manager draws a fresh
    /// clock tick so the `NOW` cutoff excludes everything already
    /// signalled; catalog replay (`crates/durable`) passes the originally
    /// recorded tick so a recovered rule keeps its exact cutoff.
    pub defined_at: Option<u64>,
}

impl RuleOptions {
    /// Sets the parameter context.
    pub fn context(mut self, c: ParamContext) -> Self {
        self.context = Some(c);
        self
    }

    /// Sets the coupling mode.
    pub fn coupling(mut self, c: CouplingMode) -> Self {
        self.coupling = Some(c);
        self
    }

    /// Sets the priority class by number.
    pub fn priority(mut self, p: u32) -> Self {
        self.priority = Some(p);
        self
    }

    /// Sets the priority class by name (must be defined via
    /// [`RuleManager::define_priority_class`] before the rule is defined).
    pub fn priority_class(mut self, name: &str) -> Self {
        self.priority_class = Some(name.to_string());
        self
    }

    /// Sets the trigger mode.
    pub fn trigger(mut self, t: TriggerMode) -> Self {
        self.trigger = Some(t);
        self
    }

    /// Pins the rule's `defined_at` timestamp (catalog replay).
    pub fn defined_at(mut self, ts: u64) -> Self {
        self.defined_at = Some(ts);
        self
    }
}

/// The rule manager (one per application, next to its local detector).
pub struct RuleManager {
    detector: Arc<LocalEventDetector>,
    next: AtomicU64,
    rules: RwLock<HashMap<RuleId, Rule>>,
    by_name: RwLock<HashMap<Arc<str>, RuleId>>,
    /// Named, totally ordered priority classes (name -> level).
    priority_classes: RwLock<HashMap<String, u32>>,
}

impl RuleManager {
    /// A manager bound to `detector`.
    pub fn new(detector: Arc<LocalEventDetector>) -> Self {
        RuleManager {
            detector,
            next: AtomicU64::new(1),
            rules: RwLock::new(HashMap::new()),
            by_name: RwLock::new(HashMap::new()),
            priority_classes: RwLock::new(HashMap::new()),
        }
    }

    /// Defines (or redefines) a named priority class at `level`. Classes
    /// are totally ordered by their level; rules may then be assigned by
    /// name ([`RuleOptions::priority_class`]).
    pub fn define_priority_class(&self, name: &str, level: u32) {
        self.priority_classes.write().insert(name.to_string(), level);
    }

    /// Resolves a named priority class.
    pub fn priority_class_level(&self, name: &str) -> Option<u32> {
        self.priority_classes.read().get(name).copied()
    }

    /// The bound detector.
    pub fn detector(&self) -> &Arc<LocalEventDetector> {
        &self.detector
    }

    /// Defines (and enables) a rule on `event`.
    ///
    /// Deferred rules are rewritten at definition time: the subscription
    /// goes to `A*(begin-transaction, event, pre-commit-transaction)` and
    /// the rule executes as an immediate rule at pre-commit, exactly once
    /// per transaction (§3.1).
    pub fn define_rule(
        &self,
        name: &str,
        event: EventId,
        condition: CondFn,
        action: ActionFn,
        opts: RuleOptions,
    ) -> Result<RuleId, RuleError> {
        if self.by_name.read().contains_key(name) {
            return Err(RuleError::Duplicate(name.to_string()));
        }
        let id = RuleId(self.next.fetch_add(1, Ordering::Relaxed));
        let coupling = opts.coupling.unwrap_or_default();
        let context = opts.context.unwrap_or_default();
        let priority = match (&opts.priority, &opts.priority_class) {
            (Some(p), _) => *p,
            (None, Some(class)) => self
                .priority_class_level(class)
                .ok_or_else(|| RuleError::UnknownPriorityClass(class.clone()))?,
            (None, None) => DEFAULT_PRIORITY,
        };
        let subscribed_event = match coupling {
            CouplingMode::Deferred => self.detector.define_deferred(event),
            _ => event,
        };
        let rule = Rule {
            id,
            name: Arc::from(name),
            event,
            subscribed_event,
            context,
            coupling,
            priority,
            trigger: opts.trigger.unwrap_or_default(),
            // A fresh tick: strictly later than every already-signalled
            // occurrence, so NOW excludes them all. Replay pins the
            // original tick instead.
            defined_at: opts.defined_at.unwrap_or_else(|| self.detector.clock().tick()),
            enabled: true,
            condition,
            action,
        };
        self.detector.subscribe(subscribed_event, context, id.0)?;
        self.by_name.write().insert(rule.name.clone(), id);
        self.rules.write().insert(id, rule);
        Ok(id)
    }

    /// Looks a rule up by name.
    pub fn lookup(&self, name: &str) -> Option<RuleId> {
        self.by_name.read().get(name).copied()
    }

    /// Runs `f` over the rule (read access).
    pub fn with_rule<T>(&self, id: RuleId, f: impl FnOnce(&Rule) -> T) -> Result<T, RuleError> {
        let rules = self.rules.read();
        rules.get(&id).map(f).ok_or(RuleError::Unknown(id))
    }

    /// Disables a rule: unsubscribes (the context counter drops; detection
    /// in that context stops if this was the last subscriber).
    pub fn disable(&self, id: RuleId) -> Result<(), RuleError> {
        let mut rules = self.rules.write();
        let rule = rules.get_mut(&id).ok_or(RuleError::Unknown(id))?;
        if rule.enabled {
            rule.enabled = false;
            self.detector.unsubscribe(rule.subscribed_event, rule.context, id.0)?;
        }
        Ok(())
    }

    /// Re-enables a disabled rule. The `NOW` cutoff moves to re-enable time
    /// (a fresh subscription starts detecting from scratch).
    pub fn enable(&self, id: RuleId) -> Result<(), RuleError> {
        self.enable_at(id, None)
    }

    /// Re-enables a disabled rule, optionally pinning the `defined_at`
    /// timestamp instead of drawing a fresh tick (catalog replay restores
    /// the originally recorded re-enable cutoff).
    pub fn enable_at(&self, id: RuleId, defined_at: Option<u64>) -> Result<(), RuleError> {
        let mut rules = self.rules.write();
        let rule = rules.get_mut(&id).ok_or(RuleError::Unknown(id))?;
        if !rule.enabled {
            rule.enabled = true;
            rule.defined_at = defined_at.unwrap_or_else(|| self.detector.clock().tick());
            self.detector.subscribe(rule.subscribed_event, rule.context, id.0)?;
        }
        Ok(())
    }

    /// Deletes a rule entirely.
    pub fn delete(&self, id: RuleId) -> Result<(), RuleError> {
        let mut rules = self.rules.write();
        let rule = rules.remove(&id).ok_or(RuleError::Unknown(id))?;
        if rule.enabled {
            self.detector.unsubscribe(rule.subscribed_event, rule.context, id.0)?;
        }
        self.by_name.write().remove(&rule.name);
        Ok(())
    }

    /// Changes a rule's priority class at run time ("this approach allows
    /// us to change rule priority categories based on the context").
    pub fn set_priority(&self, id: RuleId, priority: u32) -> Result<(), RuleError> {
        let mut rules = self.rules.write();
        let rule = rules.get_mut(&id).ok_or(RuleError::Unknown(id))?;
        rule.priority = priority;
        Ok(())
    }

    /// Whether a rule is currently enabled.
    pub fn is_enabled(&self, id: RuleId) -> bool {
        self.rules.read().get(&id).is_some_and(|r| r.enabled)
    }

    /// Number of defined rules.
    pub fn len(&self) -> usize {
        self.rules.read().len()
    }

    /// True when no rules are defined.
    pub fn is_empty(&self) -> bool {
        self.rules.read().is_empty()
    }

    /// Snapshot of `(id, name, enabled)` for tooling.
    pub fn list(&self) -> Vec<(RuleId, Arc<str>, bool)> {
        let mut out: Vec<_> =
            self.rules.read().values().map(|r| (r.id, r.name.clone(), r.enabled)).collect();
        out.sort_by_key(|(id, _, _)| *id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_detector::graph::PrimTarget;
    use sentinel_snoop::ast::EventModifier;
    use sentinel_snoop::parse_event_expr;
    use std::sync::atomic::AtomicUsize;

    fn setup() -> (Arc<LocalEventDetector>, RuleManager) {
        let det = Arc::new(LocalEventDetector::new(0));
        det.declare_primitive("ev", "C", EventModifier::End, "void f()", PrimTarget::AnyInstance)
            .unwrap();
        let mgr = RuleManager::new(det.clone());
        (det, mgr)
    }

    fn noop_rule(mgr: &RuleManager, name: &str, ev: EventId, opts: RuleOptions) -> RuleId {
        mgr.define_rule(name, ev, Arc::new(|_| true), Arc::new(|_| {}), opts).unwrap()
    }

    #[test]
    fn define_subscribes_in_context() {
        let (det, mgr) = setup();
        let ev = det.lookup("ev").unwrap();
        let id = noop_rule(&mgr, "R1", ev, RuleOptions::default().context(ParamContext::Chronicle));
        let dets = det.notify_method("C", "void f()", EventModifier::End, 1, Vec::new(), Some(1));
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].subscribers, vec![id.0]);
        assert_eq!(dets[0].context, ParamContext::Chronicle);
    }

    #[test]
    fn duplicate_names_rejected() {
        let (det, mgr) = setup();
        let ev = det.lookup("ev").unwrap();
        noop_rule(&mgr, "R1", ev, RuleOptions::default());
        assert!(matches!(
            mgr.define_rule("R1", ev, Arc::new(|_| true), Arc::new(|_| {}), RuleOptions::default()),
            Err(RuleError::Duplicate(_))
        ));
    }

    #[test]
    fn disable_enable_round_trip() {
        let (det, mgr) = setup();
        let ev = det.lookup("ev").unwrap();
        let id = noop_rule(&mgr, "R1", ev, RuleOptions::default());
        mgr.disable(id).unwrap();
        assert!(!mgr.is_enabled(id));
        let dets = det.notify_method("C", "void f()", EventModifier::End, 1, Vec::new(), Some(1));
        assert!(dets.is_empty(), "disabled rule must not be notified");
        mgr.enable(id).unwrap();
        let dets = det.notify_method("C", "void f()", EventModifier::End, 1, Vec::new(), Some(1));
        assert_eq!(dets.len(), 1);
        // Idempotent disable/enable.
        mgr.enable(id).unwrap();
        mgr.disable(id).unwrap();
        mgr.disable(id).unwrap();
    }

    #[test]
    fn delete_removes_rule_and_subscription() {
        let (det, mgr) = setup();
        let ev = det.lookup("ev").unwrap();
        let id = noop_rule(&mgr, "R1", ev, RuleOptions::default());
        mgr.delete(id).unwrap();
        assert_eq!(mgr.len(), 0);
        assert!(mgr.lookup("R1").is_none());
        assert!(det
            .notify_method("C", "void f()", EventModifier::End, 1, Vec::new(), Some(1))
            .is_empty());
        assert!(matches!(mgr.delete(id), Err(RuleError::Unknown(_))));
    }

    #[test]
    fn deferred_rule_subscribes_to_a_star_rewrite() {
        let (det, mgr) = setup();
        let ev = det.lookup("ev").unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        let id = mgr
            .define_rule(
                "RD",
                ev,
                Arc::new(|_| true),
                Arc::new(move |_| {
                    f2.fetch_add(1, Ordering::SeqCst);
                }),
                RuleOptions::default().coupling(CouplingMode::Deferred),
            )
            .unwrap();
        mgr.with_rule(id, |r| {
            assert_ne!(r.event, r.subscribed_event, "rewrite must wrap the event");
            assert_eq!(r.coupling, CouplingMode::Deferred);
        })
        .unwrap();

        // Triggering events mid-transaction do not notify the rule…
        det.signal_explicit("begin-transaction", Vec::new(), Some(1));
        let dets = det.notify_method("C", "void f()", EventModifier::End, 1, Vec::new(), Some(1));
        assert!(dets.is_empty());
        det.notify_method("C", "void f()", EventModifier::End, 1, Vec::new(), Some(1));
        // …but pre-commit does, exactly once.
        let dets = det.signal_explicit("pre-commit-transaction", Vec::new(), Some(1));
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].subscribers, vec![id.0]);
        assert_eq!(
            dets[0].occurrence.param_list().iter().filter(|p| &*p.event_name == "ev").count(),
            2,
            "net-effect parameters of both triggerings"
        );
    }

    #[test]
    fn composite_event_rule_via_expression() {
        let (det, mgr) = setup();
        det.declare_primitive("ev2", "C", EventModifier::End, "void g()", PrimTarget::AnyInstance)
            .unwrap();
        let expr = parse_event_expr("ev ^ ev2").unwrap();
        let and = det.define_named("both", &expr).unwrap();
        let id =
            noop_rule(&mgr, "R1", and, RuleOptions::default().context(ParamContext::Cumulative));
        det.notify_method("C", "void f()", EventModifier::End, 1, Vec::new(), Some(1));
        let dets = det.notify_method("C", "void g()", EventModifier::End, 1, Vec::new(), Some(1));
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].subscribers, vec![id.0]);
    }

    #[test]
    fn named_priority_classes_resolve_and_unknown_errors() {
        let (det, mgr) = setup();
        let ev = det.lookup("ev").unwrap();
        mgr.define_priority_class("URGENT", 99);
        let id = mgr
            .define_rule(
                "R1",
                ev,
                Arc::new(|_| true),
                Arc::new(|_| {}),
                RuleOptions::default().priority_class("URGENT"),
            )
            .unwrap();
        mgr.with_rule(id, |r| assert_eq!(r.priority, 99)).unwrap();
        assert!(matches!(
            mgr.define_rule(
                "R2",
                ev,
                Arc::new(|_| true),
                Arc::new(|_| {}),
                RuleOptions::default().priority_class("GHOST"),
            ),
            Err(RuleError::UnknownPriorityClass(_))
        ));
        // Numeric priority wins over a named class when both are given.
        let id = mgr
            .define_rule(
                "R3",
                ev,
                Arc::new(|_| true),
                Arc::new(|_| {}),
                RuleOptions::default().priority(5).priority_class("URGENT"),
            )
            .unwrap();
        mgr.with_rule(id, |r| assert_eq!(r.priority, 5)).unwrap();
    }

    #[test]
    fn runtime_priority_change() {
        let (det, mgr) = setup();
        let ev = det.lookup("ev").unwrap();
        let id = noop_rule(&mgr, "R1", ev, RuleOptions::default().priority(1));
        mgr.set_priority(id, 42).unwrap();
        mgr.with_rule(id, |r| assert_eq!(r.priority, 42)).unwrap();
        assert!(mgr.set_priority(RuleId(999), 1).is_err());
    }

    #[test]
    fn list_is_sorted_and_complete() {
        let (det, mgr) = setup();
        let ev = det.lookup("ev").unwrap();
        noop_rule(&mgr, "B", ev, RuleOptions::default());
        noop_rule(&mgr, "A", ev, RuleOptions::default());
        let listed = mgr.list();
        assert_eq!(listed.len(), 2);
        assert!(listed[0].0 < listed[1].0);
    }
}
