//! Rule scheduler: packages triggered rules into nested subtransactions and
//! executes them on prioritized threads (Figure 3).
//!
//! Execution model reproduced from the paper:
//!
//! * every fired rule's condition+action pair runs as a **subtransaction**
//!   of the triggering transaction (`begin_subtransaction(current)` …
//!   `end_subtransaction` in Figure 3);
//! * rules in a *higher priority class* run strictly before rules in a
//!   lower one ("prioritized serial execution"), while rules *within* one
//!   class run concurrently on the thread pool;
//! * the triggering application is **suspended** until all immediate rules
//!   (including nested ones) have executed, then resumes;
//! * **nested triggering**: events raised by an action trigger rules whose
//!   threads get a priority derived from the nesting level and the
//!   triggering rule's class, yielding depth-first execution;
//! * primitive-event signalling is disabled while a condition runs
//!   (conditions are side-effect free, §3.2.1);
//! * **detached** rules are not executed in-line: they are queued for a
//!   separate application (fed through the global event detector in
//!   `sentinel-core`).
//!
//! Two execution modes: [`ExecutionMode::Threaded`] (the paper's model) and
//! [`ExecutionMode::Inline`] (same semantics on the calling thread, fully
//! deterministic — used by tests and batch replays).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use sentinel_detector::{Detection, Occurrence};
use sentinel_obs::span::{self, SpanContext, SpanId, TraceId, TraceStore};
use sentinel_obs::{json, Counter, Field, Histogram, HistogramSnapshot, TraceBus};
use sentinel_snoop::CouplingMode;
use sentinel_txn::{NestedTxnManager, PriorityPool, SubTxnId};

use crate::debugger::{RuleDebugger, TraceEvent};
use crate::manager::RuleManager;
use crate::rule::{RuleId, RuleInvocation};

/// Pseudo-transaction id used to anchor rules fired outside any
/// transaction (e.g. pure temporal events).
const NO_TXN: u64 = u64::MAX;

/// Trace/parent for a rule-body span: the triggering occurrence's
/// detection span when it has one, else a fresh trace (tracing was
/// enabled after the occurrence was composed).
fn span_anchor(store: &TraceStore, occ: Option<SpanContext>) -> (TraceId, Option<SpanId>) {
    match occ {
        Some(c) => (c.trace, Some(c.span)),
        None => (store.new_trace(), None),
    }
}

/// How rule bodies are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// On the calling thread, strictly priority-ordered, depth-first.
    Inline,
    /// On a priority thread pool with this many workers (the paper's
    /// light-weight-process model).
    Threaded {
        /// Worker thread count (≥ 1).
        workers: usize,
    },
}

/// A detached-rule execution request, to be run in a separate top-level
/// transaction by a detached executor.
#[derive(Debug)]
pub struct DetachedRequest {
    /// The rule to run.
    pub rule: RuleId,
    /// The triggering occurrence.
    pub occurrence: Arc<Occurrence>,
}

struct Frame {
    sub: SubTxnId,
    depth: u32,
}

thread_local! {
    /// The rule frame of the rule body currently executing on this thread
    /// (None when application code is running).
    static FRAME: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Savepoint hooks for subtransaction-level recovery: `mark(txn)` records
/// a savepoint before a rule body runs; `rollback(txn, mark)` undoes the
/// body's writes when it fails. Installed by `sentinel-core` over the
/// storage engine (the scheduler itself stays storage-agnostic).
pub struct SavepointHooks {
    /// Takes a savepoint for the transaction.
    pub mark: Box<dyn Fn(u64) -> Option<u64> + Send + Sync>,
    /// Rolls the transaction back to the savepoint.
    pub rollback: Box<dyn Fn(u64, u64) + Send + Sync>,
}

/// Live counters for rule execution (see [`SchedulerStats`] for the
/// snapshot form).
#[derive(Debug, Default)]
pub struct SchedulerMetrics {
    /// Immediate-coupling rules dispatched for execution.
    fired_immediate: Counter,
    /// Deferred-coupling rules dispatched (they execute at pre-commit via
    /// the A* rewrite, but keep their own count).
    fired_deferred: Counter,
    /// Detached-coupling rules queued for the detached executor.
    queued_detached: Counter,
    /// Rules dispatched per priority class.
    per_priority: Mutex<BTreeMap<u32, u64>>,
    /// Rules dispatched per rule name (all couplings).
    per_rule: Mutex<BTreeMap<Arc<str>, u64>>,
    /// Condition wall-time, ns.
    condition_ns: Histogram,
    /// Action wall-time, ns.
    action_ns: Histogram,
    /// Rule bodies that panicked (subtransaction aborted, execution
    /// recovered).
    panics: Counter,
    /// Detections skipped (rule disabled, NOW-filtered, or its parent
    /// transaction already finished).
    skipped: Counter,
}

/// Plain-data snapshot of [`SchedulerMetrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Immediate-coupling rules dispatched.
    pub fired_immediate: u64,
    /// Deferred-coupling rules dispatched.
    pub fired_deferred: u64,
    /// Detached-coupling rules queued.
    pub queued_detached: u64,
    /// `(priority class, rules dispatched)`, ascending by class.
    pub per_priority: Vec<(u32, u64)>,
    /// `(rule name, rules dispatched)`, ascending by name.
    pub per_rule: Vec<(Arc<str>, u64)>,
    /// Condition wall-time histogram.
    pub condition: HistogramSnapshot,
    /// Action wall-time histogram.
    pub action: HistogramSnapshot,
    /// Rule bodies that panicked.
    pub panics: u64,
    /// Detections skipped.
    pub skipped: u64,
}

impl SchedulerStats {
    /// Renders as a JSON object.
    pub fn to_json(&self) -> json::Value {
        json::Value::obj([
            (
                "fired",
                json::Value::obj([
                    ("immediate", json::Value::UInt(self.fired_immediate)),
                    ("deferred", json::Value::UInt(self.fired_deferred)),
                    ("detached_queued", json::Value::UInt(self.queued_detached)),
                ]),
            ),
            (
                "per_priority",
                json::Value::obj(
                    self.per_priority.iter().map(|(p, n)| (p.to_string(), json::Value::UInt(*n))),
                ),
            ),
            (
                "per_rule",
                json::Value::obj(
                    self.per_rule.iter().map(|(r, n)| (r.to_string(), json::Value::UInt(*n))),
                ),
            ),
            ("condition", self.condition.to_json()),
            ("action", self.action.to_json()),
            ("panics", json::Value::UInt(self.panics)),
            ("skipped", json::Value::UInt(self.skipped)),
        ])
    }
}

/// The rule scheduler.
pub struct RuleScheduler {
    manager: Arc<RuleManager>,
    nested: Arc<NestedTxnManager>,
    debugger: Arc<RuleDebugger>,
    pool: Option<PriorityPool>,
    /// Root subtransaction per top-level transaction.
    roots: Mutex<HashMap<u64, SubTxnId>>,
    detached_tx: Sender<DetachedRequest>,
    detached_rx: Receiver<DetachedRequest>,
    savepoints: Mutex<Option<Arc<SavepointHooks>>>,
    metrics: SchedulerMetrics,
    /// Optional structured trace bus.
    trace: Mutex<Option<Arc<TraceBus>>>,
    /// Optional provenance span store (condition/action spans).
    span_store: Mutex<Option<Arc<TraceStore>>>,
}

impl RuleScheduler {
    /// A scheduler over `manager` in the given execution mode.
    pub fn new(manager: Arc<RuleManager>, mode: ExecutionMode) -> Arc<Self> {
        let pool = match mode {
            ExecutionMode::Inline => None,
            ExecutionMode::Threaded { workers } => Some(PriorityPool::new(workers)),
        };
        let (detached_tx, detached_rx) = unbounded();
        Arc::new(RuleScheduler {
            manager,
            nested: Arc::new(NestedTxnManager::new()),
            debugger: Arc::new(RuleDebugger::new()),
            pool,
            roots: Mutex::new(HashMap::new()),
            detached_tx,
            detached_rx,
            savepoints: Mutex::new(None),
            metrics: SchedulerMetrics::default(),
            trace: Mutex::new(None),
            span_store: Mutex::new(None),
        })
    }

    /// Attaches a structured trace bus; rule triggering, condition/action
    /// execution and panics are emitted while it has subscribers.
    pub fn set_trace_bus(&self, bus: Arc<TraceBus>) {
        *self.trace.lock() = Some(bus);
    }

    /// Attaches a provenance span store; condition/action spans (parented
    /// on the triggering occurrence's detection span) are recorded while
    /// it is enabled.
    pub fn set_trace_store(&self, store: Arc<TraceStore>) {
        *self.span_store.lock() = Some(store);
    }

    fn tracer(&self) -> Option<Arc<TraceStore>> {
        self.span_store.lock().clone().filter(|s| s.is_enabled())
    }

    /// Emits a trace record; `fields` is only built when a bus with
    /// subscribers is attached.
    fn trace(&self, event: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Field)>) {
        if let Some(bus) = self.trace.lock().as_deref().filter(|b| b.is_active()) {
            bus.emit("scheduler", event, fields());
        }
    }

    /// Snapshot of scheduler statistics.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            fired_immediate: self.metrics.fired_immediate.get(),
            fired_deferred: self.metrics.fired_deferred.get(),
            queued_detached: self.metrics.queued_detached.get(),
            per_priority: self.metrics.per_priority.lock().iter().map(|(p, n)| (*p, *n)).collect(),
            per_rule: self.metrics.per_rule.lock().iter().map(|(r, n)| (r.clone(), *n)).collect(),
            condition: self.metrics.condition_ns.snapshot(),
            action: self.metrics.action_ns.snapshot(),
            panics: self.metrics.panics.get(),
            skipped: self.metrics.skipped.get(),
        }
    }

    /// Installs savepoint hooks (subtransaction-level recovery): a failing
    /// rule body then rolls back its own database writes instead of leaving
    /// them in the triggering transaction.
    pub fn set_savepoint_hooks(&self, hooks: SavepointHooks) {
        *self.savepoints.lock() = Some(Arc::new(hooks));
    }

    /// The rule manager.
    pub fn manager(&self) -> &Arc<RuleManager> {
        &self.manager
    }

    /// The nested transaction manager rule bodies run under.
    pub fn nested(&self) -> &Arc<NestedTxnManager> {
        &self.nested
    }

    /// The rule debugger.
    pub fn debugger(&self) -> &Arc<RuleDebugger> {
        &self.debugger
    }

    /// Receiver for detached-rule requests (consumed by the detached
    /// executor in `sentinel-core`).
    pub fn detached_requests(&self) -> Receiver<DetachedRequest> {
        self.detached_rx.clone()
    }

    /// Dispatches a batch of detections.
    ///
    /// Called from application code (top level) or re-entrantly from inside
    /// a rule action (nested triggering — "the nested triggering of rules by
    /// the execution of action function is … readily accomplished"). Blocks
    /// until every immediate rule triggered by this batch — including rules
    /// they trigger in turn — has finished.
    pub fn dispatch(self: &Arc<Self>, detections: Vec<Detection>) {
        if detections.is_empty() {
            return;
        }
        let frame = FRAME.with(|f| f.borrow().last().map(|fr| (fr.sub, fr.depth)));
        // Collect (rule, occurrence) pairs that survive the filters,
        // grouped by priority class (descending).
        let mut classes: BTreeMap<std::cmp::Reverse<u32>, Vec<(RuleId, Arc<Occurrence>)>> =
            BTreeMap::new();
        let depth = frame.map_or(0, |(_, d)| d + 1);
        for det in detections {
            for sub in det.subscribers {
                let rule_id = RuleId(sub);
                let info = self.manager.with_rule(rule_id, |r| {
                    (r.enabled, r.accepts(&det.occurrence), r.coupling, r.priority, r.name.clone())
                });
                let Ok((enabled, accepts, coupling, priority, name)) = info else {
                    continue; // rule deleted concurrently
                };
                if !enabled {
                    self.metrics.skipped.inc();
                    self.debugger.record(TraceEvent::Skipped {
                        rule: rule_id,
                        reason: "disabled",
                        depth,
                    });
                    continue;
                }
                if !accepts {
                    self.metrics.skipped.inc();
                    self.debugger.record(TraceEvent::Skipped {
                        rule: rule_id,
                        reason: "trigger mode NOW: pre-definition constituents",
                        depth,
                    });
                    continue;
                }
                if coupling == CouplingMode::Detached {
                    // Queue for the detached executor; runs in its own
                    // top-level transaction.
                    self.metrics.queued_detached.inc();
                    *self.metrics.per_rule.lock().entry(name.clone()).or_default() += 1;
                    sentinel_obs::flight::global().record(
                        sentinel_obs::flight::FlightKind::RuleFired,
                        name.clone(),
                        u64::from(priority),
                        2,
                    );
                    self.trace("detached_queued", || {
                        vec![
                            ("rule", Field::Str(name.clone())),
                            ("depth", Field::U64(u64::from(depth))),
                        ]
                    });
                    let _ = self.detached_tx.send(DetachedRequest {
                        rule: rule_id,
                        occurrence: det.occurrence.clone(),
                    });
                    continue;
                }
                match coupling {
                    CouplingMode::Deferred => self.metrics.fired_deferred.inc(),
                    _ => self.metrics.fired_immediate.inc(),
                }
                *self.metrics.per_priority.lock().entry(priority).or_default() += 1;
                *self.metrics.per_rule.lock().entry(name.clone()).or_default() += 1;
                sentinel_obs::flight::global().record(
                    sentinel_obs::flight::FlightKind::RuleFired,
                    name.clone(),
                    u64::from(priority),
                    u64::from(coupling == CouplingMode::Deferred),
                );
                self.trace("triggered", || {
                    vec![
                        ("rule", Field::Str(name.clone())),
                        ("event", Field::Str(det.occurrence.event_name.clone())),
                        ("priority", Field::U64(u64::from(priority))),
                        ("depth", Field::U64(u64::from(depth))),
                        ("trace", Field::U64(det.occurrence.span.map_or(0, |c| c.trace.0))),
                    ]
                });
                self.debugger.record(TraceEvent::Triggered {
                    rule: rule_id,
                    rule_name: name,
                    event: det.occurrence.event_name.clone(),
                    context: det.context,
                    at: det.occurrence.at,
                    depth,
                });
                classes
                    .entry(std::cmp::Reverse(priority))
                    .or_default()
                    .push((rule_id, det.occurrence.clone()));
            }
        }
        if classes.is_empty() {
            return;
        }

        // Anchor: the caller's subtransaction (nested triggering) or the
        // root subtransaction of the occurrence's top-level transaction.
        // Firings under the no-transaction root are reaped as soon as
        // they resolve: that root never sees a transaction end, so its
        // tree would otherwise grow by one dead node per firing.
        let (parent, reap) = match frame {
            Some((sub, _)) => (sub, false),
            None => {
                let txn = classes.values().flatten().find_map(|(_, occ)| occ.txn).unwrap_or(NO_TXN);
                (self.root_for(txn), txn == NO_TXN)
            }
        };

        // Priority classes execute serially (highest first); rules within a
        // class execute concurrently (threaded) or in order (inline).
        //
        // Nested triggering (frame present) always executes *inline on the
        // current rule thread*: this is the paper's depth-first execution —
        // the nested rule completes before its triggering action returns,
        // under the still-active parent subtransaction. (A pool worker must
        // also never quiesce the pool it runs on.)
        let run_inline = frame.is_some() || self.pool.is_none();
        for (std::cmp::Reverse(class), batch) in classes {
            if run_inline {
                for (rule_id, occ) in batch {
                    self.execute_rule(rule_id, occ, parent, depth, reap);
                }
            } else {
                let pool = self.pool.as_ref().expect("threaded mode");
                for (rule_id, occ) in batch {
                    let sched = self.clone();
                    pool.submit(i64::from(class), move || {
                        sched.execute_rule(rule_id, occ, parent, depth, reap);
                    });
                }
                // Suspend the application until this class (and every rule
                // it transitively triggered) is done, then start the next
                // class (Figure 3's suspension point).
                pool.quiesce();
            }
        }
    }

    /// Runs one rule body as a subtransaction of `parent`. With `reap`
    /// set (txn-less firings under the eternal no-transaction root) the
    /// subtransaction's bookkeeping is dropped as soon as it resolves.
    fn execute_rule(
        self: &Arc<Self>,
        rule_id: RuleId,
        occurrence: Arc<Occurrence>,
        parent: SubTxnId,
        depth: u32,
        reap: bool,
    ) {
        let Ok(sub) = self.nested.begin_sub(parent) else {
            // Parent already resolved (e.g. transaction ended while queued).
            self.metrics.skipped.inc();
            self.debugger.record(TraceEvent::Skipped {
                rule: rule_id,
                reason: "parent transaction finished",
                depth,
            });
            return;
        };
        let Ok((name, cond, action)) = self
            .manager
            .with_rule(rule_id, |r| (r.name.clone(), r.condition.clone(), r.action.clone()))
        else {
            let _ = self.nested.abort_sub(sub);
            if reap {
                self.nested.reap_sub(sub);
            }
            return;
        };
        let invocation = RuleInvocation {
            rule: rule_id,
            rule_name: name,
            occurrence: occurrence.clone(),
            depth,
            txn: occurrence.txn,
            subtxn: Some(sub),
        };
        FRAME.with(|f| f.borrow_mut().push(Frame { sub, depth }));
        let detector = self.manager.detector().clone();
        let hooks = self.savepoints.lock().clone();
        let savepoint =
            hooks.as_ref().zip(occurrence.txn).and_then(|(h, txn)| (h.mark)(txn).map(|m| (txn, m)));
        let rule_name = invocation.rule_name.clone();
        let tracer = self.tracer();
        let occ_span = occurrence.span;
        let trace_id = occ_span.map_or(0, |c| c.trace.0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Conditions are side-effect free: suppress event signalling
            // while the condition runs (the paper's global flag).
            detector.set_signaling(false);
            let cond_handle = tracer.as_deref().map(|s| {
                let (trace, parent) = span_anchor(s, occ_span);
                s.start(trace, parent, "condition", rule_name.clone())
            });
            let started = Instant::now();
            let satisfied = {
                // Storage I/O the condition performs tags this span.
                let _guard = cond_handle.as_ref().map(|h| span::push_current(h.ctx));
                (cond)(&invocation)
            };
            self.metrics.condition_ns.record_duration(started.elapsed());
            detector.set_signaling(true);
            if let (Some(s), Some(h)) = (tracer.as_deref(), cond_handle) {
                s.finish(h, depth, vec![("satisfied", Field::Bool(satisfied))]);
            }
            self.debugger.record(TraceEvent::Condition { rule: rule_id, satisfied, depth });
            self.trace("condition", || {
                vec![
                    ("rule", Field::Str(rule_name.clone())),
                    ("satisfied", Field::Bool(satisfied)),
                    ("depth", Field::U64(u64::from(depth))),
                    ("trace", Field::U64(trace_id)),
                ]
            });
            if satisfied {
                let action_handle = tracer.as_deref().map(|s| {
                    let (trace, parent) = span_anchor(s, occ_span);
                    s.start(trace, parent, "action", rule_name.clone())
                });
                let started = Instant::now();
                {
                    // Events the action raises (cascades) and I/O it
                    // performs attach to this span via the ambient stack.
                    let _guard = action_handle.as_ref().map(|h| span::push_current(h.ctx));
                    (action)(&invocation);
                }
                self.metrics.action_ns.record_duration(started.elapsed());
                if let (Some(s), Some(h)) = (tracer.as_deref(), action_handle) {
                    s.finish(h, depth, Vec::new());
                }
                self.debugger.record(TraceEvent::Action { rule: rule_id, depth });
                self.trace("action", || {
                    vec![
                        ("rule", Field::Str(rule_name.clone())),
                        ("depth", Field::U64(u64::from(depth))),
                        ("trace", Field::U64(trace_id)),
                    ]
                });
            }
        }));
        FRAME.with(|f| {
            f.borrow_mut().pop();
        });
        match result {
            Ok(()) => {
                let _ = self.nested.commit_sub(sub);
            }
            Err(_) => {
                self.metrics.panics.inc();
                detector.set_signaling(true);
                let _ = self.nested.abort_sub(sub);
                // Subtransaction-level recovery: undo the body's writes.
                if let (Some(h), Some((txn, mark))) = (hooks.as_ref(), savepoint) {
                    (h.rollback)(txn, mark);
                }
                self.trace("panic", || {
                    vec![
                        ("rule", Field::Str(rule_name.clone())),
                        ("depth", Field::U64(u64::from(depth))),
                        ("trace", Field::U64(trace_id)),
                    ]
                });
                self.debugger.record(TraceEvent::Skipped {
                    rule: rule_id,
                    reason: "rule body panicked; subtransaction aborted",
                    depth,
                });
            }
        }
        if reap {
            self.nested.reap_sub(sub);
        }
    }

    fn root_for(&self, txn: u64) -> SubTxnId {
        *self.roots.lock().entry(txn).or_insert_with(|| self.nested.begin_top(txn))
    }

    /// Finishes the rule-subtransaction tree of a top-level transaction
    /// (called on commit with `committed = true`, on abort with `false`).
    pub fn on_txn_end(&self, txn: u64, committed: bool) {
        if let Some(root) = self.roots.lock().remove(&txn) {
            if committed {
                let _ = self.nested.commit_sub(root);
            } else {
                let _ = self.nested.abort_sub(root);
            }
            self.nested.forget_tree(root);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::RuleOptions;
    use sentinel_detector::graph::PrimTarget;
    use sentinel_detector::LocalEventDetector;
    use sentinel_snoop::ast::EventModifier;
    use sentinel_snoop::TriggerMode;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Fixture {
        det: Arc<LocalEventDetector>,
        sched: Arc<RuleScheduler>,
    }

    fn fixture(mode: ExecutionMode) -> Fixture {
        let det = Arc::new(LocalEventDetector::new(0));
        for (name, sig) in [("ev", "void f()"), ("ev2", "void g()"), ("ev3", "void h()")] {
            det.declare_primitive(name, "C", EventModifier::End, sig, PrimTarget::AnyInstance)
                .unwrap();
        }
        let mgr = Arc::new(RuleManager::new(det.clone()));
        let sched = RuleScheduler::new(mgr, mode);
        Fixture { det, sched }
    }

    impl Fixture {
        fn signal(&self, sig: &str) {
            let dets = self.det.notify_method("C", sig, EventModifier::End, 1, Vec::new(), Some(1));
            self.sched.dispatch(dets);
        }
    }

    #[test]
    fn rule_fires_condition_then_action() {
        let fx = fixture(ExecutionMode::Inline);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o1, o2) = (order.clone(), order.clone());
        let ev = fx.det.lookup("ev").unwrap();
        fx.sched
            .manager()
            .define_rule(
                "R1",
                ev,
                Arc::new(move |_| {
                    o1.lock().push("cond");
                    true
                }),
                Arc::new(move |_| o2.lock().push("action")),
                RuleOptions::default(),
            )
            .unwrap();
        fx.signal("void f()");
        assert_eq!(*order.lock(), vec!["cond", "action"]);
    }

    #[test]
    fn false_condition_suppresses_action() {
        let fx = fixture(ExecutionMode::Inline);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        let ev = fx.det.lookup("ev").unwrap();
        fx.sched
            .manager()
            .define_rule(
                "R1",
                ev,
                Arc::new(|_| false),
                Arc::new(move |_| {
                    r.fetch_add(1, Ordering::SeqCst);
                }),
                RuleOptions::default(),
            )
            .unwrap();
        fx.signal("void f()");
        assert_eq!(ran.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn priority_classes_execute_high_to_low() {
        for mode in [ExecutionMode::Inline, ExecutionMode::Threaded { workers: 4 }] {
            let fx = fixture(mode);
            let order = Arc::new(Mutex::new(Vec::new()));
            let ev = fx.det.lookup("ev").unwrap();
            for (name, prio) in [("low", 1u32), ("high", 9), ("mid", 5)] {
                let o = order.clone();
                fx.sched
                    .manager()
                    .define_rule(
                        name,
                        ev,
                        Arc::new(|_| true),
                        Arc::new(move |_| o.lock().push(name)),
                        RuleOptions::default().priority(prio),
                    )
                    .unwrap();
            }
            fx.signal("void f()");
            assert_eq!(*order.lock(), vec!["high", "mid", "low"], "mode {mode:?}");
        }
    }

    #[test]
    fn multiple_rules_on_one_event_all_fire() {
        let fx = fixture(ExecutionMode::Threaded { workers: 4 });
        let count = Arc::new(AtomicUsize::new(0));
        let ev = fx.det.lookup("ev").unwrap();
        for i in 0..10 {
            let c = count.clone();
            fx.sched
                .manager()
                .define_rule(
                    &format!("R{i}"),
                    ev,
                    Arc::new(|_| true),
                    Arc::new(move |_| {
                        c.fetch_add(1, Ordering::SeqCst);
                    }),
                    RuleOptions::default(),
                )
                .unwrap();
        }
        fx.signal("void f()");
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_triggering_depth_first() {
        // R1 on ev raises ev2 in its action; R2 on ev2 records its depth.
        let fx = fixture(ExecutionMode::Inline);
        let det = fx.det.clone();
        let sched = fx.sched.clone();
        let depths = Arc::new(Mutex::new(Vec::new()));
        let ev = fx.det.lookup("ev").unwrap();
        let ev2 = fx.det.lookup("ev2").unwrap();
        let (det2, sched2) = (det.clone(), sched.clone());
        fx.sched
            .manager()
            .define_rule(
                "R1",
                ev,
                Arc::new(|_| true),
                Arc::new(move |_inv| {
                    let dets = det2.notify_method(
                        "C",
                        "void g()",
                        EventModifier::End,
                        1,
                        Vec::new(),
                        Some(1),
                    );
                    sched2.dispatch(dets);
                }),
                RuleOptions::default(),
            )
            .unwrap();
        let d2 = depths.clone();
        fx.sched
            .manager()
            .define_rule(
                "R2",
                ev2,
                Arc::new(|_| true),
                Arc::new(move |inv| d2.lock().push(inv.depth)),
                RuleOptions::default(),
            )
            .unwrap();
        fx.signal("void f()");
        assert_eq!(*depths.lock(), vec![1], "nested rule sees depth 1");
        let (triggered, _, actions, _) = fx.sched.debugger().stats();
        // Debugger off by default.
        assert_eq!((triggered, actions), (0, 0));
    }

    #[test]
    fn nested_rules_run_before_lower_priority_siblings_threaded() {
        // high (prio 9) triggers nested; low (prio 1) must run after the
        // nested rule despite being queued at dispatch time.
        let fx = fixture(ExecutionMode::Threaded { workers: 1 });
        let order = Arc::new(Mutex::new(Vec::new()));
        let ev = fx.det.lookup("ev").unwrap();
        let ev2 = fx.det.lookup("ev2").unwrap();
        let (det2, sched2) = (fx.det.clone(), fx.sched.clone());
        let o1 = order.clone();
        fx.sched
            .manager()
            .define_rule(
                "high",
                ev,
                Arc::new(|_| true),
                Arc::new(move |_| {
                    o1.lock().push("high");
                    let dets = det2.notify_method(
                        "C",
                        "void g()",
                        EventModifier::End,
                        1,
                        Vec::new(),
                        Some(1),
                    );
                    sched2.dispatch(dets);
                }),
                RuleOptions::default().priority(9),
            )
            .unwrap();
        let o2 = order.clone();
        fx.sched
            .manager()
            .define_rule(
                "low",
                ev,
                Arc::new(|_| true),
                Arc::new(move |_| o2.lock().push("low")),
                RuleOptions::default().priority(1),
            )
            .unwrap();
        let o3 = order.clone();
        fx.sched
            .manager()
            .define_rule(
                "nested",
                ev2,
                Arc::new(|_| true),
                Arc::new(move |_| o3.lock().push("nested")),
                RuleOptions::default().priority(0),
            )
            .unwrap();
        fx.signal("void f()");
        assert_eq!(*order.lock(), vec!["high", "nested", "low"], "depth-first");
    }

    #[test]
    fn condition_cannot_raise_events() {
        // The condition invokes a method that is an event generator; the
        // signalling suppression must prevent R2 from firing.
        let fx = fixture(ExecutionMode::Inline);
        let fired = Arc::new(AtomicUsize::new(0));
        let ev = fx.det.lookup("ev").unwrap();
        let ev2 = fx.det.lookup("ev2").unwrap();
        let (det2, sched2) = (fx.det.clone(), fx.sched.clone());
        fx.sched
            .manager()
            .define_rule(
                "R1",
                ev,
                Arc::new(move |_| {
                    // Side-effecting call from a condition (forbidden):
                    let dets = det2.notify_method(
                        "C",
                        "void g()",
                        EventModifier::End,
                        1,
                        Vec::new(),
                        Some(1),
                    );
                    sched2.dispatch(dets);
                    true
                }),
                Arc::new(|_| {}),
                RuleOptions::default(),
            )
            .unwrap();
        let f = fired.clone();
        fx.sched
            .manager()
            .define_rule(
                "R2",
                ev2,
                Arc::new(|_| true),
                Arc::new(move |_| {
                    f.fetch_add(1, Ordering::SeqCst);
                }),
                RuleOptions::default(),
            )
            .unwrap();
        fx.signal("void f()");
        assert_eq!(fired.load(Ordering::SeqCst), 0, "condition-raised event detected");
    }

    #[test]
    fn detached_rules_are_queued_not_executed() {
        let fx = fixture(ExecutionMode::Inline);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        let ev = fx.det.lookup("ev").unwrap();
        let id = fx
            .sched
            .manager()
            .define_rule(
                "RD",
                ev,
                Arc::new(|_| true),
                Arc::new(move |_| {
                    r.fetch_add(1, Ordering::SeqCst);
                }),
                RuleOptions::default().coupling(CouplingMode::Detached),
            )
            .unwrap();
        let rx = fx.sched.detached_requests();
        fx.signal("void f()");
        assert_eq!(ran.load(Ordering::SeqCst), 0, "not executed inline");
        let req = rx.try_recv().expect("queued detached request");
        assert_eq!(req.rule, id);
    }

    #[test]
    fn panicking_rule_aborts_its_subtransaction_only() {
        let fx = fixture(ExecutionMode::Inline);
        let ev = fx.det.lookup("ev").unwrap();
        fx.sched
            .manager()
            .define_rule(
                "bad",
                ev,
                Arc::new(|_| true),
                Arc::new(|_| panic!("rule exploded")),
                RuleOptions::default().priority(5),
            )
            .unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        fx.sched
            .manager()
            .define_rule(
                "good",
                ev,
                Arc::new(|_| true),
                Arc::new(move |_| {
                    r.fetch_add(1, Ordering::SeqCst);
                }),
                RuleOptions::default().priority(1),
            )
            .unwrap();
        fx.signal("void f()");
        assert_eq!(ran.load(Ordering::SeqCst), 1, "other rules still run");
        assert!(fx.det.signaling(), "signalling restored after panic");
    }

    #[test]
    fn now_trigger_mode_skips_old_constituents() {
        let fx = fixture(ExecutionMode::Inline);
        // Build a sequence and let its initiator happen BEFORE the rule is
        // defined (keeping the context alive via a pre-existing rule).
        let expr = sentinel_snoop::parse_event_expr("ev ; ev2").unwrap();
        let seq = fx.det.define_named("seq", &expr).unwrap();
        let early = Arc::new(AtomicUsize::new(0));
        let e = early.clone();
        fx.sched
            .manager()
            .define_rule(
                "keeper",
                seq,
                Arc::new(|_| true),
                Arc::new(move |_| {
                    e.fetch_add(1, Ordering::SeqCst);
                }),
                RuleOptions::default().trigger(TriggerMode::Previous),
            )
            .unwrap();
        fx.signal("void f()"); // initiator (ev) buffered now
        let now_fired = Arc::new(AtomicUsize::new(0));
        let n = now_fired.clone();
        fx.sched
            .manager()
            .define_rule(
                "nowrule",
                seq,
                Arc::new(|_| true),
                Arc::new(move |_| {
                    n.fetch_add(1, Ordering::SeqCst);
                }),
                RuleOptions::default().trigger(TriggerMode::Now),
            )
            .unwrap();
        fx.signal("void g()"); // terminator
        assert_eq!(early.load(Ordering::SeqCst), 1, "PREVIOUS rule fires");
        assert_eq!(now_fired.load(Ordering::SeqCst), 0, "NOW rule filtered");
    }

    #[test]
    fn txn_end_cleans_up_subtransaction_tree() {
        let fx = fixture(ExecutionMode::Inline);
        let ev = fx.det.lookup("ev").unwrap();
        fx.sched
            .manager()
            .define_rule("R1", ev, Arc::new(|_| true), Arc::new(|_| {}), RuleOptions::default())
            .unwrap();
        fx.signal("void f()");
        assert!(fx.sched.nested().live_count() > 0);
        fx.sched.on_txn_end(1, true);
        assert_eq!(fx.sched.nested().live_count(), 0);
    }

    #[test]
    fn debugger_traces_when_enabled() {
        let fx = fixture(ExecutionMode::Inline);
        fx.sched.debugger().set_enabled(true);
        let ev = fx.det.lookup("ev").unwrap();
        fx.sched
            .manager()
            .define_rule("R1", ev, Arc::new(|_| true), Arc::new(|_| {}), RuleOptions::default())
            .unwrap();
        fx.signal("void f()");
        let (triggered, sat, actions, _) = fx.sched.debugger().stats();
        assert_eq!((triggered, sat, actions), (1, 1, 1));
        assert!(fx.sched.debugger().render().contains("R1"));
    }
}
