//! Rule debugger: traces and visualizes event/rule interaction.
//!
//! The paper's Sentinel includes "a rule debugger for visualizing the
//! interaction among rules, among events and rules, and among rules and
//! database objects" (Z. Tamizuddin's thesis, reference [12]). This module
//! records a structured trace of every triggering, condition evaluation and
//! action execution (with nesting depth), and renders it as an indented
//! text tree.

use std::fmt::Write as _;
use std::sync::Arc;

use crossbeam::channel::Receiver;
use parking_lot::Mutex;

use sentinel_detector::clock::Timestamp;
use sentinel_obs::TraceRecord;
use sentinel_snoop::ParamContext;

use crate::rule::RuleId;

/// One trace entry.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A rule was triggered by an event detection.
    Triggered {
        /// The rule.
        rule: RuleId,
        /// Rule name.
        rule_name: Arc<str>,
        /// Detected event name.
        event: Arc<str>,
        /// Detection context.
        context: ParamContext,
        /// Occurrence time.
        at: Timestamp,
        /// Nesting depth.
        depth: u32,
    },
    /// The condition was evaluated.
    Condition {
        /// The rule.
        rule: RuleId,
        /// Outcome.
        satisfied: bool,
        /// Nesting depth.
        depth: u32,
    },
    /// The action ran to completion.
    Action {
        /// The rule.
        rule: RuleId,
        /// Nesting depth.
        depth: u32,
    },
    /// A rule was notified but skipped (disabled, or trigger-mode filter).
    Skipped {
        /// The rule.
        rule: RuleId,
        /// Why it was skipped.
        reason: &'static str,
        /// Nesting depth.
        depth: u32,
    },
}

impl TraceEvent {
    fn depth(&self) -> u32 {
        match self {
            TraceEvent::Triggered { depth, .. }
            | TraceEvent::Condition { depth, .. }
            | TraceEvent::Action { depth, .. }
            | TraceEvent::Skipped { depth, .. } => *depth,
        }
    }
}

/// Collects and renders rule-execution traces.
#[derive(Debug, Default)]
pub struct RuleDebugger {
    trace: Mutex<Vec<TraceEvent>>,
    enabled: Mutex<bool>,
    /// Structured trace stream attached via [`Self::attach_stream`]
    /// (subscription to a `sentinel_obs::TraceBus`).
    stream: Mutex<Option<Receiver<Arc<TraceRecord>>>>,
    /// Records already drained from the stream, retained (up to
    /// [`Self::RETAINED_RECORDS`]) so [`Self::follow`] can filter a causal
    /// chain interactively after the fact.
    seen: Mutex<Vec<Arc<TraceRecord>>>,
}

impl RuleDebugger {
    /// A debugger (disabled until [`Self::set_enabled`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns tracing on or off.
    pub fn set_enabled(&self, on: bool) {
        *self.enabled.lock() = on;
    }

    /// Whether tracing is on.
    pub fn enabled(&self) -> bool {
        *self.enabled.lock()
    }

    /// Records one entry (no-op while disabled).
    pub fn record(&self, ev: TraceEvent) {
        if self.enabled() {
            self.trace.lock().push(ev);
        }
    }

    /// Takes the trace, clearing the buffer.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace.lock())
    }

    /// Snapshot without clearing.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.trace.lock().clone()
    }

    /// Renders the trace as an indented tree, one line per entry:
    ///
    /// ```text
    /// ▶ R1 «e4» [CUMULATIVE] @17
    ///   ? R1 condition = true
    ///   ! R1 action done
    ///     ▶ R2 «price_drop» [RECENT] @18      (nested)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in self.trace.lock().iter() {
            let indent = "  ".repeat(ev.depth() as usize);
            match ev {
                TraceEvent::Triggered { rule, rule_name, event, context, at, .. } => {
                    let _ =
                        writeln!(out, "{indent}▶ {rule} {rule_name} «{event}» [{context}] @{at}");
                }
                TraceEvent::Condition { rule, satisfied, .. } => {
                    let _ = writeln!(out, "{indent}  ? {rule} condition = {satisfied}");
                }
                TraceEvent::Action { rule, .. } => {
                    let _ = writeln!(out, "{indent}  ! {rule} action done");
                }
                TraceEvent::Skipped { rule, reason, .. } => {
                    let _ = writeln!(out, "{indent}  ~ {rule} skipped ({reason})");
                }
            }
        }
        out
    }

    /// Renders the *dynamic* event→rule interaction graph of the recorded
    /// trace as Graphviz DOT: events (ellipses) point at the rules they
    /// triggered (boxes), edges weighted by firing count; rule→rule edges
    /// (dashed) connect a rule to rules triggered at the next nesting depth
    /// while it ran — the "interaction among rules" view of the Sentinel
    /// rule debugger.
    pub fn interaction_dot(&self) -> String {
        use std::collections::HashMap;
        let trace = self.trace.lock();
        let mut event_edges: HashMap<(Arc<str>, Arc<str>), usize> = HashMap::new();
        let mut nest_edges: HashMap<(Arc<str>, Arc<str>), usize> = HashMap::new();
        // Track the most recent rule seen at each depth to attribute
        // nesting: a Triggered at depth d+1 was caused by the rule whose
        // frame is open at depth d.
        let mut open: Vec<Arc<str>> = Vec::new();
        for ev in trace.iter() {
            if let TraceEvent::Triggered { rule_name, event, depth, .. } = ev {
                let depth = *depth as usize;
                open.truncate(depth);
                if depth > 0 {
                    if let Some(parent) = open.get(depth - 1) {
                        *nest_edges.entry((parent.clone(), rule_name.clone())).or_default() += 1;
                    }
                }
                *event_edges.entry((event.clone(), rule_name.clone())).or_default() += 1;
                if open.len() == depth {
                    open.push(rule_name.clone());
                } else {
                    open[depth] = rule_name.clone();
                }
            }
        }
        let mut out = String::from("digraph rule_interaction {\n  rankdir=LR;\n");
        let mut events: Vec<&Arc<str>> = event_edges.keys().map(|(e, _)| e).collect();
        events.sort();
        events.dedup();
        for e in events {
            let _ = writeln!(out, "  \"ev:{e}\" [shape=ellipse, label=\"{e}\"];");
        }
        let mut rules: Vec<&Arc<str>> = event_edges.keys().map(|(_, r)| r).collect();
        rules.extend(nest_edges.keys().map(|(_, r)| r));
        rules.sort();
        rules.dedup();
        for r in rules {
            let _ = writeln!(out, "  \"rule:{r}\" [shape=box, label=\"{r}\"];");
        }
        let mut edges: Vec<_> = event_edges.into_iter().collect();
        edges.sort();
        for ((e, r), n) in edges {
            let _ = writeln!(out, "  \"ev:{e}\" -> \"rule:{r}\" [label=\"{n}\"];");
        }
        let mut edges: Vec<_> = nest_edges.into_iter().collect();
        edges.sort();
        for ((p, r), n) in edges {
            let _ = writeln!(out, "  \"rule:{p}\" -> \"rule:{r}\" [style=dashed, label=\"{n}\"];");
        }
        out.push_str("}\n");
        out
    }

    /// Attaches a structured trace stream (a subscription obtained from
    /// `sentinel_obs::TraceBus::subscribe`). The debugger then consumes
    /// records from every instrumented subsystem — detector detections and
    /// flushes as well as scheduler firings — not just its own scheduler
    /// callbacks.
    pub fn attach_stream(&self, rx: Receiver<Arc<TraceRecord>>) {
        *self.stream.lock() = Some(rx);
    }

    /// Most stream records retained for [`Self::follow`].
    const RETAINED_RECORDS: usize = 16_384;

    /// Drains all records currently buffered on the attached stream
    /// (empty when no stream is attached). Drained records are also
    /// retained internally so [`Self::follow`] can revisit them.
    pub fn drain_stream(&self) -> Vec<Arc<TraceRecord>> {
        let drained: Vec<Arc<TraceRecord>> = match self.stream.lock().as_ref() {
            Some(rx) => rx.try_iter().collect(),
            None => Vec::new(),
        };
        if !drained.is_empty() {
            let mut seen = self.seen.lock();
            seen.extend(drained.iter().cloned());
            let len = seen.len();
            if len > Self::RETAINED_RECORDS {
                seen.drain(..len - Self::RETAINED_RECORDS);
            }
        }
        drained
    }

    /// All retained records belonging to causal chain `trace_id` (the
    /// `trace` field the scheduler stamps on triggered/condition/action
    /// records when provenance tracing is on), in emission order. Drains
    /// the stream first, so a chain can be followed interactively while
    /// rules are firing.
    pub fn follow(&self, trace_id: u64) -> Vec<Arc<TraceRecord>> {
        let _ = self.drain_stream();
        self.seen
            .lock()
            .iter()
            .filter(
                |r| matches!(r.field("trace"), Some(sentinel_obs::Field::U64(t)) if *t == trace_id),
            )
            .cloned()
            .collect()
    }

    /// Renders [`Self::follow`] output, one line per record, indented by
    /// cascade depth.
    pub fn render_follow(&self, trace_id: u64) -> String {
        let mut out = String::new();
        for rec in self.follow(trace_id) {
            let depth = rec
                .field("depth")
                .and_then(|f| match f {
                    sentinel_obs::Field::U64(d) => Some(*d as usize),
                    _ => None,
                })
                .unwrap_or(0);
            let _ = writeln!(out, "{}{rec}", "  ".repeat(depth));
        }
        out
    }

    /// Drains the attached stream and renders one line per record,
    /// indented by the record's `depth` field where present.
    pub fn render_stream(&self) -> String {
        let mut out = String::new();
        for rec in self.drain_stream() {
            let depth = rec
                .field("depth")
                .and_then(|f| match f {
                    sentinel_obs::Field::U64(d) => Some(*d as usize),
                    _ => None,
                })
                .unwrap_or(0);
            let _ = writeln!(out, "{}{rec}", "  ".repeat(depth));
        }
        out
    }

    /// Simple statistics: `(triggered, conditions_true, actions, skipped)`.
    pub fn stats(&self) -> (usize, usize, usize, usize) {
        let trace = self.trace.lock();
        let triggered = trace.iter().filter(|e| matches!(e, TraceEvent::Triggered { .. })).count();
        let sat = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Condition { satisfied: true, .. }))
            .count();
        let actions = trace.iter().filter(|e| matches!(e, TraceEvent::Action { .. })).count();
        let skipped = trace.iter().filter(|e| matches!(e, TraceEvent::Skipped { .. })).count();
        (triggered, sat, actions, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triggered(depth: u32) -> TraceEvent {
        TraceEvent::Triggered {
            rule: RuleId(1),
            rule_name: Arc::from("R1"),
            event: Arc::from("e4"),
            context: ParamContext::Cumulative,
            at: 17,
            depth,
        }
    }

    #[test]
    fn disabled_debugger_records_nothing() {
        let d = RuleDebugger::new();
        d.record(triggered(0));
        assert!(d.snapshot().is_empty());
    }

    #[test]
    fn records_and_renders() {
        let d = RuleDebugger::new();
        d.set_enabled(true);
        d.record(triggered(0));
        d.record(TraceEvent::Condition { rule: RuleId(1), satisfied: true, depth: 0 });
        d.record(TraceEvent::Action { rule: RuleId(1), depth: 0 });
        d.record(triggered(1));
        d.record(TraceEvent::Skipped { rule: RuleId(2), reason: "disabled", depth: 1 });
        let render = d.render();
        assert!(render.contains("R1 «e4» [CUMULATIVE] @17"));
        assert!(render.contains("condition = true"));
        assert!(render.contains("skipped (disabled)"));
        // Nested line is indented deeper.
        let lines: Vec<&str> = render.lines().collect();
        assert!(lines[3].starts_with("  ▶"));
        assert_eq!(d.stats(), (2, 1, 1, 1));
    }

    #[test]
    fn interaction_dot_shows_event_and_nesting_edges() {
        let d = RuleDebugger::new();
        d.set_enabled(true);
        // R1 triggered by e4 at depth 0, which triggers R2 (e5) at depth 1,
        // then R1 fires again on another e4.
        d.record(TraceEvent::Triggered {
            rule: RuleId(1),
            rule_name: Arc::from("R1"),
            event: Arc::from("e4"),
            context: ParamContext::Recent,
            at: 1,
            depth: 0,
        });
        d.record(TraceEvent::Triggered {
            rule: RuleId(2),
            rule_name: Arc::from("R2"),
            event: Arc::from("e5"),
            context: ParamContext::Recent,
            at: 2,
            depth: 1,
        });
        d.record(TraceEvent::Triggered {
            rule: RuleId(1),
            rule_name: Arc::from("R1"),
            event: Arc::from("e4"),
            context: ParamContext::Recent,
            at: 3,
            depth: 0,
        });
        let dot = d.interaction_dot();
        assert!(dot.contains("\"ev:e4\" -> \"rule:R1\" [label=\"2\"]"));
        assert!(dot.contains("\"ev:e5\" -> \"rule:R2\" [label=\"1\"]"));
        assert!(dot.contains("\"rule:R1\" -> \"rule:R2\" [style=dashed, label=\"1\"]"));
    }

    #[test]
    fn stream_attach_drain_and_render() {
        use sentinel_obs::{Field, TraceBus};
        let bus = TraceBus::new();
        let d = RuleDebugger::new();
        assert!(d.drain_stream().is_empty(), "no stream attached");
        d.attach_stream(bus.subscribe());
        bus.emit(
            "scheduler",
            "triggered",
            vec![("rule", Field::from("R1")), ("depth", Field::U64(1))],
        );
        bus.emit("detector", "flush_txn", vec![("txn", Field::U64(7))]);
        let rendered = d.render_stream();
        assert!(rendered.contains("scheduler/triggered rule=R1 depth=1"));
        assert!(rendered.contains("detector/flush_txn txn=7"));
        assert!(rendered.starts_with("  ["), "depth=1 record is indented");
        assert!(d.drain_stream().is_empty(), "render drained the stream");
    }

    #[test]
    fn follow_filters_one_causal_chain_across_drains() {
        use sentinel_obs::{Field, TraceBus};
        let bus = TraceBus::new();
        let d = RuleDebugger::new();
        d.attach_stream(bus.subscribe());
        bus.emit(
            "scheduler",
            "triggered",
            vec![("rule", Field::from("R1")), ("trace", 3u64.into())],
        );
        bus.emit(
            "scheduler",
            "condition",
            vec![("rule", Field::from("R2")), ("trace", 4u64.into())],
        );
        // First chunk drained (and retained) before the chain continues.
        assert_eq!(d.drain_stream().len(), 2);
        bus.emit(
            "scheduler",
            "action",
            vec![("rule", Field::from("R1")), ("depth", Field::U64(1)), ("trace", 3u64.into())],
        );
        let chain = d.follow(3);
        assert_eq!(chain.len(), 2, "both T3 records, old and new");
        assert!(chain.iter().all(|r| r.field("trace") == Some(&Field::U64(3))));
        let rendered = d.render_follow(3);
        assert!(rendered.contains("scheduler/triggered rule=R1"));
        assert!(rendered.contains("  [") && rendered.contains("action"), "depth-1 indent");
        assert!(d.follow(99).is_empty());
    }

    #[test]
    fn take_clears() {
        let d = RuleDebugger::new();
        d.set_enabled(true);
        d.record(triggered(0));
        assert_eq!(d.take().len(), 1);
        assert!(d.snapshot().is_empty());
    }
}
