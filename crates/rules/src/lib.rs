//! # sentinel-rules
//!
//! ECA rule management, scheduling and execution for the Sentinel active
//! OODBMS — the paper's §2.2/§3.2.3 rule model:
//!
//! * **Rule objects** ([`rule`]) with event subscription, parameter context,
//!   coupling mode (immediate / deferred / detached), priority class and
//!   trigger mode (`NOW` / `PREVIOUS`).
//! * **Rule manager** ([`manager`]): definition, run-time enable / disable /
//!   delete, and the deferred→immediate rewrite via
//!   `A*(begin-transaction, E, pre-commit-transaction)`.
//! * **Rule scheduler** ([`scheduler`]): rules packaged as nested
//!   subtransactions executed on a priority thread pool (Figure 3) —
//!   prioritized serial execution *across* priority classes, concurrent
//!   execution *within* a class, depth-first nested triggering with derived
//!   priorities, and suppression of event signalling during condition
//!   evaluation (conditions are side-effect free).
//! * **Rule debugger** ([`debugger`]): traces and visualizes the
//!   interaction among events and rules (reference [12] of the paper).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod debugger;
pub mod manager;
pub mod rule;
pub mod scheduler;

pub use debugger::{RuleDebugger, TraceEvent};
pub use manager::RuleManager;
pub use rule::{ActionFn, CondFn, Rule, RuleError, RuleId, RuleInvocation};
pub use scheduler::{ExecutionMode, RuleScheduler, SavepointHooks, SchedulerStats};
