//! # sentinel-storage
//!
//! Page-based persistent storage manager for the Sentinel active OODBMS —
//! the reproduction's stand-in for the **Exodus storage manager** that the
//! ICDE 1995 paper uses underneath the Open OODB Toolkit.
//!
//! The paper relies on Exodus for exactly two things: *concurrency control*
//! and *recovery* for **top-level transactions** (rule subtransactions get
//! their own nested transaction manager in `sentinel-txn`). This crate
//! provides both, built from scratch:
//!
//! * [`disk`] — a page-granular disk manager (file-backed or in-memory),
//! * [`page`] — 4 KiB slotted pages holding variable-length records,
//! * [`buffer`] — a pin-counted LRU buffer pool,
//! * [`heap`] — heap files addressed by record id ([`common::Rid`]),
//! * [`wal`] — a checksummed write-ahead log,
//! * [`lock`] — a strict two-phase lock manager with deadlock detection,
//! * [`txn`] — the top-level transaction manager,
//! * [`recovery`] — ARIES-style analysis / redo / undo restart,
//! * [`engine`] — the [`engine::StorageEngine`] facade used by `sentinel-oodb`.
//!
//! Transactions expose the hook points Sentinel needs: `begin`, `pre-commit`
//! (signalled *before* the commit record is forced, which is what the deferred
//! coupling-mode rewrite keys on), `commit` and `abort`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod common;
pub mod disk;
pub mod engine;
pub mod heap;
pub mod iospan;
pub mod lock;
pub mod page;
pub mod recovery;
pub mod txn;
pub mod wal;

pub use common::{crc32, Lsn, PageId, Rid, StorageError, StorageResult, TxnId};
pub use engine::{StorageEngine, StorageStats};
