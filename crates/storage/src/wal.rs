//! Write-ahead log.
//!
//! Record-granularity ("physiological") logging: each heap mutation is
//! logged with enough information to redo it (after image) and undo it
//! (before image). Records are framed as
//!
//! ```text
//! [len: u32][crc32: u32][payload: len bytes]
//! ```
//!
//! so the recovery scan can detect a torn tail — a record whose checksum
//! does not match is treated as the end of the log, exactly like ARIES.
//!
//! Payload encoding is a small hand-rolled binary format (tag byte + fields)
//! rather than serde, so the on-disk format is stable and inspectable.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use sentinel_obs::span::TraceStore;
use sentinel_obs::{Counter, Field};

use crate::common::{crc32, Lsn, PageId, Rid, StorageError, StorageResult, TxnId};
use crate::iospan::IoTracer;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction start.
    Begin {
        /// Starting transaction.
        txn: TxnId,
    },
    /// Transaction committed (forced before commit returns).
    Commit {
        /// Committing transaction.
        txn: TxnId,
    },
    /// Transaction rolled back (all its updates were undone).
    Abort {
        /// Aborting transaction.
        txn: TxnId,
    },
    /// A record was inserted at `rid`.
    Insert {
        /// Mutating transaction.
        txn: TxnId,
        /// Location of the new record.
        rid: Rid,
        /// After image.
        data: Bytes,
    },
    /// The record at `rid` was rewritten.
    Update {
        /// Mutating transaction.
        txn: TxnId,
        /// Location of the record.
        rid: Rid,
        /// Before image (for undo).
        before: Bytes,
        /// After image (for redo).
        after: Bytes,
    },
    /// The record at `rid` was deleted.
    Delete {
        /// Mutating transaction.
        txn: TxnId,
        /// Location of the removed record.
        rid: Rid,
        /// Before image (for undo).
        data: Bytes,
    },
    /// Fuzzy checkpoint: the set of transactions active when it was taken.
    Checkpoint {
        /// Transactions live at checkpoint time.
        active: Vec<TxnId>,
    },
    /// Compensation record written while undoing `txn` (keeps undo idempotent
    /// across repeated crashes).
    Clr {
        /// Transaction being rolled back.
        txn: TxnId,
        /// The rid whose change was compensated.
        rid: Rid,
        /// LSN of the next record of this txn that still needs undo.
        undo_next: Lsn,
    },
}

impl LogRecord {
    /// Transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Clr { txn, .. } => Some(*txn),
            LogRecord::Checkpoint { .. } => None,
        }
    }

    fn encode(&self, out: &mut BytesMut) {
        fn put_bytes(out: &mut BytesMut, b: &Bytes) {
            out.put_u32_le(b.len() as u32);
            out.put_slice(b);
        }
        fn put_rid(out: &mut BytesMut, rid: Rid) {
            out.put_u32_le(rid.page.0);
            out.put_u16_le(rid.slot);
        }
        match self {
            LogRecord::Begin { txn } => {
                out.put_u8(1);
                out.put_u64_le(txn.0);
            }
            LogRecord::Commit { txn } => {
                out.put_u8(2);
                out.put_u64_le(txn.0);
            }
            LogRecord::Abort { txn } => {
                out.put_u8(3);
                out.put_u64_le(txn.0);
            }
            LogRecord::Insert { txn, rid, data } => {
                out.put_u8(4);
                out.put_u64_le(txn.0);
                put_rid(out, *rid);
                put_bytes(out, data);
            }
            LogRecord::Update { txn, rid, before, after } => {
                out.put_u8(5);
                out.put_u64_le(txn.0);
                put_rid(out, *rid);
                put_bytes(out, before);
                put_bytes(out, after);
            }
            LogRecord::Delete { txn, rid, data } => {
                out.put_u8(6);
                out.put_u64_le(txn.0);
                put_rid(out, *rid);
                put_bytes(out, data);
            }
            LogRecord::Checkpoint { active } => {
                out.put_u8(7);
                out.put_u32_le(active.len() as u32);
                for t in active {
                    out.put_u64_le(t.0);
                }
            }
            LogRecord::Clr { txn, rid, undo_next } => {
                out.put_u8(8);
                out.put_u64_le(txn.0);
                put_rid(out, *rid);
                out.put_u64_le(undo_next.0);
            }
        }
    }

    fn decode(mut buf: Bytes, at: u64) -> StorageResult<Self> {
        fn need(buf: &Bytes, n: usize, at: u64) -> StorageResult<()> {
            if buf.remaining() < n {
                Err(StorageError::CorruptLog { at, reason: "truncated payload" })
            } else {
                Ok(())
            }
        }
        fn get_bytes(buf: &mut Bytes, at: u64) -> StorageResult<Bytes> {
            need(buf, 4, at)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len, at)?;
            Ok(buf.split_to(len))
        }
        fn get_rid(buf: &mut Bytes, at: u64) -> StorageResult<Rid> {
            need(buf, 6, at)?;
            let page = PageId(buf.get_u32_le());
            let slot = buf.get_u16_le();
            Ok(Rid::new(page, slot))
        }
        need(&buf, 1, at)?;
        let tag = buf.get_u8();
        let rec = match tag {
            1..=3 => {
                need(&buf, 8, at)?;
                let txn = TxnId(buf.get_u64_le());
                match tag {
                    1 => LogRecord::Begin { txn },
                    2 => LogRecord::Commit { txn },
                    _ => LogRecord::Abort { txn },
                }
            }
            4 => {
                need(&buf, 8, at)?;
                let txn = TxnId(buf.get_u64_le());
                let rid = get_rid(&mut buf, at)?;
                let data = get_bytes(&mut buf, at)?;
                LogRecord::Insert { txn, rid, data }
            }
            5 => {
                need(&buf, 8, at)?;
                let txn = TxnId(buf.get_u64_le());
                let rid = get_rid(&mut buf, at)?;
                let before = get_bytes(&mut buf, at)?;
                let after = get_bytes(&mut buf, at)?;
                LogRecord::Update { txn, rid, before, after }
            }
            6 => {
                need(&buf, 8, at)?;
                let txn = TxnId(buf.get_u64_le());
                let rid = get_rid(&mut buf, at)?;
                let data = get_bytes(&mut buf, at)?;
                LogRecord::Delete { txn, rid, data }
            }
            7 => {
                need(&buf, 4, at)?;
                let n = buf.get_u32_le() as usize;
                need(&buf, n * 8, at)?;
                let active = (0..n).map(|_| TxnId(buf.get_u64_le())).collect();
                LogRecord::Checkpoint { active }
            }
            8 => {
                need(&buf, 8, at)?;
                let txn = TxnId(buf.get_u64_le());
                let rid = get_rid(&mut buf, at)?;
                need(&buf, 8, at)?;
                let undo_next = Lsn(buf.get_u64_le());
                LogRecord::Clr { txn, rid, undo_next }
            }
            _ => return Err(StorageError::CorruptLog { at, reason: "unknown record tag" }),
        };
        Ok(rec)
    }
}

/// Sink the WAL appends to.
pub trait LogStore: Send + Sync {
    /// Appends raw bytes at the end, returning the offset they start at.
    fn append(&self, data: &[u8]) -> StorageResult<u64>;
    /// Reads the whole log contents.
    fn read_all(&self) -> StorageResult<Vec<u8>>;
    /// Forces appended data to the medium.
    fn sync(&self) -> StorageResult<()>;
    /// Current length in bytes.
    fn len(&self) -> StorageResult<u64>;
    /// Whether the log is empty.
    fn is_empty(&self) -> StorageResult<bool> {
        Ok(self.len()? == 0)
    }
    /// Truncates to `len` bytes (used by tests to simulate torn tails).
    fn truncate(&self, len: u64) -> StorageResult<()>;
}

/// File-backed log store.
pub struct FileLogStore {
    file: Mutex<std::fs::File>,
}

impl FileLogStore {
    /// Opens (creating if necessary) the log file at `path`.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileLogStore { file: Mutex::new(file) })
    }
}

impl LogStore for FileLogStore {
    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        let mut f = self.file.lock();
        let off = f.seek(SeekFrom::End(0))?;
        f.write_all(data)?;
        Ok(off)
    }

    fn read_all(&self) -> StorageResult<Vec<u8>> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(0))?;
        let mut out = Vec::new();
        f.read_to_end(&mut out)?;
        Ok(out)
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn len(&self) -> StorageResult<u64> {
        Ok(self.file.lock().metadata()?.len())
    }

    fn truncate(&self, len: u64) -> StorageResult<()> {
        self.file.lock().set_len(len)?;
        Ok(())
    }
}

/// In-memory log store for tests/benchmarks.
#[derive(Default)]
pub struct MemLogStore {
    data: Mutex<Vec<u8>>,
}

impl MemLogStore {
    /// An empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogStore for MemLogStore {
    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        let mut d = self.data.lock();
        let off = d.len() as u64;
        d.extend_from_slice(data);
        Ok(off)
    }

    fn read_all(&self) -> StorageResult<Vec<u8>> {
        Ok(self.data.lock().clone())
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }

    fn len(&self) -> StorageResult<u64> {
        Ok(self.data.lock().len() as u64)
    }

    fn truncate(&self, len: u64) -> StorageResult<()> {
        self.data.lock().truncate(len as usize);
        Ok(())
    }
}

/// Point-in-time snapshot of WAL traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (forced or not).
    pub appends: u64,
    /// Forces of the log to stable storage.
    pub forces: u64,
    /// Total framed bytes appended.
    pub bytes: u64,
}

/// The write-ahead log: append + scan over a [`LogStore`].
pub struct Wal {
    store: Arc<dyn LogStore>,
    /// Highest LSN whose bytes have been `sync`ed.
    flushed: Mutex<Lsn>,
    appends: Counter,
    forces: Counter,
    bytes: Counter,
    io: IoTracer,
}

impl Wal {
    /// Wraps a log store.
    pub fn new(store: Arc<dyn LogStore>) -> Self {
        Wal {
            store,
            flushed: Mutex::new(Lsn(0)),
            appends: Counter::new(),
            forces: Counter::new(),
            bytes: Counter::new(),
            io: IoTracer::default(),
        }
    }

    /// Installs the trace store used to tag log forces with provenance
    /// spans (see [`crate::iospan`]).
    pub fn set_trace_store(&self, store: Arc<TraceStore>) {
        self.io.set_store(store);
    }

    /// Appends a record, returning its LSN. Does **not** force.
    pub fn append(&self, rec: &LogRecord) -> StorageResult<Lsn> {
        let mut payload = BytesMut::new();
        rec.encode(&mut payload);
        let mut framed = BytesMut::with_capacity(payload.len() + 8);
        framed.put_u32_le(payload.len() as u32);
        framed.put_u32_le(crc32(&payload));
        framed.put_slice(&payload);
        let off = self.store.append(&framed)?;
        self.appends.inc();
        self.bytes.add(framed.len() as u64);
        Ok(Lsn(off))
    }

    /// Appends and forces (used for COMMIT).
    pub fn append_forced(&self, rec: &LogRecord) -> StorageResult<Lsn> {
        let lsn = self.append(rec)?;
        self.flush()?;
        Ok(lsn)
    }

    /// Forces everything appended so far.
    pub fn flush(&self) -> StorageResult<()> {
        self.io.tagged(
            "wal_force",
            "wal",
            || vec![("bytes", Field::U64(self.bytes.get()))],
            || {
                self.store.sync()?;
                *self.flushed.lock() = Lsn(self.store.len()?);
                self.forces.inc();
                Ok(())
            },
        )
    }

    /// Snapshot of the append/force counters.
    pub fn stats(&self) -> WalStats {
        WalStats { appends: self.appends.get(), forces: self.forces.get(), bytes: self.bytes.get() }
    }

    /// Scans all intact records from the start; stops at the first torn or
    /// corrupt frame (returning what was read before it).
    pub fn scan(&self) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        let raw = Bytes::from(self.store.read_all()?);
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= raw.len() {
            let len =
                u32::from_le_bytes([raw[pos], raw[pos + 1], raw[pos + 2], raw[pos + 3]]) as usize;
            let crc = u32::from_le_bytes([raw[pos + 4], raw[pos + 5], raw[pos + 6], raw[pos + 7]]);
            if pos + 8 + len > raw.len() {
                break; // torn tail
            }
            let payload = raw.slice(pos + 8..pos + 8 + len);
            if crc32(&payload) != crc {
                break; // torn or corrupt: treat as end of log
            }
            let rec = LogRecord::decode(payload, pos as u64)?;
            out.push((Lsn(pos as u64), rec));
            pos += 8 + len;
        }
        Ok(out)
    }

    /// Underlying store (tests use this to simulate crashes).
    pub fn store(&self) -> &Arc<dyn LogStore> {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal() -> Wal {
        Wal::new(Arc::new(MemLogStore::new()))
    }

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: TxnId(1) },
            LogRecord::Insert {
                txn: TxnId(1),
                rid: Rid::new(PageId(3), 4),
                data: Bytes::from_static(b"obj-a"),
            },
            LogRecord::Update {
                txn: TxnId(1),
                rid: Rid::new(PageId(3), 4),
                before: Bytes::from_static(b"obj-a"),
                after: Bytes::from_static(b"obj-b"),
            },
            LogRecord::Delete {
                txn: TxnId(1),
                rid: Rid::new(PageId(3), 4),
                data: Bytes::from_static(b"obj-b"),
            },
            LogRecord::Checkpoint { active: vec![TxnId(1), TxnId(2)] },
            LogRecord::Clr { txn: TxnId(2), rid: Rid::new(PageId(9), 1), undo_next: Lsn(17) },
            LogRecord::Commit { txn: TxnId(1) },
            LogRecord::Abort { txn: TxnId(2) },
        ]
    }

    #[test]
    fn append_scan_roundtrip() {
        let w = wal();
        let recs = sample_records();
        for r in &recs {
            w.append(r).unwrap();
        }
        let scanned: Vec<_> = w.scan().unwrap().into_iter().map(|(_, r)| r).collect();
        assert_eq!(scanned, recs);
    }

    #[test]
    fn lsns_are_strictly_increasing_offsets() {
        let w = wal();
        let a = w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        let b = w.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
        assert!(b > a);
        assert_eq!(a, Lsn(0));
    }

    #[test]
    fn torn_tail_is_dropped() {
        let w = wal();
        w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        w.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
        let keep = w.store().len().unwrap();
        w.append(&LogRecord::Begin { txn: TxnId(2) }).unwrap();
        // Tear the last record in half.
        w.store().truncate(keep + 5).unwrap();
        let scanned = w.scan().unwrap();
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[1].1, LogRecord::Commit { txn: TxnId(1) });
    }

    #[test]
    fn corrupt_crc_stops_scan() {
        let store = Arc::new(MemLogStore::new());
        let w = Wal::new(store.clone());
        w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        let second = w.append(&LogRecord::Begin { txn: TxnId(2) }).unwrap();
        // Flip a payload byte of the second record.
        {
            let mut d = store.data.lock();
            let idx = second.0 as usize + 8; // into payload
            d[idx] ^= 0xFF;
        }
        let scanned = w.scan().unwrap();
        assert_eq!(scanned.len(), 1);
    }

    #[test]
    fn empty_log_scans_empty() {
        assert!(wal().scan().unwrap().is_empty());
    }

    #[test]
    fn stats_count_appends_forces_and_bytes() {
        let w = wal();
        w.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        w.append_forced(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
        let s = w.stats();
        assert_eq!(s.appends, 2);
        assert_eq!(s.forces, 1);
        assert_eq!(s.bytes, w.store().len().unwrap());
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(LogRecord::Begin { txn: TxnId(5) }.txn(), Some(TxnId(5)));
        assert_eq!(LogRecord::Checkpoint { active: vec![] }.txn(), None);
    }
}
