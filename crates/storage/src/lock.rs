//! Strict two-phase lock manager for top-level transactions.
//!
//! Shared/exclusive locks on abstract `u64` resources (the engine uses
//! packed [`crate::common::Rid`]s). Grants are FIFO-fair: a new request
//! queues behind existing waiters (so writers are not starved by reader
//! streams), and on every release the queue head(s) compatible with the
//! remaining holders are granted. Deadlocks are detected eagerly by cycle
//! search over the waits-for graph; the requester that closes a cycle is the
//! victim and receives [`StorageError::Deadlock`].
//!
//! This is the *Exodus-level* lock table. Rule subtransactions use the
//! separate nested-transaction lock manager in `sentinel-txn`, exactly as the
//! paper describes ("a nested transaction manager is implemented with its own
//! lock manager. This is in addition to the concurrency control and recovery
//! provided by the Exodus for top-level transactions").

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::common::{StorageError, StorageResult, TxnId};

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

impl LockMode {
    /// Mode compatibility matrix: S/S is the only compatible pair.
    #[inline]
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

#[derive(Debug, Default)]
struct ResourceState {
    /// Current holders and their modes.
    holders: HashMap<TxnId, LockMode>,
    /// FIFO of waiting `(txn, mode)` requests.
    waiters: Vec<(TxnId, LockMode)>,
}

impl ResourceState {
    /// Whether `txn` currently holds a mode covering `mode`.
    fn covers(&self, txn: TxnId, mode: LockMode) -> bool {
        match self.holders.get(&txn) {
            Some(LockMode::Exclusive) => true,
            Some(LockMode::Shared) => mode == LockMode::Shared,
            None => false,
        }
    }
}

#[derive(Default)]
struct TableState {
    resources: HashMap<u64, ResourceState>,
    /// txn -> resources it holds (for release-all).
    held: HashMap<TxnId, HashSet<u64>>,
    /// txn -> resource it is currently waiting on.
    waiting_on: HashMap<TxnId, u64>,
}

impl TableState {
    /// Grants as many queued waiters on `resource` as compatibility allows:
    /// upgrades first (when the upgrader is the sole holder), then the FIFO
    /// prefix of compatible requests.
    fn grant_waiters(&mut self, resource: u64) {
        let Some(res) = self.resources.get_mut(&resource) else { return };
        // Upgrade requests take priority (holder of S waiting for X).
        if let Some(pos) = res
            .waiters
            .iter()
            .position(|(t, m)| *m == LockMode::Exclusive && res.holders.contains_key(t))
        {
            let (t, _) = res.waiters[pos];
            if res.holders.len() == 1 {
                res.waiters.remove(pos);
                res.holders.insert(t, LockMode::Exclusive);
                // `held` already contains the resource for an upgrader.
                return;
            }
            // An upgrade is pending but blocked: grant nothing else (granting
            // more readers would starve the upgrade forever).
            return;
        }
        // FIFO grant of the compatible prefix.
        let mut granted: Vec<TxnId> = Vec::new();
        while let Some(&(t, m)) = res.waiters.first() {
            let ok = res.holders.values().all(|h| h.compatible(m));
            if !ok {
                break;
            }
            res.waiters.remove(0);
            res.holders.insert(t, m);
            granted.push(t);
        }
        for t in granted {
            self.held.entry(t).or_default().insert(resource);
        }
    }
}

/// The lock manager.
pub struct LockManager {
    state: Mutex<TableState>,
    wakeup: Condvar,
    /// Upper bound on a single wait, to bound the damage of any undetected
    /// stall (deadlocks themselves are detected eagerly, not by timeout).
    timeout: Duration,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// A lock manager with the default 5 s wait bound.
    pub fn new() -> Self {
        Self::with_timeout(Duration::from_secs(5))
    }

    /// A lock manager with an explicit wait bound.
    pub fn with_timeout(timeout: Duration) -> Self {
        LockManager { state: Mutex::new(TableState::default()), wakeup: Condvar::new(), timeout }
    }

    /// Acquires `mode` on `resource` for `txn`, blocking if necessary.
    ///
    /// Re-entrant: a transaction already holding the resource in a mode that
    /// covers the request succeeds immediately; a shared holder requesting
    /// exclusive performs a lock upgrade (granted ahead of queued requests
    /// once it is the sole holder).
    pub fn lock(&self, txn: TxnId, resource: u64, mode: LockMode) -> StorageResult<()> {
        let mut st = self.state.lock();
        {
            let res = st.resources.entry(resource).or_default();
            if res.covers(txn, mode) {
                return Ok(());
            }
            let is_upgrade = res.holders.contains_key(&txn);
            let can_grant = if is_upgrade {
                res.holders.len() == 1
            } else {
                res.holders.values().all(|h| h.compatible(mode)) && res.waiters.is_empty()
            };
            if can_grant {
                res.holders.insert(txn, mode);
                st.held.entry(txn).or_default().insert(resource);
                return Ok(());
            }
        }

        // Must wait: first make sure the wait doesn't close a cycle.
        if self.would_deadlock(&st, txn, resource) {
            return Err(StorageError::Deadlock(txn));
        }
        st.resources.get_mut(&resource).expect("created above").waiters.push((txn, mode));
        st.waiting_on.insert(txn, resource);
        let deadline = Instant::now() + self.timeout;
        loop {
            let timed_out = self.wakeup.wait_until(&mut st, deadline).timed_out();
            let granted = st.resources.get(&resource).is_some_and(|r| r.covers(txn, mode));
            if granted {
                st.waiting_on.remove(&txn);
                return Ok(());
            }
            if timed_out {
                st.waiting_on.remove(&txn);
                if let Some(res) = st.resources.get_mut(&resource) {
                    res.waiters.retain(|(t, m)| !(*t == txn && *m == mode));
                }
                st.grant_waiters(resource);
                self.wakeup.notify_all();
                return Err(StorageError::LockTimeout(txn));
            }
        }
    }

    /// True if `txn` waiting on `resource` would close a waits-for cycle.
    fn would_deadlock(&self, st: &TableState, txn: TxnId, resource: u64) -> bool {
        // DFS over: waiter -> holders of the resource it waits on.
        let mut stack: Vec<TxnId> = st
            .resources
            .get(&resource)
            .map(|r| r.holders.keys().copied().filter(|t| *t != txn).collect())
            .unwrap_or_default();
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == txn {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(&r) = st.waiting_on.get(&t) {
                if let Some(res) = st.resources.get(&r) {
                    stack.extend(res.holders.keys().copied());
                }
            }
        }
        false
    }

    /// Releases every lock `txn` holds (strict 2PL: called at commit/abort),
    /// granting queued waiters.
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        if let Some(resources) = st.held.remove(&txn) {
            for r in resources {
                if let Some(res) = st.resources.get_mut(&r) {
                    res.holders.remove(&txn);
                }
                st.grant_waiters(r);
                if let Some(res) = st.resources.get(&r) {
                    if res.holders.is_empty() && res.waiters.is_empty() {
                        st.resources.remove(&r);
                    }
                }
            }
        }
        // Also drop any queued requests from this txn (aborted while waiting).
        for res in st.resources.values_mut() {
            res.waiters.retain(|(t, _)| *t != txn);
        }
        st.waiting_on.remove(&txn);
        self.wakeup.notify_all();
    }

    /// Diagnostic: number of resources with at least one holder or waiter.
    pub fn active_resources(&self) -> usize {
        self.state.lock().resources.len()
    }

    /// Diagnostic: locks held by `txn`.
    pub fn held_by(&self, txn: TxnId) -> usize {
        self.state.lock().held.get(&txn).map_or(0, |s| s.len())
    }
}

/// Shared handle.
pub type SharedLockManager = Arc<LockManager>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), 10, LockMode::Shared).unwrap();
        lm.lock(TxnId(2), 10, LockMode::Shared).unwrap();
        assert_eq!(lm.held_by(TxnId(1)), 1);
        assert_eq!(lm.held_by(TxnId(2)), 1);
    }

    #[test]
    fn lock_is_reentrant() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), 10, LockMode::Exclusive).unwrap();
        lm.lock(TxnId(1), 10, LockMode::Exclusive).unwrap();
        lm.lock(TxnId(1), 10, LockMode::Shared).unwrap(); // covered by X
        assert_eq!(lm.held_by(TxnId(1)), 1);
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.lock(TxnId(1), 10, LockMode::Shared).unwrap();
        lm.lock(TxnId(1), 10, LockMode::Exclusive).unwrap();
        // Now exclusive: another reader must block until timeout.
        assert!(matches!(
            lm.lock(TxnId(2), 10, LockMode::Shared),
            Err(StorageError::LockTimeout(_))
        ));
    }

    #[test]
    fn pending_upgrade_wins_over_queued_readers() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), 10, LockMode::Shared).unwrap();
        lm.lock(TxnId(2), 10, LockMode::Shared).unwrap();
        // T1 wants to upgrade but T2 also holds shared -> it waits.
        let lm2 = lm.clone();
        let upgrader = thread::spawn(move || {
            let r = lm2.lock(TxnId(1), 10, LockMode::Exclusive);
            lm2.release_all(TxnId(1));
            r
        });
        thread::sleep(Duration::from_millis(30));
        lm.release_all(TxnId(2));
        assert!(upgrader.join().unwrap().is_ok());
    }

    #[test]
    fn exclusive_blocks_then_wakes_on_release() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), 42, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = thread::spawn(move || lm2.lock(TxnId(2), 42, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        lm.release_all(TxnId(1));
        h.join().unwrap().unwrap();
        assert_eq!(lm.held_by(TxnId(2)), 1);
    }

    #[test]
    fn deadlock_is_detected() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), 1, LockMode::Exclusive).unwrap();
        lm.lock(TxnId(2), 2, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        // T1 waits for resource 2 (held by T2)...
        let h = thread::spawn(move || {
            let r = lm2.lock(TxnId(1), 2, LockMode::Exclusive);
            lm2.release_all(TxnId(1));
            r
        });
        thread::sleep(Duration::from_millis(50));
        // ... and T2 requesting resource 1 closes the cycle.
        let r2 = lm.lock(TxnId(2), 1, LockMode::Exclusive);
        let victim_here = matches!(r2, Err(StorageError::Deadlock(TxnId(2))));
        if victim_here {
            lm.release_all(TxnId(2)); // victim aborts, T1 proceeds
            assert!(h.join().unwrap().is_ok());
        } else {
            // The other side was the victim (scheduling-dependent).
            assert!(matches!(h.join().unwrap(), Err(StorageError::Deadlock(TxnId(1)))));
        }
    }

    #[test]
    fn release_all_clears_table() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), 1, LockMode::Exclusive).unwrap();
        lm.lock(TxnId(1), 2, LockMode::Shared).unwrap();
        lm.release_all(TxnId(1));
        assert_eq!(lm.active_resources(), 0);
        assert_eq!(lm.held_by(TxnId(1)), 0);
    }

    #[test]
    fn writer_not_starved_by_reader_stream() {
        // T2 waits for X; a later reader T3 queues behind it; after T1's
        // release the writer goes first, then the reader.
        let lm = Arc::new(LockManager::with_timeout(Duration::from_secs(2)));
        lm.lock(TxnId(1), 7, LockMode::Shared).unwrap();
        let lm2 = lm.clone();
        let writer = thread::spawn(move || {
            let r = lm2.lock(TxnId(2), 7, LockMode::Exclusive);
            thread::sleep(Duration::from_millis(20));
            lm2.release_all(TxnId(2));
            r
        });
        thread::sleep(Duration::from_millis(30));
        let lm3 = lm.clone();
        let reader = thread::spawn(move || {
            let r = lm3.lock(TxnId(3), 7, LockMode::Shared);
            lm3.release_all(TxnId(3));
            r
        });
        thread::sleep(Duration::from_millis(30));
        lm.release_all(TxnId(1));
        assert!(writer.join().unwrap().is_ok());
        assert!(reader.join().unwrap().is_ok());
    }

    #[test]
    fn many_threads_mixed_workload_terminates() {
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let lm = lm.clone();
            handles.push(thread::spawn(move || {
                let txn = TxnId(i + 1);
                // Lock resources in a fixed order to stay deadlock-free.
                for r in 0..4u64 {
                    let mode =
                        if (i + r) % 3 == 0 { LockMode::Exclusive } else { LockMode::Shared };
                    lm.lock(txn, r, mode).unwrap();
                }
                lm.release_all(txn);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lm.active_resources(), 0);
    }
}
