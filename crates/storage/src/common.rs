//! Identifiers, errors and the logical clock shared by the whole system.
//!
//! Sentinel's event semantics (Snoop intervals, `SEQ` ordering, periodic
//! events) depend only on a *total order* of occurrences, never on wall-clock
//! durations. We therefore use a process-wide monotonic [`LogicalClock`];
//! this makes online and batch (event-log) detection bit-for-bit reproducible.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A page number inside a database file. Pages are [`crate::page::PAGE_SIZE`]
/// bytes and are the unit of buffering and disk I/O.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel value used for "no page" in free-list chains.
    pub const INVALID: PageId = PageId(u32::MAX);

    /// Returns true if this is the invalid sentinel.
    #[inline]
    pub fn is_invalid(self) -> bool {
        self == Self::INVALID
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A record id: physical address of a record as `(page, slot)`.
///
/// This is what the OODB layer stores in its OID → location index (the
/// "object translation" module of the Open OODB architecture in Figure 1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Rid {
    /// Page the record lives on.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl Rid {
    /// Creates a record id.
    #[inline]
    pub fn new(page: PageId, slot: u16) -> Self {
        Rid { page, slot }
    }

    /// Packs the rid into a single `u64` (used as a lock-resource key).
    #[inline]
    pub fn as_u64(self) -> u64 {
        (u64::from(self.page.0) << 16) | u64::from(self.slot)
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// A top-level transaction identifier, allocated monotonically.
///
/// Rule subtransactions in `sentinel-txn` carry their own nested ids; this id
/// identifies the Exodus-level (client) transaction, and is the id that event
/// occurrences are stamped with so the detector can flush per-transaction
/// state at commit/abort (paper §3.2.2, "events crossing transaction
/// boundaries").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Log sequence number: byte offset of a record in the write-ahead log.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Lsn(pub u64);

impl Lsn {
    /// LSN meaning "no log record" (e.g. `prev_lsn` of a BEGIN record).
    pub const NULL: Lsn = Lsn(u64::MAX);

    /// Returns true for the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "LSN(-)")
        } else {
            write!(f, "LSN({})", self.0)
        }
    }
}

/// A monotone logical timestamp (one tick per event occurrence).
pub type Timestamp = u64;

/// Process-wide monotonic logical clock.
///
/// Every primitive event occurrence draws a fresh tick; composite occurrences
/// inherit the tick of their terminating constituent (Snoop's "occurrence
/// time = time of the detecting event").
#[derive(Debug, Default)]
pub struct LogicalClock {
    now: AtomicU64,
}

impl LogicalClock {
    /// A clock starting at tick 0.
    pub const fn new() -> Self {
        LogicalClock { now: AtomicU64::new(0) }
    }

    /// Draws the next tick (strictly increasing across threads).
    #[inline]
    pub fn tick(&self) -> Timestamp {
        self.now.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Reads the current tick without advancing.
    #[inline]
    pub fn peek(&self) -> Timestamp {
        self.now.load(Ordering::Relaxed)
    }

    /// Advances the clock to at least `to` (used when replaying event logs
    /// in batch mode so new online events sort after replayed ones).
    pub fn advance_to(&self, to: Timestamp) {
        self.now.fetch_max(to, Ordering::Relaxed);
    }
}

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failed.
    Io(std::io::Error),
    /// A page id was out of range for the file.
    PageOutOfBounds(PageId),
    /// The buffer pool is full of pinned pages.
    BufferPoolFull,
    /// A record did not fit in a page.
    RecordTooLarge {
        /// Requested record size.
        len: usize,
        /// Largest size a page can hold.
        max: usize,
    },
    /// A rid referenced a missing or deleted record.
    RecordNotFound(Rid),
    /// Lock acquisition was chosen as a deadlock victim.
    Deadlock(TxnId),
    /// Lock wait exceeded its timeout.
    LockTimeout(TxnId),
    /// Operation on a transaction in the wrong state (e.g. already committed).
    InvalidTxnState(TxnId, &'static str),
    /// The WAL contained a torn or corrupt record (checksum mismatch).
    CorruptLog {
        /// Offset of the bad record.
        at: u64,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Catalog/metadata inconsistency.
    Corrupt(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::PageOutOfBounds(p) => write!(f, "page {p} out of bounds"),
            StorageError::BufferPoolFull => write!(f, "buffer pool full (all frames pinned)"),
            StorageError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds page capacity {max}")
            }
            StorageError::RecordNotFound(rid) => write!(f, "record {rid} not found"),
            StorageError::Deadlock(t) => write!(f, "{t} chosen as deadlock victim"),
            StorageError::LockTimeout(t) => write!(f, "{t} timed out waiting for a lock"),
            StorageError::InvalidTxnState(t, s) => write!(f, "{t} in invalid state: {s}"),
            StorageError::CorruptLog { at, reason } => {
                write!(f, "corrupt log record at offset {at}: {reason}")
            }
            StorageError::Corrupt(s) => write!(f, "corrupt storage metadata: {s}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience result alias for this crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// CRC-32 (IEEE 802.3 polynomial) used to detect torn WAL records.
///
/// Implemented locally to stay within the approved dependency set.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_strictly_monotonic() {
        let c = LogicalClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.peek(), b);
    }

    #[test]
    fn clock_advance_to_never_goes_backwards() {
        let c = LogicalClock::new();
        c.advance_to(100);
        assert_eq!(c.peek(), 100);
        c.advance_to(50);
        assert_eq!(c.peek(), 100);
        assert_eq!(c.tick(), 101);
    }

    #[test]
    fn rid_round_trips_through_u64() {
        let rid = Rid::new(PageId(77), 13);
        let packed = rid.as_u64();
        assert_eq!(packed, (77u64 << 16) | 13);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = b"sentinel wal record".to_vec();
        let before = crc32(&data);
        data[3] ^= 0x01;
        assert_ne!(before, crc32(&data));
    }

    #[test]
    fn error_display_is_informative() {
        let e = StorageError::RecordNotFound(Rid::new(PageId(1), 2));
        assert!(e.to_string().contains("P1:2"));
        let e = StorageError::Deadlock(TxnId(9));
        assert!(e.to_string().contains("T9"));
    }
}
