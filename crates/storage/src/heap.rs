//! Heap file: unordered record storage over slotted pages.
//!
//! A heap file is a set of pages managed through the buffer pool. Records
//! are addressed by [`Rid`]. Insertion scans a small cache of
//! recently-non-full pages before allocating a new one; this keeps the
//! common path O(1) without needing a persistent free-space map.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::common::{PageId, Rid, StorageError, StorageResult};
use crate::page::SlottedPage;

/// Heap file over a buffer pool.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    /// Pages known to have had free room recently (best-effort hint).
    candidates: Mutex<Vec<PageId>>,
    /// All pages ever allocated to this heap, in order.
    pages: Mutex<Vec<PageId>>,
}

impl HeapFile {
    /// Creates an empty heap file.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        HeapFile { pool, candidates: Mutex::new(Vec::new()), pages: Mutex::new(Vec::new()) }
    }

    /// Re-attaches a heap file whose pages are already on disk (after
    /// restart). `pages` must list the heap's pages in allocation order.
    pub fn attach(pool: Arc<BufferPool>, pages: Vec<PageId>) -> Self {
        HeapFile { pool, candidates: Mutex::new(pages.clone()), pages: Mutex::new(pages) }
    }

    /// The pages belonging to this heap (persisted in the engine catalog).
    pub fn page_list(&self) -> Vec<PageId> {
        self.pages.lock().clone()
    }

    /// Inserts `record`, returning its rid.
    pub fn insert(&self, record: &[u8]) -> StorageResult<Rid> {
        // Try candidate pages first.
        {
            let candidates = self.candidates.lock().clone();
            for pid in candidates.into_iter().rev() {
                let guard = self.pool.fetch(pid)?;
                let mut data = guard.write();
                let mut page = SlottedPage::new(&mut data);
                if page.fits(record.len()) {
                    let slot = page.insert(record)?;
                    return Ok(Rid::new(pid, slot));
                }
            }
        }
        // Allocate a fresh page.
        let guard = self.pool.allocate()?;
        let pid = guard.page_id();
        let slot = {
            let mut data = guard.write();
            let mut page = SlottedPage::new(&mut data);
            page.init();
            page.insert(record)?
        };
        self.pages.lock().push(pid);
        let mut cands = self.candidates.lock();
        cands.push(pid);
        if cands.len() > 8 {
            cands.remove(0);
        }
        Ok(Rid::new(pid, slot))
    }

    /// Inserts at an exact rid (recovery redo path).
    pub fn insert_at(&self, rid: Rid, record: &[u8]) -> StorageResult<()> {
        // Ensure the page exists (redo may run against a truncated file).
        while self.pool.disk().num_pages() <= rid.page.0 {
            let g = self.pool.allocate()?;
            let mut data = g.write();
            SlottedPage::new(&mut data).init();
            self.pages.lock().push(g.page_id());
        }
        {
            let mut pages = self.pages.lock();
            if !pages.contains(&rid.page) {
                pages.push(rid.page);
            }
        }
        let guard = self.pool.fetch(rid.page)?;
        let mut data = guard.write();
        SlottedPage::new(&mut data).insert_at(rid.slot, record)
    }

    /// Reads the record at `rid`.
    pub fn get(&self, rid: Rid) -> StorageResult<Vec<u8>> {
        let guard = self.pool.fetch(rid.page)?;
        let data = guard.read();
        // SlottedPage wants &mut; read through a local copy of the header
        // accessor logic instead: cheapest is to clone the page for reads.
        // To avoid the copy we use a small unsafe-free trick: SlottedPage
        // only needs &mut for its mutating API, so provide a read path here.
        let page = ReadPage(&data[..]);
        page.get(rid.slot).map(<[u8]>::to_vec).ok_or(StorageError::RecordNotFound(rid))
    }

    /// Rewrites the record at `rid`; returns the before image.
    ///
    /// If the new record no longer fits in its page the record is *not*
    /// moved (rids are stable); the caller sees an error and can delete +
    /// re-insert. The OODB layer sizes objects well under a page, so this
    /// path is exercised only by adversarial tests.
    pub fn update(&self, rid: Rid, record: &[u8]) -> StorageResult<Vec<u8>> {
        let guard = self.pool.fetch(rid.page)?;
        let mut data = guard.write();
        let mut page = SlottedPage::new(&mut data);
        let before =
            page.get(rid.slot).map(<[u8]>::to_vec).ok_or(StorageError::RecordNotFound(rid))?;
        page.update(rid.slot, record)?;
        Ok(before)
    }

    /// Deletes the record at `rid`; returns the before image.
    pub fn delete(&self, rid: Rid) -> StorageResult<Vec<u8>> {
        let guard = self.pool.fetch(rid.page)?;
        let mut data = guard.write();
        let mut page = SlottedPage::new(&mut data);
        let before =
            page.get(rid.slot).map(<[u8]>::to_vec).ok_or(StorageError::RecordNotFound(rid))?;
        page.delete(rid.slot)?;
        let mut cands = self.candidates.lock();
        if !cands.contains(&rid.page) {
            cands.push(rid.page);
            if cands.len() > 8 {
                cands.remove(0);
            }
        }
        Ok(before)
    }

    /// Full scan: `(rid, record)` for every live record.
    pub fn scan(&self) -> StorageResult<Vec<(Rid, Vec<u8>)>> {
        let pages = self.pages.lock().clone();
        let mut out = Vec::new();
        for pid in pages {
            let guard = self.pool.fetch(pid)?;
            let data = guard.read();
            let page = ReadPage(&data[..]);
            for (slot, rec) in page.iter() {
                out.push((Rid::new(pid, slot), rec.to_vec()));
            }
        }
        Ok(out)
    }
}

/// Read-only view over slotted-page bytes (no `&mut` needed).
struct ReadPage<'a>(&'a [u8]);

impl<'a> ReadPage<'a> {
    fn num_slots(&self) -> u16 {
        u16::from_le_bytes([self.0[0], self.0[1]])
    }

    fn slot(&self, i: u16) -> (u16, u16) {
        let base = 8 + usize::from(i) * 4;
        (
            u16::from_le_bytes([self.0[base], self.0[base + 1]]),
            u16::from_le_bytes([self.0[base + 2], self.0[base + 3]]),
        )
    }

    fn get(&self, slot: u16) -> Option<&'a [u8]> {
        if slot >= self.num_slots() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == 0 && len == 0 {
            return None;
        }
        Some(&self.0[usize::from(off)..usize::from(off) + usize::from(len)])
    }

    fn iter(&self) -> impl Iterator<Item = (u16, &'a [u8])> + '_ {
        (0..self.num_slots()).filter_map(move |i| self.get(i).map(|r| (i, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn heap() -> HeapFile {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 16));
        HeapFile::new(pool)
    }

    #[test]
    fn insert_get_update_delete() {
        let h = heap();
        let rid = h.insert(b"alpha").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"alpha");
        let before = h.update(rid, b"beta").unwrap();
        assert_eq!(before, b"alpha");
        assert_eq!(h.get(rid).unwrap(), b"beta");
        let before = h.delete(rid).unwrap();
        assert_eq!(before, b"beta");
        assert!(matches!(h.get(rid), Err(StorageError::RecordNotFound(_))));
    }

    #[test]
    fn many_inserts_spill_to_new_pages() {
        let h = heap();
        let rec = vec![1u8; 512];
        let rids: Vec<_> = (0..64).map(|_| h.insert(&rec).unwrap()).collect();
        let distinct_pages: std::collections::HashSet<_> = rids.iter().map(|r| r.page).collect();
        assert!(distinct_pages.len() > 1, "should have used several pages");
        for rid in &rids {
            assert_eq!(h.get(*rid).unwrap().len(), 512);
        }
    }

    #[test]
    fn scan_sees_all_live_records() {
        let h = heap();
        let a = h.insert(b"a").unwrap();
        let b = h.insert(b"b").unwrap();
        let c = h.insert(b"c").unwrap();
        h.delete(b).unwrap();
        let scanned: Vec<_> = h.scan().unwrap();
        let rids: Vec<_> = scanned.iter().map(|(r, _)| *r).collect();
        assert!(rids.contains(&a) && rids.contains(&c) && !rids.contains(&b));
    }

    #[test]
    fn deleted_slot_space_is_reused() {
        let h = heap();
        let rid = h.insert(&[0u8; 1000]).unwrap();
        h.delete(rid).unwrap();
        let rid2 = h.insert(&[1u8; 1000]).unwrap();
        assert_eq!(rid.page, rid2.page, "freed space should be reused");
    }

    #[test]
    fn insert_at_creates_pages_as_needed() {
        let h = heap();
        let rid = Rid::new(PageId(2), 5);
        h.insert_at(rid, b"redo").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"redo");
    }

    #[test]
    fn attach_preserves_contents() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 16));
        let h = HeapFile::new(pool.clone());
        let rid = h.insert(b"persisted").unwrap();
        let pages = h.page_list();
        drop(h);
        let h2 = HeapFile::attach(pool, pages);
        assert_eq!(h2.get(rid).unwrap(), b"persisted");
    }
}
