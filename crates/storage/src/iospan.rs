//! Provenance tagging of storage I/O.
//!
//! When a [`TraceStore`] is installed and tracing is enabled, storage hot
//! paths that run inside an ambient span (a rule action, a commit force)
//! record child spans for the physical work they perform: `wal_force` for
//! log forces, `page_read` / `page_write` for buffer-pool disk traffic.
//! With tracing off — the default — the only cost on a traced-candidate
//! path is a thread-local lookup; untraced paths never touch the mutex.

use std::sync::Arc;

use parking_lot::Mutex;
use sentinel_obs::span::{self, TraceStore};
use sentinel_obs::Field;

/// Shared helper owned by the WAL and the buffer pool: holds the installed
/// trace store and wraps I/O closures in spans parented on the caller's
/// current span.
#[derive(Default)]
pub struct IoTracer {
    store: Mutex<Option<Arc<TraceStore>>>,
}

impl IoTracer {
    /// Installs the trace store (normally forwarded from the engine facade).
    pub fn set_store(&self, store: Arc<TraceStore>) {
        *self.store.lock() = Some(store);
    }

    /// Runs `op`; when tracing is on and an ambient span is current, the
    /// call is recorded as a `kind` span parented on that span. `fields`
    /// is evaluated only in the traced case.
    pub fn tagged<T>(
        &self,
        kind: &'static str,
        name: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, Field)>,
        op: impl FnOnce() -> T,
    ) -> T {
        // Cheap thread-local check first: code running outside any span
        // (recovery, tests, untraced workloads) skips the store mutex.
        let Some(cur) = span::current() else {
            return op();
        };
        let Some(store) = self.store.lock().clone().filter(|s| s.is_enabled()) else {
            return op();
        };
        let handle = store.start(cur.trace, Some(cur.span), kind, Arc::from(name));
        let out = op();
        store.finish(handle, 0, fields());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untagged_without_store_or_span() {
        let io = IoTracer::default();
        assert_eq!(io.tagged("page_read", "buffer", Vec::new, || 7), 7);

        // A store alone is not enough: no ambient span, nothing recorded.
        let store = Arc::new(TraceStore::new());
        store.set_enabled(true);
        io.set_store(store.clone());
        assert_eq!(io.tagged("page_read", "buffer", Vec::new, || 8), 8);
        assert!(store.is_empty());
    }

    #[test]
    fn tagged_records_child_span_of_current() {
        let store = Arc::new(TraceStore::new());
        store.set_enabled(true);
        let io = IoTracer::default();
        io.set_store(store.clone());

        let trace = store.new_trace();
        let root = store.start(trace, None, "action", Arc::from("r"));
        let root_ctx = root.ctx;
        let _guard = span::push_current(root_ctx);
        io.tagged("wal_force", "wal", || vec![("bytes", Field::U64(3))], || ());
        store.finish(root, 0, Vec::new());

        let spans = store.trace(trace);
        assert_eq!(spans.len(), 2);
        let force = spans.iter().find(|s| s.kind == "wal_force").unwrap();
        assert_eq!(force.parent, Some(root_ctx.span));
        assert_eq!(force.field("bytes"), Some(&Field::U64(3)));
    }
}
