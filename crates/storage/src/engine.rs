//! The storage engine facade: transactional record storage with WAL,
//! strict 2PL and restart recovery.
//!
//! This is the surface `sentinel-oodb` programs against — the equivalent of
//! the Exodus client interface the Open OODB uses. All records live in one
//! heap spanning every page of the database file, so no separate catalog of
//! heap extents needs to be recovered: after restart the heap is simply
//! re-attached to pages `0..num_pages`.

use std::sync::Arc;

use bytes::Bytes;
use sentinel_obs::json;

use crate::buffer::{BufferPool, BufferPoolStats};
use crate::common::{PageId, Rid, StorageResult, TxnId};
use crate::disk::DiskManager;
use crate::heap::HeapFile;
use crate::lock::{LockManager, LockMode};
use crate::recovery;
use crate::txn::{TxnEvent, TxnManager, TxnObserver, UndoOp};
use crate::wal::{LogRecord, LogStore, MemLogStore, Wal, WalStats};

/// Combined storage-layer counters: WAL traffic + buffer-pool behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StorageStats {
    /// WAL append/force counters.
    pub wal: WalStats,
    /// Buffer-pool hit/miss and page I/O counters.
    pub buffer: BufferPoolStats,
}

impl StorageStats {
    /// Serializes the snapshot as a JSON value.
    pub fn to_json(&self) -> json::Value {
        json::Value::obj([
            (
                "wal",
                json::Value::obj([
                    ("appends", self.wal.appends.into()),
                    ("forces", self.wal.forces.into()),
                    ("bytes", self.wal.bytes.into()),
                ]),
            ),
            (
                "buffer",
                json::Value::obj([
                    ("hits", self.buffer.hits.into()),
                    ("misses", self.buffer.misses.into()),
                    ("page_reads", self.buffer.page_reads.into()),
                    ("page_writes", self.buffer.page_writes.into()),
                    ("hit_ratio", self.buffer.hit_ratio().into()),
                ]),
            ),
        ])
    }
}

/// Transactional storage engine (Exodus analogue).
pub struct StorageEngine {
    heap: HeapFile,
    wal: Wal,
    locks: LockManager,
    txns: TxnManager,
    pool: Arc<BufferPool>,
}

impl StorageEngine {
    /// Opens an engine over the given disk + log, running restart recovery.
    pub fn open(disk: Arc<dyn DiskManager>, log: Arc<dyn LogStore>) -> StorageResult<Self> {
        Self::open_with_capacity(disk, log, 256)
    }

    /// [`Self::open`] with an explicit buffer-pool capacity (in frames).
    pub fn open_with_capacity(
        disk: Arc<dyn DiskManager>,
        log: Arc<dyn LogStore>,
        frames: usize,
    ) -> StorageResult<Self> {
        let pool = Arc::new(BufferPool::new(disk.clone(), frames));
        let pages: Vec<PageId> = (0..disk.num_pages()).map(PageId).collect();
        let heap = HeapFile::attach(pool.clone(), pages);
        let wal = Wal::new(log);
        let txns = TxnManager::new();
        let engine = StorageEngine { heap, wal, locks: LockManager::new(), txns, pool };
        recovery::recover(&engine.wal, &engine.heap, &engine.txns)?;
        Ok(engine)
    }

    /// An ephemeral in-memory engine (tests, benchmarks, examples).
    pub fn in_memory() -> Self {
        Self::open(Arc::new(crate::disk::MemDisk::new()), Arc::new(MemLogStore::new()))
            .expect("in-memory engine cannot fail to open")
    }

    /// Registers a transaction-event observer (the Sentinel event bridge).
    pub fn add_txn_observer(&self, obs: Arc<dyn TxnObserver>) {
        self.txns.add_observer(obs);
    }

    /// Begins a top-level transaction; fires the `begin-transaction` event.
    pub fn begin(&self) -> StorageResult<TxnId> {
        let txn = self.txns.begin();
        self.wal.append(&LogRecord::Begin { txn })?;
        self.txns.notify(txn, TxnEvent::Begin);
        Ok(txn)
    }

    /// Inserts a record; returns its rid. Takes an exclusive lock on the rid.
    pub fn insert(&self, txn: TxnId, data: &[u8]) -> StorageResult<Rid> {
        self.txns.check_active(txn)?;
        let rid = self.heap.insert(data)?;
        self.locks.lock(txn, rid.as_u64(), LockMode::Exclusive)?;
        self.wal.append(&LogRecord::Insert { txn, rid, data: Bytes::copy_from_slice(data) })?;
        self.txns.push_undo(txn, UndoOp::Insert(rid))?;
        Ok(rid)
    }

    /// Reads the record at `rid` under a shared lock.
    pub fn read(&self, txn: TxnId, rid: Rid) -> StorageResult<Vec<u8>> {
        self.txns.check_active(txn)?;
        self.locks.lock(txn, rid.as_u64(), LockMode::Shared)?;
        self.heap.get(rid)
    }

    /// Rewrites the record at `rid` under an exclusive lock.
    pub fn update(&self, txn: TxnId, rid: Rid, data: &[u8]) -> StorageResult<()> {
        self.txns.check_active(txn)?;
        self.locks.lock(txn, rid.as_u64(), LockMode::Exclusive)?;
        let before = self.heap.update(rid, data)?;
        self.wal.append(&LogRecord::Update {
            txn,
            rid,
            before: Bytes::from(before.clone()),
            after: Bytes::copy_from_slice(data),
        })?;
        self.txns.push_undo(txn, UndoOp::Update(rid, before))?;
        Ok(())
    }

    /// Deletes the record at `rid` under an exclusive lock.
    pub fn delete(&self, txn: TxnId, rid: Rid) -> StorageResult<()> {
        self.txns.check_active(txn)?;
        self.locks.lock(txn, rid.as_u64(), LockMode::Exclusive)?;
        let before = self.heap.delete(rid)?;
        self.wal.append(&LogRecord::Delete { txn, rid, data: Bytes::from(before.clone()) })?;
        self.txns.push_undo(txn, UndoOp::Delete(rid, before))?;
        Ok(())
    }

    /// Commits `txn`: fires `pre-commit`, forces the commit record, releases
    /// locks, fires `commit`.
    ///
    /// The `pre-commit` event fires while the transaction can still do work —
    /// deferred rules execute inside this window and their writes belong to
    /// the same transaction (paper §2.3 / §3.1: the deferred rewrite
    /// terminates on `pre-commit`).
    pub fn commit(&self, txn: TxnId) -> StorageResult<()> {
        self.txns.check_active(txn)?;
        // Deferred-rule window: observers may call back into the engine for
        // this txn, so the state flips to Preparing only afterwards.
        self.txns.notify(txn, TxnEvent::PreCommit);
        self.txns.prepare(txn)?;
        self.wal.append_forced(&LogRecord::Commit { txn })?;
        self.txns.finish_commit(txn)?;
        self.locks.release_all(txn);
        self.txns.notify(txn, TxnEvent::Commit);
        self.txns.forget(txn);
        Ok(())
    }

    /// Applies a list of undo operations (newest first), logging
    /// compensations as ordinary records so redo repeats them (see the
    /// recovery module docs).
    fn apply_undo(&self, txn: TxnId, undo: Vec<UndoOp>) -> StorageResult<()> {
        for op in undo {
            match op {
                UndoOp::Insert(rid) => {
                    let before = self.heap.delete(rid)?;
                    self.wal.append(&LogRecord::Delete { txn, rid, data: Bytes::from(before) })?;
                }
                UndoOp::Update(rid, before) => {
                    let current = self.heap.update(rid, &before)?;
                    self.wal.append(&LogRecord::Update {
                        txn,
                        rid,
                        before: Bytes::from(current),
                        after: Bytes::from(before),
                    })?;
                }
                UndoOp::Delete(rid, data) => {
                    self.heap.insert_at(rid, &data)?;
                    self.wal.append(&LogRecord::Insert { txn, rid, data: Bytes::from(data) })?;
                }
            }
        }
        Ok(())
    }

    /// Takes a savepoint mark for `txn` (subtransaction-level recovery: a
    /// rule body records the mark when it starts).
    pub fn savepoint(&self, txn: TxnId) -> StorageResult<u64> {
        Ok(self.txns.undo_mark(txn)? as u64)
    }

    /// Rolls `txn` back to a savepoint mark — undoes (with compensation
    /// logging) every operation performed after the mark, leaving the
    /// transaction active and its earlier work intact. This is the
    /// "recovery at the rule/subtransaction level" the paper's conclusion
    /// calls for: an aborted rule subtransaction undoes only its own writes.
    pub fn rollback_to(&self, txn: TxnId, mark: u64) -> StorageResult<()> {
        let undo = self.txns.take_undo_suffix(txn, mark as usize)?;
        self.apply_undo(txn, undo)
    }

    /// Aborts `txn`: undoes its changes (logging compensations), releases
    /// locks, fires `abort`.
    pub fn abort(&self, txn: TxnId) -> StorageResult<()> {
        let undo = self.txns.take_undo_for_abort(txn)?;
        self.apply_undo(txn, undo)?;
        self.wal.append_forced(&LogRecord::Abort { txn })?;
        self.locks.release_all(txn);
        self.txns.notify(txn, TxnEvent::Abort);
        self.txns.forget(txn);
        Ok(())
    }

    /// Takes a fuzzy checkpoint: flushes all dirty pages, then logs the set
    /// of active transactions.
    pub fn checkpoint(&self) -> StorageResult<()> {
        self.pool.flush_all()?;
        self.wal.append_forced(&LogRecord::Checkpoint { active: self.txns.active_txns() })?;
        Ok(())
    }

    /// Non-transactional full scan (used to rebuild indexes at startup).
    pub fn scan(&self) -> StorageResult<Vec<(Rid, Vec<u8>)>> {
        self.heap.scan()
    }

    /// Non-transactional point read (no locks; used by read-only tooling).
    pub fn read_raw(&self, rid: Rid) -> StorageResult<Vec<u8>> {
        self.heap.get(rid)
    }

    /// Flushes dirty pages and the log (orderly shutdown).
    pub fn shutdown(&self) -> StorageResult<()> {
        self.wal.flush()?;
        self.pool.flush_all()
    }

    /// Installs the trace store on the WAL and buffer pool so log forces
    /// and page I/O performed inside a span are tagged with provenance.
    pub fn set_trace_store(&self, store: Arc<sentinel_obs::span::TraceStore>) {
        self.wal.set_trace_store(store.clone());
        self.pool.set_trace_store(store);
    }

    /// The WAL (exposed for diagnostics and tests).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The buffer pool (exposed for diagnostics and tests).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Snapshot of the storage-layer counters (WAL + buffer pool).
    pub fn stats(&self) -> StorageStats {
        StorageStats { wal: self.wal.stats(), buffer: self.pool.stats() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::StorageError;
    use crate::disk::MemDisk;

    fn engine_with_handles() -> (Arc<MemDisk>, Arc<MemLogStore>, StorageEngine) {
        let disk = Arc::new(MemDisk::new());
        let log = Arc::new(MemLogStore::new());
        let eng = StorageEngine::open(
            disk.clone() as Arc<dyn DiskManager>,
            log.clone() as Arc<dyn LogStore>,
        )
        .unwrap();
        (disk, log, eng)
    }

    #[test]
    fn committed_data_is_readable_in_next_txn() {
        let eng = StorageEngine::in_memory();
        let t1 = eng.begin().unwrap();
        let rid = eng.insert(t1, b"v1").unwrap();
        eng.commit(t1).unwrap();
        let t2 = eng.begin().unwrap();
        assert_eq!(eng.read(t2, rid).unwrap(), b"v1");
        eng.commit(t2).unwrap();
    }

    #[test]
    fn abort_rolls_back_insert_update_delete() {
        let eng = StorageEngine::in_memory();
        // Seed data.
        let t0 = eng.begin().unwrap();
        let keep = eng.insert(t0, b"keep").unwrap();
        let doomed = eng.insert(t0, b"doomed").unwrap();
        eng.commit(t0).unwrap();

        let t1 = eng.begin().unwrap();
        let fresh = eng.insert(t1, b"fresh").unwrap();
        eng.update(t1, keep, b"mutated").unwrap();
        eng.delete(t1, doomed).unwrap();
        eng.abort(t1).unwrap();

        let t2 = eng.begin().unwrap();
        assert_eq!(eng.read(t2, keep).unwrap(), b"keep");
        assert_eq!(eng.read(t2, doomed).unwrap(), b"doomed");
        assert!(matches!(eng.read(t2, fresh), Err(StorageError::RecordNotFound(_))));
        eng.commit(t2).unwrap();
    }

    #[test]
    fn write_write_conflict_blocks_until_commit() {
        use std::time::Duration;
        let eng = Arc::new(StorageEngine::in_memory());
        let t0 = eng.begin().unwrap();
        let rid = eng.insert(t0, b"x").unwrap();
        eng.commit(t0).unwrap();

        let t1 = eng.begin().unwrap();
        eng.update(t1, rid, b"by-t1").unwrap();
        let eng2 = eng.clone();
        let h = std::thread::spawn(move || {
            let t2 = eng2.begin().unwrap();
            eng2.update(t2, rid, b"by-t2").unwrap();
            eng2.commit(t2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(50));
        eng.commit(t1).unwrap();
        h.join().unwrap();
        let t3 = eng.begin().unwrap();
        assert_eq!(eng.read(t3, rid).unwrap(), b"by-t2");
        eng.commit(t3).unwrap();
    }

    #[test]
    fn stats_reflect_wal_and_buffer_traffic() {
        let eng = StorageEngine::in_memory();
        let t = eng.begin().unwrap();
        let rid = eng.insert(t, b"counted").unwrap();
        eng.commit(t).unwrap();
        let t2 = eng.begin().unwrap();
        eng.read(t2, rid).unwrap();
        eng.commit(t2).unwrap();

        let s = eng.stats();
        // begin + insert + commit + begin + commit = 5 records, 2 forced.
        assert_eq!(s.wal.appends, 5);
        assert_eq!(s.wal.forces, 2);
        assert!(s.wal.bytes > 0);
        assert!(s.buffer.hits + s.buffer.misses > 0);
        let j = s.to_json();
        assert_eq!(j.get("wal").and_then(|w| w.get("appends")).and_then(|v| v.as_u64()), Some(5));
        assert!(j.to_string().contains("\"hit_ratio\":"));
    }

    #[test]
    fn work_on_committed_txn_is_rejected() {
        let eng = StorageEngine::in_memory();
        let t = eng.begin().unwrap();
        let rid = eng.insert(t, b"a").unwrap();
        eng.commit(t).unwrap();
        assert!(eng.update(t, rid, b"b").is_err());
    }

    #[test]
    fn restart_preserves_committed_and_discards_uncommitted() {
        let (disk, log, eng) = engine_with_handles();
        let t1 = eng.begin().unwrap();
        let committed = eng.insert(t1, b"durable").unwrap();
        eng.commit(t1).unwrap();
        let t2 = eng.begin().unwrap();
        let lost = eng.insert(t2, b"volatile").unwrap();
        eng.update(t2, committed, b"overwritten").unwrap();
        // Crash: drop the engine without commit/shutdown (pages may or may
        // not have hit "disk"; the WAL decides).
        drop(eng);

        let eng2 = StorageEngine::open(disk, log).unwrap();
        let t = eng2.begin().unwrap();
        assert_eq!(eng2.read(t, committed).unwrap(), b"durable");
        assert!(matches!(eng2.read(t, lost), Err(StorageError::RecordNotFound(_))));
        eng2.commit(t).unwrap();
    }

    #[test]
    fn pre_commit_event_fires_before_commit_event() {
        use parking_lot::Mutex;
        struct Recorder(Mutex<Vec<TxnEvent>>);
        impl TxnObserver for Recorder {
            fn on_txn_event(&self, _t: TxnId, e: TxnEvent) {
                self.0.lock().push(e);
            }
        }
        let eng = StorageEngine::in_memory();
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        eng.add_txn_observer(rec.clone());
        let t = eng.begin().unwrap();
        eng.commit(t).unwrap();
        assert_eq!(*rec.0.lock(), vec![TxnEvent::Begin, TxnEvent::PreCommit, TxnEvent::Commit]);
    }

    #[test]
    fn observer_can_write_during_pre_commit_window() {
        // A deferred rule writing at pre-commit must land in the same txn.
        struct DeferredWriter {
            eng: std::sync::Weak<StorageEngine>,
            rid: Mutex<Option<Rid>>,
        }
        use parking_lot::Mutex;
        impl TxnObserver for DeferredWriter {
            fn on_txn_event(&self, txn: TxnId, e: TxnEvent) {
                if e == TxnEvent::PreCommit {
                    if let Some(eng) = self.eng.upgrade() {
                        let rid = eng.insert(txn, b"deferred-write").unwrap();
                        *self.rid.lock() = Some(rid);
                    }
                }
            }
        }
        let eng = Arc::new(StorageEngine::in_memory());
        let obs = Arc::new(DeferredWriter { eng: Arc::downgrade(&eng), rid: Mutex::new(None) });
        eng.add_txn_observer(obs.clone());
        let t = eng.begin().unwrap();
        eng.commit(t).unwrap();
        let rid = obs.rid.lock().unwrap();
        let t2 = eng.begin().unwrap();
        assert_eq!(eng.read(t2, rid).unwrap(), b"deferred-write");
        eng.commit(t2).unwrap();
    }

    #[test]
    fn savepoint_rollback_is_partial_and_nestable() {
        let eng = StorageEngine::in_memory();
        let t = eng.begin().unwrap();
        let a = eng.insert(t, b"keep").unwrap();
        let sp1 = eng.savepoint(t).unwrap();
        let b = eng.insert(t, b"inner-1").unwrap();
        eng.update(t, a, b"mutated").unwrap();
        let sp2 = eng.savepoint(t).unwrap();
        let c = eng.insert(t, b"inner-2").unwrap();
        // Roll back the innermost savepoint: only c disappears.
        eng.rollback_to(t, sp2).unwrap();
        assert!(eng.read(t, c).is_err());
        assert_eq!(eng.read(t, b).unwrap(), b"inner-1");
        assert_eq!(eng.read(t, a).unwrap(), b"mutated");
        // Roll back the outer savepoint: b and the update disappear.
        eng.rollback_to(t, sp1).unwrap();
        assert!(eng.read(t, b).is_err());
        assert_eq!(eng.read(t, a).unwrap(), b"keep");
        // The transaction is still usable and commits its remaining work.
        eng.commit(t).unwrap();
        let t2 = eng.begin().unwrap();
        assert_eq!(eng.read(t2, a).unwrap(), b"keep");
        eng.commit(t2).unwrap();
    }

    #[test]
    fn savepoint_rollback_survives_crash_recovery() {
        let (disk, log, eng) = engine_with_handles();
        let t = eng.begin().unwrap();
        let a = eng.insert(t, b"base").unwrap();
        let sp = eng.savepoint(t).unwrap();
        eng.update(t, a, b"rule-write").unwrap();
        eng.rollback_to(t, sp).unwrap();
        eng.commit(t).unwrap();
        drop(eng);
        let eng2 = StorageEngine::open(disk, log).unwrap();
        let t = eng2.begin().unwrap();
        assert_eq!(eng2.read(t, a).unwrap(), b"base", "compensations redone correctly");
        eng2.commit(t).unwrap();
    }

    #[test]
    fn checkpoint_then_restart_recovers() {
        let (disk, log, eng) = engine_with_handles();
        let t = eng.begin().unwrap();
        let rid = eng.insert(t, b"pre-ckpt").unwrap();
        eng.commit(t).unwrap();
        eng.checkpoint().unwrap();
        let t2 = eng.begin().unwrap();
        let rid2 = eng.insert(t2, b"post-ckpt").unwrap();
        eng.commit(t2).unwrap();
        drop(eng);
        let eng2 = StorageEngine::open(disk, log).unwrap();
        let t = eng2.begin().unwrap();
        assert_eq!(eng2.read(t, rid).unwrap(), b"pre-ckpt");
        assert_eq!(eng2.read(t, rid2).unwrap(), b"post-ckpt");
        eng2.commit(t).unwrap();
    }
}
