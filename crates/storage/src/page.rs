//! Slotted-page layout for variable-length records.
//!
//! Layout (little-endian):
//!
//! ```text
//! +--------------------+----------------------+---------------------------+
//! | header (8 bytes)   | slot array (4B each) | free space | record data  |
//! +--------------------+----------------------+---------------------------+
//!   num_slots: u16       offset: u16            grows ->      <- grows
//!   free_end:  u16       len:    u16
//!   lsn:       u32  (page LSN, low 32 bits — recovery idempotence)
//! ```
//!
//! Records grow from the end of the page toward the slot array. Deleting a
//! record tombstones its slot (`offset = 0, len = 0`); the slot can be reused
//! by a later insert but rids of live records never change (no compaction
//! moves a live record to a different slot, only to a different offset).

use crate::common::{StorageError, StorageResult};

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 4096;

const HEADER_SIZE: usize = 8;
const SLOT_SIZE: usize = 4;

/// Largest record a single page can hold (one slot, empty page).
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// A slotted page over a fixed 4 KiB buffer.
///
/// `SlottedPage` borrows the frame's bytes mutably; it performs no I/O
/// itself. The buffer pool hands out frames, the heap file wraps them in
/// this type to manipulate records.
pub struct SlottedPage<'a> {
    data: &'a mut [u8; PAGE_SIZE],
}

impl<'a> SlottedPage<'a> {
    /// Interprets `data` as a slotted page (it must already be initialized
    /// or zeroed; a zeroed page is a valid empty page after [`Self::init`]).
    pub fn new(data: &'a mut [u8; PAGE_SIZE]) -> Self {
        SlottedPage { data }
    }

    /// Formats the buffer as an empty page.
    pub fn init(&mut self) {
        self.data.fill(0);
        self.set_num_slots(0);
        self.set_free_end(PAGE_SIZE as u16);
    }

    fn num_slots(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    fn set_num_slots(&mut self, n: u16) {
        self.data[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        let v = u16::from_le_bytes([self.data[2], self.data[3]]);
        if v == 0 {
            PAGE_SIZE as u16 // zeroed page == empty page
        } else {
            v
        }
    }

    fn set_free_end(&mut self, v: u16) {
        self.data[2..4].copy_from_slice(&v.to_le_bytes());
    }

    /// Low 32 bits of the LSN of the last update applied to this page.
    pub fn page_lsn(&self) -> u32 {
        u32::from_le_bytes([self.data[4], self.data[5], self.data[6], self.data[7]])
    }

    /// Records the LSN of an applied update (see [`Self::page_lsn`]).
    pub fn set_page_lsn(&mut self, lsn: u32) {
        self.data[4..8].copy_from_slice(&lsn.to_le_bytes());
    }

    fn slot(&self, i: u16) -> (u16, u16) {
        let base = HEADER_SIZE + usize::from(i) * SLOT_SIZE;
        let off = u16::from_le_bytes([self.data[base], self.data[base + 1]]);
        let len = u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]);
        (off, len)
    }

    fn set_slot(&mut self, i: u16, off: u16, len: u16) {
        let base = HEADER_SIZE + usize::from(i) * SLOT_SIZE;
        self.data[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    fn slot_array_end(&self) -> usize {
        HEADER_SIZE + usize::from(self.num_slots()) * SLOT_SIZE
    }

    /// Contiguous free bytes between the slot array and the record heap.
    pub fn contiguous_free(&self) -> usize {
        usize::from(self.free_end()).saturating_sub(self.slot_array_end())
    }

    /// Whether a record of `len` bytes fits (possibly after compaction),
    /// accounting for a new slot unless a tombstoned slot can be reused.
    pub fn fits(&self, len: usize) -> bool {
        let slot_cost = if self.find_free_slot().is_some() { 0 } else { SLOT_SIZE };
        self.total_free() >= len + slot_cost
    }

    /// Total free bytes counting holes left by deleted records.
    fn total_free(&self) -> usize {
        let mut used = 0usize;
        for i in 0..self.num_slots() {
            let (_, len) = self.slot(i);
            used += usize::from(len);
        }
        PAGE_SIZE - self.slot_array_end() - used
    }

    fn find_free_slot(&self) -> Option<u16> {
        (0..self.num_slots()).find(|&i| {
            let (off, len) = self.slot(i);
            off == 0 && len == 0
        })
    }

    /// Inserts a record, returning its slot number.
    pub fn insert(&mut self, record: &[u8]) -> StorageResult<u16> {
        if record.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge { len: record.len(), max: MAX_RECORD_SIZE });
        }
        if !self.fits(record.len()) {
            return Err(StorageError::RecordTooLarge { len: record.len(), max: self.total_free() });
        }
        let slot = match self.find_free_slot() {
            Some(s) => s,
            None => {
                let s = self.num_slots();
                self.set_num_slots(s + 1);
                self.set_slot(s, 0, 0);
                s
            }
        };
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let off = usize::from(self.free_end()) - record.len();
        self.data[off..off + record.len()].copy_from_slice(record);
        self.set_free_end(off as u16);
        self.set_slot(slot, off as u16, record.len() as u16);
        Ok(slot)
    }

    /// Inserts a record into slot `slot` specifically (used by recovery redo
    /// so replayed inserts land at the exact rid the log recorded).
    pub fn insert_at(&mut self, slot: u16, record: &[u8]) -> StorageResult<()> {
        if record.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge { len: record.len(), max: MAX_RECORD_SIZE });
        }
        while self.num_slots() <= slot {
            let s = self.num_slots();
            self.set_num_slots(s + 1);
            self.set_slot(s, 0, 0);
        }
        let (off, len) = self.slot(slot);
        if off != 0 || len != 0 {
            // Slot already occupied (idempotent redo): overwrite in place.
            self.set_slot(slot, 0, 0);
        }
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let off = usize::from(self.free_end()) - record.len();
        self.data[off..off + record.len()].copy_from_slice(record);
        self.set_free_end(off as u16);
        self.set_slot(slot, off as u16, record.len() as u16);
        Ok(())
    }

    /// Reads the record in `slot`.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.num_slots() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == 0 && len == 0 {
            return None;
        }
        Some(&self.data[usize::from(off)..usize::from(off) + usize::from(len)])
    }

    /// Deletes the record in `slot` (tombstones the slot).
    pub fn delete(&mut self, slot: u16) -> StorageResult<()> {
        if slot >= self.num_slots() || self.get(slot).is_none() {
            return Err(StorageError::Corrupt("delete of empty slot"));
        }
        self.set_slot(slot, 0, 0);
        Ok(())
    }

    /// Replaces the record in `slot` with `record` (may move within the page).
    pub fn update(&mut self, slot: u16, record: &[u8]) -> StorageResult<()> {
        if slot >= self.num_slots() || self.get(slot).is_none() {
            return Err(StorageError::Corrupt("update of empty slot"));
        }
        let (off, len) = self.slot(slot);
        if record.len() <= usize::from(len) {
            // Shrinking or equal: rewrite in place.
            let off = usize::from(off);
            self.data[off..off + record.len()].copy_from_slice(record);
            self.set_slot(slot, off as u16, record.len() as u16);
            return Ok(());
        }
        // Growing: free the old space and re-insert at this slot.
        self.set_slot(slot, 0, 0);
        if !self.fits(record.len()) {
            // Roll the tombstone back so the caller can relocate the record.
            self.set_slot(slot, off, len);
            return Err(StorageError::RecordTooLarge { len: record.len(), max: self.total_free() });
        }
        self.insert_at(slot, record)
    }

    /// Iterates `(slot, record)` over live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.num_slots()).filter_map(move |i| self.get(i).map(|r| (i, r)))
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        self.iter().count()
    }

    /// Compacts record data toward the page end, preserving slot numbers.
    fn compact(&mut self) {
        let mut live: Vec<(u16, Vec<u8>)> =
            (0..self.num_slots()).filter_map(|i| self.get(i).map(|r| (i, r.to_vec()))).collect();
        // Rewrite from the page end downward.
        let mut free_end = PAGE_SIZE;
        // Place larger slots first is unnecessary; order doesn't matter.
        for (slot, rec) in live.drain(..) {
            free_end -= rec.len();
            self.data[free_end..free_end + rec.len()].copy_from_slice(&rec);
            self.set_slot(slot, free_end as u16, rec.len() as u16);
        }
        self.set_free_end(free_end as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Box<[u8; PAGE_SIZE]> {
        Box::new([0u8; PAGE_SIZE])
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf);
        page.init();
        let s0 = page.insert(b"hello").unwrap();
        let s1 = page.insert(b"world!").unwrap();
        assert_eq!(page.get(s0).unwrap(), b"hello");
        assert_eq!(page.get(s1).unwrap(), b"world!");
        assert_eq!(page.live_count(), 2);
    }

    #[test]
    fn zeroed_buffer_is_a_valid_empty_page() {
        let mut buf = fresh();
        let page = SlottedPage::new(&mut buf);
        assert_eq!(page.live_count(), 0);
        assert_eq!(page.contiguous_free(), PAGE_SIZE - HEADER_SIZE);
    }

    #[test]
    fn delete_tombstones_and_slot_is_reused() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf);
        page.init();
        let s0 = page.insert(b"aaa").unwrap();
        let s1 = page.insert(b"bbb").unwrap();
        page.delete(s0).unwrap();
        assert!(page.get(s0).is_none());
        assert_eq!(page.get(s1).unwrap(), b"bbb");
        let s2 = page.insert(b"ccc").unwrap();
        assert_eq!(s2, s0, "tombstoned slot must be reused");
        assert_eq!(page.get(s2).unwrap(), b"ccc");
    }

    #[test]
    fn update_in_place_and_growing() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf);
        page.init();
        let s = page.insert(b"abcdef").unwrap();
        page.update(s, b"xy").unwrap();
        assert_eq!(page.get(s).unwrap(), b"xy");
        page.update(s, b"a-much-longer-record").unwrap();
        assert_eq!(page.get(s).unwrap(), b"a-much-longer-record");
    }

    #[test]
    fn fill_page_until_full_then_compaction_recovers_holes() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf);
        page.init();
        let rec = [7u8; 100];
        let mut slots = Vec::new();
        while page.fits(rec.len()) {
            slots.push(page.insert(&rec).unwrap());
        }
        assert!(page.insert(&rec).is_err());
        // Delete every other record -> holes, then a big record must still fit
        // via compaction.
        for s in slots.iter().step_by(2) {
            page.delete(*s).unwrap();
        }
        let big = [9u8; 300];
        let s = page.insert(&big).unwrap();
        assert_eq!(page.get(s).unwrap(), &big[..]);
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf);
        page.init();
        let huge = vec![0u8; MAX_RECORD_SIZE + 1];
        assert!(matches!(page.insert(&huge), Err(StorageError::RecordTooLarge { .. })));
    }

    #[test]
    fn insert_at_is_idempotent_for_redo() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf);
        page.init();
        page.insert_at(3, b"redo-me").unwrap();
        page.insert_at(3, b"redo-me").unwrap();
        assert_eq!(page.get(3).unwrap(), b"redo-me");
        assert_eq!(page.live_count(), 1);
        assert!(page.get(0).is_none());
    }

    #[test]
    fn failed_grow_update_leaves_record_intact() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf);
        page.init();
        let filler = vec![1u8; MAX_RECORD_SIZE - 200];
        page.insert(&filler).unwrap();
        let s = page.insert(b"small").unwrap();
        let too_big = vec![2u8; 4000];
        assert!(page.update(s, &too_big).is_err());
        assert_eq!(page.get(s).unwrap(), b"small");
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut buf = fresh();
        let mut page = SlottedPage::new(&mut buf);
        page.init();
        page.insert(b"a").unwrap();
        let s = page.insert(b"b").unwrap();
        page.insert(b"c").unwrap();
        page.delete(s).unwrap();
        let all: Vec<_> = page.iter().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(all, vec![b"a".to_vec(), b"c".to_vec()]);
    }
}
