//! Pin-counted LRU buffer pool.
//!
//! The pool owns a fixed number of frames. Pages are fetched with
//! [`BufferPool::fetch`], which returns a [`PageGuard`] holding the pin; the
//! pin is released on drop. Dirty frames are written back on eviction and on
//! [`BufferPool::flush_all`]. The WAL protocol (write log record before the
//! dirty page can be evicted) is enforced by the engine layer, which flushes
//! the log up to a page's LSN before calling [`BufferPool::flush_page`].

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use sentinel_obs::span::TraceStore;
use sentinel_obs::{Counter, Field};

use crate::common::{PageId, StorageError, StorageResult};
use crate::disk::DiskManager;
use crate::iospan::IoTracer;
use crate::page::PAGE_SIZE;

struct Frame {
    page_id: Option<PageId>,
    data: RwLock<Box<[u8; PAGE_SIZE]>>,
    dirty: bool,
    pins: u32,
    /// Tick of last unpin, for LRU.
    last_used: u64,
}

struct PoolState {
    frames: Vec<Frame>,
    /// page -> frame index
    table: HashMap<PageId, usize>,
    tick: u64,
}

/// Live counters for one [`BufferPool`] (all relaxed atomics; reading them
/// never blocks pool traffic).
#[derive(Default)]
pub struct BufferMetrics {
    /// Fetches satisfied from a resident frame.
    pub hits: Counter,
    /// Fetches that had to go to disk.
    pub misses: Counter,
    /// Pages read from the disk manager.
    pub page_reads: Counter,
    /// Pages written back (eviction + flush paths).
    pub page_writes: Counter,
}

/// Point-in-time snapshot of [`BufferMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Fetches satisfied from a resident frame.
    pub hits: u64,
    /// Fetches that had to go to disk.
    pub misses: u64,
    /// Pages read from the disk manager.
    pub page_reads: u64,
    /// Pages written back (eviction + flush paths).
    pub page_writes: u64,
}

impl BufferPoolStats {
    /// Fraction of fetches served without touching disk (0.0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity buffer pool over a [`DiskManager`].
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    state: Mutex<PoolState>,
    metrics: BufferMetrics,
    io: IoTracer,
}

/// RAII pin on a buffered page. Read access via [`PageGuard::read`], write
/// access via [`PageGuard::write`] (which also marks the frame dirty).
pub struct PageGuard<'p> {
    pool: &'p BufferPool,
    frame_idx: usize,
    page_id: PageId,
}

impl BufferPool {
    /// Creates a pool with `capacity` frames over `disk`.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                page_id: None,
                data: RwLock::new(Box::new([0u8; PAGE_SIZE])),
                dirty: false,
                pins: 0,
                last_used: 0,
            })
            .collect();
        BufferPool {
            disk,
            state: Mutex::new(PoolState { frames, table: HashMap::new(), tick: 0 }),
            metrics: BufferMetrics::default(),
            io: IoTracer::default(),
        }
    }

    /// Installs the trace store used to tag page I/O with provenance
    /// spans (see [`crate::iospan`]).
    pub fn set_trace_store(&self, store: Arc<TraceStore>) {
        self.io.set_store(store);
    }

    /// The backing disk manager.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Live counters (hits, misses, page I/O).
    pub fn metrics(&self) -> &BufferMetrics {
        &self.metrics
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            page_reads: self.metrics.page_reads.get(),
            page_writes: self.metrics.page_writes.get(),
        }
    }

    /// Allocates a brand-new page on disk and pins it (zeroed).
    pub fn allocate(&self) -> StorageResult<PageGuard<'_>> {
        let id = self.disk.allocate_page()?;
        self.fetch(id)
    }

    /// Fetches page `id`, reading from disk on a miss, and pins it.
    pub fn fetch(&self, id: PageId) -> StorageResult<PageGuard<'_>> {
        let mut st = self.state.lock();
        if let Some(&idx) = st.table.get(&id) {
            st.frames[idx].pins += 1;
            self.metrics.hits.inc();
            return Ok(PageGuard { pool: self, frame_idx: idx, page_id: id });
        }
        self.metrics.misses.inc();
        let idx = self.find_victim(&mut st)?;
        // Evict current occupant if dirty.
        if let Some(old) = st.frames[idx].page_id {
            if st.frames[idx].dirty {
                let data = st.frames[idx].data.read();
                self.io.tagged(
                    "page_write",
                    "evict",
                    || vec![("page", Field::U64(old.0 as u64))],
                    || self.disk.write_page(old, &data),
                )?;
                drop(data);
                st.frames[idx].dirty = false;
                self.metrics.page_writes.inc();
            }
            st.table.remove(&old);
        }
        {
            let mut data = st.frames[idx].data.write();
            self.io.tagged(
                "page_read",
                "fetch",
                || vec![("page", Field::U64(id.0 as u64))],
                || self.disk.read_page(id, &mut data),
            )?;
            self.metrics.page_reads.inc();
        }
        st.frames[idx].page_id = Some(id);
        st.frames[idx].pins = 1;
        st.table.insert(id, idx);
        Ok(PageGuard { pool: self, frame_idx: idx, page_id: id })
    }

    fn find_victim(&self, st: &mut PoolState) -> StorageResult<usize> {
        // Prefer an empty frame, otherwise the least-recently-used unpinned.
        if let Some(idx) = st.frames.iter().position(|f| f.page_id.is_none()) {
            return Ok(idx);
        }
        st.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.pins == 0)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i)
            .ok_or(StorageError::BufferPoolFull)
    }

    /// Writes one page back to disk if it is resident and dirty.
    pub fn flush_page(&self, id: PageId) -> StorageResult<()> {
        let st = self.state.lock();
        if let Some(&idx) = st.table.get(&id) {
            if st.frames[idx].dirty {
                let data = st.frames[idx].data.read();
                self.io.tagged(
                    "page_write",
                    "flush_page",
                    || vec![("page", Field::U64(id.0 as u64))],
                    || self.disk.write_page(id, &data),
                )?;
                self.metrics.page_writes.inc();
            }
        }
        Ok(())
    }

    /// Writes every dirty frame back and syncs the disk.
    pub fn flush_all(&self) -> StorageResult<()> {
        let mut st = self.state.lock();
        for f in st.frames.iter_mut() {
            if let (Some(id), true) = (f.page_id, f.dirty) {
                let data = f.data.read();
                self.io.tagged(
                    "page_write",
                    "flush_all",
                    || vec![("page", Field::U64(id.0 as u64))],
                    || self.disk.write_page(id, &data),
                )?;
                drop(data);
                f.dirty = false;
                self.metrics.page_writes.inc();
            }
        }
        self.disk.sync()
    }

    /// Number of currently pinned frames (diagnostics / tests).
    pub fn pinned_count(&self) -> usize {
        self.state.lock().frames.iter().filter(|f| f.pins > 0).count()
    }
}

impl<'p> PageGuard<'p> {
    /// The page this guard pins.
    pub fn page_id(&self) -> PageId {
        self.page_id
    }

    /// Shared access to the page bytes.
    pub fn read(&self) -> RwLockReadGuard<'_, Box<[u8; PAGE_SIZE]>> {
        let st = self.pool.state.lock();
        let lock: &RwLock<Box<[u8; PAGE_SIZE]>> = &st.frames[self.frame_idx].data;
        // SAFETY of lifetime: the frame cannot be evicted or reused while
        // pinned (pins > 0), and this guard holds a pin until drop, so the
        // RwLock lives as long as the guard.
        let lock: &'p RwLock<Box<[u8; PAGE_SIZE]>> = unsafe { std::mem::transmute(lock) };
        drop(st);
        lock.read()
    }

    /// Exclusive access to the page bytes; marks the frame dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Box<[u8; PAGE_SIZE]>> {
        let mut st = self.pool.state.lock();
        st.frames[self.frame_idx].dirty = true;
        let lock: &RwLock<Box<[u8; PAGE_SIZE]>> = &st.frames[self.frame_idx].data;
        // SAFETY: see `read`.
        let lock: &'p RwLock<Box<[u8; PAGE_SIZE]>> = unsafe { std::mem::transmute(lock) };
        drop(st);
        lock.write()
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.pool.state.lock();
        st.tick += 1;
        let tick = st.tick;
        let f = &mut st.frames[self.frame_idx];
        debug_assert!(f.pins > 0);
        f.pins -= 1;
        f.last_used = tick;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemDisk::new()), frames)
    }

    #[test]
    fn fetch_returns_written_data() {
        let pool = pool(4);
        let id = {
            let g = pool.allocate().unwrap();
            g.write()[0] = 42;
            g.page_id()
        };
        let g = pool.fetch(id).unwrap();
        assert_eq!(g.read()[0], 42);
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let pool = pool(2);
        let p0 = {
            let g = pool.allocate().unwrap();
            g.write()[0] = 1;
            g.page_id()
        };
        // Fill the pool with other pages to force eviction of p0.
        for _ in 0..4 {
            let g = pool.allocate().unwrap();
            g.write()[0] = 9;
        }
        // p0 must come back from disk with its data intact.
        let g = pool.fetch(p0).unwrap();
        assert_eq!(g.read()[0], 1);
    }

    #[test]
    fn pool_full_of_pins_errors() {
        let pool = pool(2);
        let _g0 = pool.allocate().unwrap();
        let _g1 = pool.allocate().unwrap();
        assert!(matches!(pool.allocate(), Err(StorageError::BufferPoolFull)));
    }

    #[test]
    fn repeated_fetch_shares_frame() {
        let pool = pool(2);
        let id = pool.allocate().unwrap().page_id();
        let g1 = pool.fetch(id).unwrap();
        let g2 = pool.fetch(id).unwrap();
        g1.write()[7] = 7;
        assert_eq!(g2.read()[7], 7);
        assert_eq!(pool.pinned_count(), 1);
    }

    #[test]
    fn counters_track_hits_misses_and_writeback() {
        let pool = pool(2);
        let id = {
            let g = pool.allocate().unwrap(); // miss + page_read
            g.write()[0] = 1;
            g.page_id()
        };
        drop(pool.fetch(id).unwrap()); // hit
        pool.flush_all().unwrap(); // dirty page written back
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.page_reads, 1);
        assert_eq!(s.page_writes, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(BufferPoolStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn flush_all_persists_and_clears_dirty() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 2);
        let id = {
            let g = pool.allocate().unwrap();
            g.write()[100] = 55;
            g.page_id()
        };
        pool.flush_all().unwrap();
        let mut raw = [0u8; PAGE_SIZE];
        disk.read_page(id, &mut raw).unwrap();
        assert_eq!(raw[100], 55);
    }
}
