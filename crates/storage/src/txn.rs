//! Top-level transaction bookkeeping.
//!
//! Tracks transaction states and per-transaction undo chains (in-memory;
//! the WAL holds the durable copies of the same information). The manager
//! also multicasts **transaction events** — `begin`, `pre-commit`, `commit`,
//! `abort` — to registered observers. These are precisely the system-class
//! events Sentinel's §3.2 makes reactive: "we specify an event interface to
//! make the methods beginTransaction and commitTransaction of the system
//! class generate events", with `pre-commit` being the anchor of the
//! deferred-mode rewrite `A*(begin-txn, E, pre-commit)`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::common::{Rid, StorageError, StorageResult, TxnId};

/// Lifecycle states of a top-level transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Running; may read and write.
    Active,
    /// `pre-commit` signalled, commit record not yet forced. Deferred rules
    /// run here.
    Preparing,
    /// Durably committed.
    Committed,
    /// Rolled back.
    Aborted,
}

/// Transaction lifecycle events observable by the active-database layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnEvent {
    /// Transaction started.
    Begin,
    /// Transaction is about to commit (work done, commit record not forced).
    PreCommit,
    /// Transaction durably committed.
    Commit,
    /// Transaction rolled back.
    Abort,
}

impl TxnEvent {
    /// Canonical Sentinel event name (`"begin-transaction"` etc.), the names
    /// the preprocessor's system-class event interface registers.
    pub fn event_name(self) -> &'static str {
        match self {
            TxnEvent::Begin => "begin-transaction",
            TxnEvent::PreCommit => "pre-commit-transaction",
            TxnEvent::Commit => "commit-transaction",
            TxnEvent::Abort => "abort-transaction",
        }
    }
}

/// Observer of transaction lifecycle events (Sentinel's primitive-event
/// bridge registers itself here).
pub trait TxnObserver: Send + Sync {
    /// Called synchronously, in order, on the transaction's thread.
    fn on_txn_event(&self, txn: TxnId, event: TxnEvent);
}

/// One logged, undoable operation.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// Undo of an insert: delete the record.
    Insert(Rid),
    /// Undo of an update: restore the before image.
    Update(Rid, Vec<u8>),
    /// Undo of a delete: re-insert the before image at the same rid.
    Delete(Rid, Vec<u8>),
}

#[derive(Debug)]
struct TxnInfo {
    state: TxnState,
    undo: Vec<UndoOp>,
}

/// Issues transaction ids and tracks live transactions.
pub struct TxnManager {
    next: AtomicU64,
    live: Mutex<HashMap<TxnId, TxnInfo>>,
    observers: RwLock<Vec<Arc<dyn TxnObserver>>>,
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    /// A manager starting at transaction id 1.
    pub fn new() -> Self {
        TxnManager {
            next: AtomicU64::new(1),
            live: Mutex::new(HashMap::new()),
            observers: RwLock::new(Vec::new()),
        }
    }

    /// Registers a lifecycle observer.
    pub fn add_observer(&self, obs: Arc<dyn TxnObserver>) {
        self.observers.write().push(obs);
    }

    /// Fires `event` for `txn` to all observers.
    pub fn notify(&self, txn: TxnId, event: TxnEvent) {
        for obs in self.observers.read().iter() {
            obs.on_txn_event(txn, event);
        }
    }

    /// Starts a new transaction (does not log; the engine does).
    pub fn begin(&self) -> TxnId {
        let id = TxnId(self.next.fetch_add(1, Ordering::Relaxed));
        self.live.lock().insert(id, TxnInfo { state: TxnState::Active, undo: Vec::new() });
        id
    }

    /// Ensures ids handed out after recovery don't collide with logged ones.
    pub fn advance_past(&self, id: TxnId) {
        self.next.fetch_max(id.0 + 1, Ordering::Relaxed);
    }

    /// Records an undoable operation for `txn`.
    pub fn push_undo(&self, txn: TxnId, op: UndoOp) -> StorageResult<()> {
        let mut live = self.live.lock();
        let info =
            live.get_mut(&txn).ok_or(StorageError::InvalidTxnState(txn, "unknown transaction"))?;
        if info.state != TxnState::Active {
            return Err(StorageError::InvalidTxnState(txn, "not active"));
        }
        info.undo.push(op);
        Ok(())
    }

    /// Current state, if the transaction is known.
    pub fn state(&self, txn: TxnId) -> Option<TxnState> {
        self.live.lock().get(&txn).map(|i| i.state)
    }

    /// Checks the transaction may perform work.
    pub fn check_active(&self, txn: TxnId) -> StorageResult<()> {
        match self.state(txn) {
            Some(TxnState::Active) => Ok(()),
            Some(_) => Err(StorageError::InvalidTxnState(txn, "not active")),
            None => Err(StorageError::InvalidTxnState(txn, "unknown transaction")),
        }
    }

    /// Moves `txn` to [`TxnState::Preparing`] and returns nothing else;
    /// the engine fires the `pre-commit` event around this.
    pub fn prepare(&self, txn: TxnId) -> StorageResult<()> {
        let mut live = self.live.lock();
        let info =
            live.get_mut(&txn).ok_or(StorageError::InvalidTxnState(txn, "unknown transaction"))?;
        if info.state != TxnState::Active {
            return Err(StorageError::InvalidTxnState(txn, "prepare of non-active"));
        }
        info.state = TxnState::Preparing;
        Ok(())
    }

    /// Finalizes a commit; the undo chain is discarded.
    pub fn finish_commit(&self, txn: TxnId) -> StorageResult<()> {
        let mut live = self.live.lock();
        let info =
            live.get_mut(&txn).ok_or(StorageError::InvalidTxnState(txn, "unknown transaction"))?;
        if !matches!(info.state, TxnState::Preparing) {
            return Err(StorageError::InvalidTxnState(txn, "commit without prepare"));
        }
        info.state = TxnState::Committed;
        info.undo.clear();
        Ok(())
    }

    /// Current length of the undo chain — a *savepoint mark* for
    /// subtransaction-level recovery (rule bodies roll back to the mark
    /// taken when they started, leaving earlier work intact).
    pub fn undo_mark(&self, txn: TxnId) -> StorageResult<usize> {
        let live = self.live.lock();
        let info =
            live.get(&txn).ok_or(StorageError::InvalidTxnState(txn, "unknown transaction"))?;
        Ok(info.undo.len())
    }

    /// Takes the undo-chain suffix past `mark` (newest first) without
    /// finishing the transaction — partial rollback support.
    pub fn take_undo_suffix(&self, txn: TxnId, mark: usize) -> StorageResult<Vec<UndoOp>> {
        let mut live = self.live.lock();
        let info =
            live.get_mut(&txn).ok_or(StorageError::InvalidTxnState(txn, "unknown transaction"))?;
        if info.state != TxnState::Active {
            return Err(StorageError::InvalidTxnState(txn, "not active"));
        }
        if mark > info.undo.len() {
            return Err(StorageError::InvalidTxnState(txn, "savepoint mark beyond undo chain"));
        }
        let mut suffix = info.undo.split_off(mark);
        suffix.reverse();
        Ok(suffix)
    }

    /// Takes the undo chain (newest first) and marks the txn aborted.
    pub fn take_undo_for_abort(&self, txn: TxnId) -> StorageResult<Vec<UndoOp>> {
        let mut live = self.live.lock();
        let info =
            live.get_mut(&txn).ok_or(StorageError::InvalidTxnState(txn, "unknown transaction"))?;
        if matches!(info.state, TxnState::Committed | TxnState::Aborted) {
            return Err(StorageError::InvalidTxnState(txn, "abort of finished txn"));
        }
        info.state = TxnState::Aborted;
        let mut undo = std::mem::take(&mut info.undo);
        undo.reverse();
        Ok(undo)
    }

    /// Transactions currently in [`TxnState::Active`] or
    /// [`TxnState::Preparing`] (for fuzzy checkpoints).
    pub fn active_txns(&self) -> Vec<TxnId> {
        self.live
            .lock()
            .iter()
            .filter(|(_, i)| matches!(i.state, TxnState::Active | TxnState::Preparing))
            .map(|(t, _)| *t)
            .collect()
    }

    /// Drops bookkeeping for a finished transaction.
    pub fn forget(&self, txn: TxnId) {
        let mut live = self.live.lock();
        if let Some(info) = live.get(&txn) {
            if matches!(info.state, TxnState::Committed | TxnState::Aborted) {
                live.remove(&txn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::PageId;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lifecycle_happy_path() {
        let tm = TxnManager::new();
        let t = tm.begin();
        assert_eq!(tm.state(t), Some(TxnState::Active));
        tm.push_undo(t, UndoOp::Insert(Rid::new(PageId(0), 0))).unwrap();
        tm.prepare(t).unwrap();
        assert_eq!(tm.state(t), Some(TxnState::Preparing));
        tm.finish_commit(t).unwrap();
        assert_eq!(tm.state(t), Some(TxnState::Committed));
        tm.forget(t);
        assert_eq!(tm.state(t), None);
    }

    #[test]
    fn undo_chain_is_returned_reversed() {
        let tm = TxnManager::new();
        let t = tm.begin();
        tm.push_undo(t, UndoOp::Insert(Rid::new(PageId(0), 1))).unwrap();
        tm.push_undo(t, UndoOp::Insert(Rid::new(PageId(0), 2))).unwrap();
        let undo = tm.take_undo_for_abort(t).unwrap();
        match (&undo[0], &undo[1]) {
            (UndoOp::Insert(a), UndoOp::Insert(b)) => {
                assert_eq!(a.slot, 2);
                assert_eq!(b.slot, 1);
            }
            other => panic!("unexpected undo chain {other:?}"),
        }
        assert_eq!(tm.state(t), Some(TxnState::Aborted));
    }

    #[test]
    fn work_after_commit_is_rejected() {
        let tm = TxnManager::new();
        let t = tm.begin();
        tm.prepare(t).unwrap();
        tm.finish_commit(t).unwrap();
        assert!(tm.push_undo(t, UndoOp::Insert(Rid::new(PageId(0), 0))).is_err());
        assert!(tm.check_active(t).is_err());
    }

    #[test]
    fn double_abort_is_rejected() {
        let tm = TxnManager::new();
        let t = tm.begin();
        tm.take_undo_for_abort(t).unwrap();
        assert!(tm.take_undo_for_abort(t).is_err());
    }

    #[test]
    fn observers_see_events_in_order() {
        struct Counter(AtomicUsize);
        impl TxnObserver for Counter {
            fn on_txn_event(&self, _txn: TxnId, _ev: TxnEvent) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let tm = TxnManager::new();
        let c = Arc::new(Counter(AtomicUsize::new(0)));
        tm.add_observer(c.clone());
        let t = tm.begin();
        tm.notify(t, TxnEvent::Begin);
        tm.notify(t, TxnEvent::PreCommit);
        tm.notify(t, TxnEvent::Commit);
        assert_eq!(c.0.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn advance_past_prevents_id_reuse() {
        let tm = TxnManager::new();
        tm.advance_past(TxnId(100));
        let t = tm.begin();
        assert!(t.0 > 100);
    }

    #[test]
    fn event_names_match_sentinel_interface() {
        assert_eq!(TxnEvent::Begin.event_name(), "begin-transaction");
        assert_eq!(TxnEvent::PreCommit.event_name(), "pre-commit-transaction");
    }
}
