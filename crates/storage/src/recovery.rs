//! Restart recovery: analysis, redo, undo.
//!
//! The scheme is ARIES-shaped but simplified to record-granularity
//! operations with full before/after images:
//!
//! 1. **Analysis** — scan the whole log (the scan itself discards any torn
//!    tail); find the last checkpoint; classify every transaction as
//!    *winner* (has COMMIT), *rolled back* (has ABORT) or *loser* (neither).
//! 2. **Redo** — repeat history from the last checkpoint forward: replay
//!    every Insert/Update/Delete, including the compensation records that
//!    runtime aborts logged. Replay is idempotent (`insert_at` overwrites,
//!    update rewrites, delete tolerates an already-empty slot), so redo after
//!    redo converges.
//! 3. **Undo** — for each loser, walk its operations (from the *entire* log,
//!    since pre-checkpoint effects are on disk) newest-first and reverse
//!    them, logging compensations as ordinary records followed by an ABORT
//!    record, so a crash during recovery just recovers again.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;

use crate::common::{StorageError, StorageResult, TxnId};
use crate::heap::HeapFile;
use crate::txn::TxnManager;
use crate::wal::{LogRecord, Wal};

/// Summary of a completed recovery pass (returned for diagnostics/tests).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed during redo.
    pub redone: usize,
    /// Loser transactions rolled back.
    pub losers: usize,
    /// Operations undone across all losers.
    pub undone: usize,
}

/// Runs restart recovery over `wal` + `heap`.
pub fn recover(wal: &Wal, heap: &HeapFile, txns: &TxnManager) -> StorageResult<RecoveryReport> {
    let records = wal.scan()?;
    if records.is_empty() {
        return Ok(RecoveryReport::default());
    }

    // --- Analysis ---------------------------------------------------------
    let mut finished: HashSet<TxnId> = HashSet::new();
    let mut seen: HashSet<TxnId> = HashSet::new();
    let mut last_checkpoint: Option<usize> = None;
    let mut max_txn = TxnId(0);
    for (i, (_, rec)) in records.iter().enumerate() {
        if let Some(t) = rec.txn() {
            seen.insert(t);
            if t > max_txn {
                max_txn = t;
            }
        }
        match rec {
            LogRecord::Commit { txn } | LogRecord::Abort { txn } => {
                finished.insert(*txn);
            }
            LogRecord::Checkpoint { .. } => last_checkpoint = Some(i),
            _ => {}
        }
    }
    let losers: HashSet<TxnId> = seen.difference(&finished).copied().collect();
    txns.advance_past(max_txn);

    // --- Redo: repeat history from the last checkpoint ---------------------
    let redo_from = last_checkpoint.map_or(0, |i| i + 1);
    let mut report = RecoveryReport::default();
    for (_, rec) in &records[redo_from..] {
        match rec {
            LogRecord::Insert { rid, data, .. } => {
                heap.insert_at(*rid, data)?;
                report.redone += 1;
            }
            LogRecord::Update { rid, after, .. } => {
                // The record may be missing if redo starts past the insert
                // of a pre-checkpoint record that was later compacted; the
                // after-image makes replay self-contained either way.
                match heap.update(*rid, after) {
                    Ok(_) => {}
                    Err(StorageError::RecordNotFound(_)) => heap.insert_at(*rid, after)?,
                    Err(e) => return Err(e),
                }
                report.redone += 1;
            }
            LogRecord::Delete { rid, .. } => {
                match heap.delete(*rid) {
                    Ok(_) | Err(StorageError::RecordNotFound(_)) => {}
                    // An already-empty slot is fine: replaying a delete twice.
                    Err(StorageError::Corrupt(_)) => {}
                    Err(e) => return Err(e),
                }
                report.redone += 1;
            }
            _ => {}
        }
    }

    // --- Undo losers (newest-first over the whole log) ---------------------
    // Collect each loser's ops in log order, then reverse per transaction.
    let mut ops: HashMap<TxnId, Vec<&LogRecord>> = HashMap::new();
    for (_, rec) in &records {
        if let Some(t) = rec.txn() {
            if losers.contains(&t)
                && matches!(
                    rec,
                    LogRecord::Insert { .. } | LogRecord::Update { .. } | LogRecord::Delete { .. }
                )
            {
                ops.entry(t).or_default().push(rec);
            }
        }
    }
    // Deterministic order across runs.
    let mut loser_list: Vec<TxnId> = losers.into_iter().collect();
    loser_list.sort();
    for t in loser_list {
        let txn_ops = ops.remove(&t).unwrap_or_default();
        for rec in txn_ops.into_iter().rev() {
            match rec {
                LogRecord::Insert { rid, data, .. } => {
                    match heap.delete(*rid) {
                        Ok(_)
                        | Err(StorageError::RecordNotFound(_))
                        | Err(StorageError::Corrupt(_)) => {}
                        Err(e) => return Err(e),
                    }
                    wal.append(&LogRecord::Delete { txn: t, rid: *rid, data: data.clone() })?;
                }
                LogRecord::Update { rid, before, after, .. } => {
                    match heap.update(*rid, before) {
                        Ok(_) => {}
                        Err(StorageError::RecordNotFound(_)) => heap.insert_at(*rid, before)?,
                        Err(e) => return Err(e),
                    }
                    wal.append(&LogRecord::Update {
                        txn: t,
                        rid: *rid,
                        before: after.clone(),
                        after: before.clone(),
                    })?;
                }
                LogRecord::Delete { rid, data, .. } => {
                    heap.insert_at(*rid, data)?;
                    wal.append(&LogRecord::Insert {
                        txn: t,
                        rid: *rid,
                        data: Bytes::copy_from_slice(data),
                    })?;
                }
                _ => unreachable!("only data ops collected"),
            }
            report.undone += 1;
        }
        wal.append(&LogRecord::Abort { txn: t })?;
        report.losers += 1;
    }
    wal.flush()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::common::{PageId, Rid};
    use crate::disk::{DiskManager, MemDisk};
    use crate::wal::{LogStore, MemLogStore};
    use std::sync::Arc;

    struct Fixture {
        disk: Arc<MemDisk>,
        log: Arc<MemLogStore>,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture { disk: Arc::new(MemDisk::new()), log: Arc::new(MemLogStore::new()) }
        }

        fn wal(&self) -> Wal {
            Wal::new(self.log.clone() as Arc<dyn LogStore>)
        }

        fn heap(&self) -> HeapFile {
            let pool = Arc::new(BufferPool::new(self.disk.clone() as Arc<dyn DiskManager>, 16));
            let pages: Vec<PageId> = (0..self.disk.num_pages()).map(PageId).collect();
            HeapFile::attach(pool, pages)
        }
    }

    #[test]
    fn empty_log_is_a_noop() {
        let fx = Fixture::new();
        let wal = fx.wal();
        let heap = fx.heap();
        let report = recover(&wal, &heap, &TxnManager::new()).unwrap();
        assert_eq!(report, RecoveryReport::default());
    }

    #[test]
    fn committed_insert_is_redone_onto_empty_disk() {
        let fx = Fixture::new();
        let wal = fx.wal();
        let rid = Rid::new(PageId(0), 0);
        wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        wal.append(&LogRecord::Insert { txn: TxnId(1), rid, data: Bytes::from_static(b"hello") })
            .unwrap();
        wal.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();

        let heap = fx.heap();
        let report = recover(&wal, &heap, &TxnManager::new()).unwrap();
        assert_eq!(report.redone, 1);
        assert_eq!(report.losers, 0);
        assert_eq!(heap.get(rid).unwrap(), b"hello");
    }

    #[test]
    fn loser_is_undone_and_abort_logged() {
        let fx = Fixture::new();
        let wal = fx.wal();
        let rid = Rid::new(PageId(0), 0);
        wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        wal.append(&LogRecord::Insert { txn: TxnId(1), rid, data: Bytes::from_static(b"ghost") })
            .unwrap();
        // no commit -> loser

        let heap = fx.heap();
        let report = recover(&wal, &heap, &TxnManager::new()).unwrap();
        assert_eq!(report.losers, 1);
        assert_eq!(report.undone, 1);
        assert!(heap.get(rid).is_err());
        // An abort record must now close the loser.
        let records = wal.scan().unwrap();
        assert!(matches!(records.last().unwrap().1, LogRecord::Abort { txn: TxnId(1) }));
    }

    #[test]
    fn recovery_is_idempotent_across_repeated_crashes() {
        let fx = Fixture::new();
        let wal = fx.wal();
        let rid_a = Rid::new(PageId(0), 0);
        let rid_b = Rid::new(PageId(0), 1);
        wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        wal.append(&LogRecord::Insert {
            txn: TxnId(1),
            rid: rid_a,
            data: Bytes::from_static(b"a"),
        })
        .unwrap();
        wal.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
        wal.append(&LogRecord::Begin { txn: TxnId(2) }).unwrap();
        wal.append(&LogRecord::Insert {
            txn: TxnId(2),
            rid: rid_b,
            data: Bytes::from_static(b"b"),
        })
        .unwrap();

        let heap = fx.heap();
        recover(&wal, &heap, &TxnManager::new()).unwrap();
        // "Crash" again: run recovery a second and third time.
        let heap2 = fx.heap();
        recover(&wal, &heap2, &TxnManager::new()).unwrap();
        let heap3 = fx.heap();
        let report = recover(&wal, &heap3, &TxnManager::new()).unwrap();
        assert_eq!(report.losers, 0, "loser was closed by the first recovery");
        assert_eq!(heap3.get(rid_a).unwrap(), b"a");
        assert!(heap3.get(rid_b).is_err());
    }

    #[test]
    fn update_chain_redo_produces_final_value() {
        let fx = Fixture::new();
        let wal = fx.wal();
        let rid = Rid::new(PageId(0), 0);
        wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        wal.append(&LogRecord::Insert { txn: TxnId(1), rid, data: Bytes::from_static(b"v0") })
            .unwrap();
        wal.append(&LogRecord::Update {
            txn: TxnId(1),
            rid,
            before: Bytes::from_static(b"v0"),
            after: Bytes::from_static(b"v1"),
        })
        .unwrap();
        wal.append(&LogRecord::Update {
            txn: TxnId(1),
            rid,
            before: Bytes::from_static(b"v1"),
            after: Bytes::from_static(b"v2"),
        })
        .unwrap();
        wal.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
        let heap = fx.heap();
        recover(&wal, &heap, &TxnManager::new()).unwrap();
        assert_eq!(heap.get(rid).unwrap(), b"v2");
    }

    #[test]
    fn loser_update_and_delete_are_reversed() {
        let fx = Fixture::new();
        let wal = fx.wal();
        let rid_a = Rid::new(PageId(0), 0);
        let rid_b = Rid::new(PageId(0), 1);
        // Committed baseline.
        wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        wal.append(&LogRecord::Insert {
            txn: TxnId(1),
            rid: rid_a,
            data: Bytes::from_static(b"base"),
        })
        .unwrap();
        wal.append(&LogRecord::Insert {
            txn: TxnId(1),
            rid: rid_b,
            data: Bytes::from_static(b"gone?"),
        })
        .unwrap();
        wal.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
        // Loser mutates both.
        wal.append(&LogRecord::Begin { txn: TxnId(2) }).unwrap();
        wal.append(&LogRecord::Update {
            txn: TxnId(2),
            rid: rid_a,
            before: Bytes::from_static(b"base"),
            after: Bytes::from_static(b"dirty"),
        })
        .unwrap();
        wal.append(&LogRecord::Delete {
            txn: TxnId(2),
            rid: rid_b,
            data: Bytes::from_static(b"gone?"),
        })
        .unwrap();
        let heap = fx.heap();
        recover(&wal, &heap, &TxnManager::new()).unwrap();
        assert_eq!(heap.get(rid_a).unwrap(), b"base");
        assert_eq!(heap.get(rid_b).unwrap(), b"gone?");
    }

    #[test]
    fn txn_ids_advance_past_logged_ids() {
        let fx = Fixture::new();
        let wal = fx.wal();
        wal.append(&LogRecord::Begin { txn: TxnId(41) }).unwrap();
        wal.append(&LogRecord::Commit { txn: TxnId(41) }).unwrap();
        let heap = fx.heap();
        let tm = TxnManager::new();
        recover(&wal, &heap, &tm).unwrap();
        assert!(tm.begin().0 > 41);
    }
}
