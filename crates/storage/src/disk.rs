//! Page-granular disk manager.
//!
//! Two implementations of [`DiskManager`] are provided: [`FileDisk`] backed
//! by a real file (what a deployment uses) and [`MemDisk`] backed by a
//! `Vec` (what tests and benchmarks use so they exercise the identical code
//! path without filesystem noise). Both hand out whole pages; all structure
//! within a page belongs to [`crate::page`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::common::{PageId, StorageError, StorageResult};
use crate::page::PAGE_SIZE;

/// Abstraction over the backing medium for pages.
pub trait DiskManager: Send + Sync {
    /// Reads page `id` into `buf` (exactly [`PAGE_SIZE`] bytes).
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> StorageResult<()>;

    /// Writes `buf` to page `id`.
    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> StorageResult<()>;

    /// Appends a fresh zeroed page and returns its id.
    fn allocate_page(&self) -> StorageResult<PageId>;

    /// Number of pages currently allocated.
    fn num_pages(&self) -> u32;

    /// Forces all written pages to the medium.
    fn sync(&self) -> StorageResult<()>;
}

/// File-backed disk manager.
pub struct FileDisk {
    inner: Mutex<FileDiskInner>,
}

struct FileDiskInner {
    file: File,
    num_pages: u32,
}

impl FileDisk {
    /// Opens (creating if necessary) the database file at `path`.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt("database file is not page-aligned"));
        }
        let num_pages = (len / PAGE_SIZE as u64) as u32;
        Ok(FileDisk { inner: Mutex::new(FileDiskInner { file, num_pages }) })
    }
}

impl DiskManager for FileDisk {
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if id.0 >= inner.num_pages {
            return Err(StorageError::PageOutOfBounds(id));
        }
        inner.file.seek(SeekFrom::Start(u64::from(id.0) * PAGE_SIZE as u64))?;
        inner.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if id.0 >= inner.num_pages {
            return Err(StorageError::PageOutOfBounds(id));
        }
        inner.file.seek(SeekFrom::Start(u64::from(id.0) * PAGE_SIZE as u64))?;
        inner.file.write_all(buf)?;
        Ok(())
    }

    fn allocate_page(&self) -> StorageResult<PageId> {
        let mut inner = self.inner.lock();
        let id = PageId(inner.num_pages);
        let zero = [0u8; PAGE_SIZE];
        inner.file.seek(SeekFrom::Start(u64::from(id.0) * PAGE_SIZE as u64))?;
        inner.file.write_all(&zero)?;
        inner.num_pages += 1;
        Ok(id)
    }

    fn num_pages(&self) -> u32 {
        self.inner.lock().num_pages
    }

    fn sync(&self) -> StorageResult<()> {
        self.inner.lock().file.sync_data()?;
        Ok(())
    }
}

/// In-memory disk manager for tests and benchmarks.
#[derive(Default)]
pub struct MemDisk {
    pages: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
}

impl MemDisk {
    /// An empty in-memory "disk".
    pub fn new() -> Self {
        Self::default()
    }
}

impl DiskManager for MemDisk {
    fn read_page(&self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
        let pages = self.pages.lock();
        let page = pages.get(id.0 as usize).ok_or(StorageError::PageOutOfBounds(id))?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        let mut pages = self.pages.lock();
        let page = pages.get_mut(id.0 as usize).ok_or(StorageError::PageOutOfBounds(id))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate_page(&self) -> StorageResult<PageId> {
        let mut pages = self.pages.lock();
        let id = PageId(pages.len() as u32);
        pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok(id)
    }

    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(disk: &dyn DiskManager) {
        let p0 = disk.allocate_page().unwrap();
        let p1 = disk.allocate_page().unwrap();
        assert_eq!(p0, PageId(0));
        assert_eq!(p1, PageId(1));
        assert_eq!(disk.num_pages(), 2);

        let mut w = [0u8; PAGE_SIZE];
        w[0] = 0xAB;
        w[PAGE_SIZE - 1] = 0xCD;
        disk.write_page(p1, &w).unwrap();

        let mut r = [0u8; PAGE_SIZE];
        disk.read_page(p1, &mut r).unwrap();
        assert_eq!(r[0], 0xAB);
        assert_eq!(r[PAGE_SIZE - 1], 0xCD);

        // p0 stays zeroed.
        disk.read_page(p0, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0));
    }

    #[test]
    fn memdisk_roundtrip() {
        roundtrip(&MemDisk::new());
    }

    #[test]
    fn memdisk_out_of_bounds_read_is_error() {
        let disk = MemDisk::new();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(matches!(
            disk.read_page(PageId(3), &mut buf),
            Err(StorageError::PageOutOfBounds(_))
        ));
    }

    #[test]
    fn filedisk_roundtrip_and_reopen() {
        let path = std::env::temp_dir().join(format!(
            "sentinel-disk-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let disk = FileDisk::open(&path).unwrap();
            roundtrip(&disk);
            disk.sync().unwrap();
        }
        {
            // Reopen: contents must persist.
            let disk = FileDisk::open(&path).unwrap();
            assert_eq!(disk.num_pages(), 2);
            let mut r = [0u8; PAGE_SIZE];
            disk.read_page(PageId(1), &mut r).unwrap();
            assert_eq!(r[0], 0xAB);
        }
        let _ = std::fs::remove_file(&path);
    }
}
