//! End-to-end failover over the wire: a real primary `sentinel-server`
//! process ships its journal to a real replica process, is killed with
//! SIGKILL mid-composite, and the promoted replica completes the
//! composite with the pre-crash constituent's parameters — zero loss.
//! Covers both explicit promotion (`Promote` opcode) and lease-based
//! auto-promotion, plus the replication entries in the flight recorder
//! surfacing in a post-SIGKILL recovery report.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sentinel_net::client::{ClientError, RuleSpec, SentinelClient};
use sentinel_obs::json;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sentinel-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns `sentinel-server --data-dir <dir>` on an OS-picked port with
/// `extra` flags and waits for its readiness line.
fn spawn_server_with(dir: &Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sentinel-server"))
        .args(["--addr", "127.0.0.1:0", "--data-dir", dir.to_str().unwrap()])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sentinel-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("server exited before readiness").expect("read stdout");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    (child, addr)
}

fn connect(addr: &str, name: &str) -> SentinelClient {
    SentinelClient::connect_with_backoff(addr, name, 40, Duration::from_millis(25))
        .expect("connect to server")
}

/// Polls the primary's stats until its only follower has acked the full
/// replication log (lag 0 with a non-empty log).
fn wait_follower_caught_up(admin: &SentinelClient) {
    let t0 = Instant::now();
    loop {
        let stats = admin.stats().expect("primary stats");
        let caught_up = stats
            .get("replication")
            .and_then(|r| r.get("followers"))
            .and_then(json::Value::as_arr)
            .and_then(|fs| fs.first().cloned())
            .is_some_and(|f| {
                f.get("lag").and_then(json::Value::as_u64) == Some(0)
                    && f.get("applied").and_then(json::Value::as_u64).unwrap_or(0) > 0
            });
        if caught_up {
            return;
        }
        assert!(t0.elapsed() < Duration::from_secs(15), "follower never caught up: {stats}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// SIGKILL the primary mid-composite; explicitly promote the caught-up
/// replica; the composite completes there with the shipped constituent's
/// parameters. Then SIGKILL the promoted node too: its recovery report
/// carries the replication story (catch-up, promote) in the flight
/// recorder, and the completed composite survives on disk.
#[test]
fn sigkill_primary_explicit_promote_completes_composite() {
    let pdir = tmp("explicit-p");
    let rdir = tmp("explicit-r");

    let (mut primary, paddr) = spawn_server_with(&pdir, &["--checkpoint-every", "3"]);
    let admin = connect(&paddr, "admin");
    admin.define_event("order", None).unwrap();
    admin.define_event("ship", None).unwrap();
    admin.define_event("fulfilled", Some("(order ; ship)")).unwrap();
    admin.define_rule(&RuleSpec::count("pair", "fulfilled").context("recent")).unwrap();
    let dets = admin.signal_sync("order", &[(Arc::from("sku"), 41i64.into())], None).unwrap();
    assert_eq!(dets, 0, "half a composite detects nothing yet");

    let (mut replica, raddr) = spawn_server_with(
        &rdir,
        &["--replica-of", &paddr, "--lease-ms", "0", "--follower-name", "f1"],
    );
    wait_follower_caught_up(&admin);

    // The replica refuses writes while the primary lives.
    let rclient = connect(&raddr, "survivor");
    match rclient.signal_sync("ship", &[], None) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "read-only"),
        other => panic!("replica must refuse writes before promotion, got {other:?}"),
    }

    drop(admin);
    primary.kill().expect("SIGKILL primary");
    let _ = primary.wait();

    assert!(rclient.promote().unwrap(), "explicit promotion of the caught-up replica");
    let dets = rclient.signal_sync("ship", &[(Arc::from("sku"), 42i64.into())], None).unwrap();
    assert_eq!(dets, 1, "pre-crash half completes on the promoted node");
    let stats = rclient.stats().unwrap();
    assert_eq!(
        stats.get("rule_hits").and_then(|h| h.get("pair")).and_then(json::Value::as_u64),
        Some(1),
        "zero loss across failover: {stats}"
    );
    let last = stats
        .get("rule_last")
        .and_then(|l| l.get("pair"))
        .and_then(json::Value::as_str)
        .expect("rule_last records the firing");
    assert!(
        last.contains("sku=41") && last.contains("sku=42"),
        "firing pairs the shipped pre-crash constituent with the new one: {last}"
    );

    // One more journaled half-composite after the dump throttle window,
    // so the committer's flight-recorder dump is guaranteed to include
    // the promote entry before we kill the process.
    std::thread::sleep(Duration::from_millis(60));
    rclient.signal_sync("order", &[(Arc::from("sku"), 43i64.into())], None).unwrap();

    // Now SIGKILL the promoted node and restart it: recovery folds the
    // flight recorder into the report, replication events included.
    replica.kill().expect("SIGKILL promoted node");
    let _ = replica.wait();
    let (mut restarted, raddr2) = spawn_server_with(&rdir, &[]);
    let back = connect(&raddr2, "post-mortem");
    let report = std::fs::read_to_string(rdir.join("recovery-report.json")).unwrap();
    let report = json::Value::parse(&report).expect("well-formed report");
    let flight = report.get("flight_recorder").expect("report carries the flight recorder");
    let kinds: Vec<&str> = flight
        .get("events")
        .and_then(json::Value::as_arr)
        .expect("events array")
        .iter()
        .filter_map(|e| e.get("kind").and_then(json::Value::as_str))
        .collect();
    for want in ["catch_up", "promote"] {
        assert!(kinds.contains(&want), "flight recorder lost the {want} entry: {kinds:?}");
    }
    // And the post-failover journal recovered: the half-composite
    // signalled on the *promoted* node completes across its own crash.
    let dets = back.signal_sync("ship", &[(Arc::from("sku"), 44i64.into())], None).unwrap();
    assert_eq!(dets, 1, "the promoted node's own journal survived its crash");

    back.shutdown_server().unwrap();
    let _ = restarted.wait();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

/// With a lease configured, the follower needs no operator: once the
/// SIGKILLed primary stays unreachable past the lease, the apply loop
/// promotes itself and the node starts accepting writes.
#[test]
fn sigkill_primary_lease_auto_promotes_follower() {
    let pdir = tmp("lease-p");
    let rdir = tmp("lease-r");

    let (mut primary, paddr) = spawn_server_with(&pdir, &[]);
    let admin = connect(&paddr, "admin");
    admin.define_event("a", None).unwrap();
    admin.define_event("b", None).unwrap();
    admin.define_event("ab", Some("(a ; b)")).unwrap();
    admin.define_rule(&RuleSpec::count("r", "ab")).unwrap();
    admin.signal_sync("a", &[(Arc::from("x"), 7i64.into())], None).unwrap();

    let (mut replica, raddr) = spawn_server_with(
        &rdir,
        &["--replica-of", &paddr, "--lease-ms", "400", "--follower-name", "auto"],
    );
    wait_follower_caught_up(&admin);
    drop(admin);
    primary.kill().expect("SIGKILL primary");
    let _ = primary.wait();

    // No Promote frame: the follower notices the dead primary on its own.
    let rclient = connect(&raddr, "survivor");
    let t0 = Instant::now();
    let dets = loop {
        match rclient.signal_sync("b", &[(Arc::from("x"), 8i64.into())], None) {
            Ok(d) => break d,
            Err(ClientError::Server { code, .. }) if code == "read-only" => {
                assert!(
                    t0.elapsed() < Duration::from_secs(15),
                    "lease expired but the follower never promoted itself"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("unexpected error while waiting for auto-promotion: {e}"),
        }
    };
    assert_eq!(dets, 1, "pre-crash half completes after auto-promotion");
    let stats = rclient.stats().unwrap();
    assert_eq!(
        stats.get("replication").and_then(|r| r.get("role")).and_then(json::Value::as_str),
        None,
        "a promoted node with no followers reports no replication section: {stats}"
    );

    rclient.shutdown_server().unwrap();
    let _ = replica.wait();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}
