//! End-to-end crash/restart over the wire: a real `sentinel-server`
//! process is killed with SIGKILL mid-composite and restarted from the
//! same `--data-dir`; a reconnecting client completes the composite and
//! the rule fires with the *pre-crash* constituent's parameters.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use sentinel_net::client::{RuleSpec, SentinelClient};
use sentinel_obs::json;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sentinel-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns `sentinel-server --data-dir <dir>` on an OS-picked port with
/// `extra` flags and waits for its readiness line; returns the child and
/// the bound address.
fn spawn_server_with(dir: &Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sentinel-server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            dir.to_str().unwrap(),
            "--checkpoint-every",
            "3",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sentinel-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("server exited before readiness").expect("read stdout");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    (child, addr)
}

fn spawn_server(dir: &Path) -> (Child, String) {
    spawn_server_with(dir, &[])
}

fn connect(addr: &str, name: &str) -> SentinelClient {
    SentinelClient::connect_with_backoff(addr, name, 20, Duration::from_millis(25))
        .expect("connect to server")
}

#[test]
fn sigkill_mid_composite_then_restart_completes_it() {
    let dir = tmp("mid");

    // Incarnation 1: define the schema over TCP and signal *half* of the
    // composite, then die without any chance to clean up.
    let (mut server, addr) = spawn_server(&dir);
    {
        let admin = connect(&addr, "admin");
        admin.define_event("order", None).unwrap();
        admin.define_event("ship", None).unwrap();
        admin.define_event("fulfilled", Some("(order ; ship)")).unwrap();
        admin.define_rule(&RuleSpec::count("pair", "fulfilled").context("recent")).unwrap();
        let dets = admin.signal_sync("order", &[(Arc::from("sku"), 41i64.into())], None).unwrap();
        assert_eq!(dets, 0, "half a composite detects nothing yet");
    }
    server.kill().expect("SIGKILL server");
    let _ = server.wait();

    // Incarnation 2: same data directory, fresh port. Recovery rebuilds
    // the catalog and the half-detected composite from disk.
    let (mut server, addr) = spawn_server(&dir);
    let client = connect(&addr, "survivor");
    let dets = client.signal_sync("ship", &[(Arc::from("sku"), 42i64.into())], None).unwrap();
    assert_eq!(dets, 1, "pre-crash half completes the composite after restart");

    let stats = client.stats().unwrap();
    let hits = stats.get("rule_hits").and_then(|h| h.get("pair")).and_then(json::Value::as_u64);
    assert_eq!(hits, Some(1), "rule fired once: {stats}");
    let last = stats
        .get("rule_last")
        .and_then(|l| l.get("pair"))
        .and_then(json::Value::as_str)
        .expect("rule_last records the firing");
    assert!(
        last.contains("sku=41") && last.contains("sku=42"),
        "firing carries the pre-crash constituent's parameters: {last}"
    );

    // The restart wrote a recovery report describing what came back.
    let report = std::fs::read_to_string(dir.join("recovery-report.json")).unwrap();
    let report = json::Value::parse(&report).expect("well-formed report");
    assert_eq!(report.get("journal_records").and_then(json::Value::as_u64), Some(1));
    assert!(report.get("catalog_ops").and_then(json::Value::as_u64).unwrap_or(0) >= 4);

    client.shutdown_server().unwrap();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Durability and parallel detection compose end to end: a server running
/// 8 detector workers over a durable data directory (sharded journal,
/// group commit) is SIGKILLed with eight half-detected composites in
/// eight disjoint shards, and the restarted server — same flags —
/// completes every one of them from the recovered per-shard streams.
#[test]
fn sigkill_parallel_durable_server_recovers_every_shard() {
    let dir = tmp("parallel");
    let flags = ["--detector-threads", "8", "--group-window-us", "100"];
    const COMPONENTS: usize = 8;

    let (mut server, addr) = spawn_server_with(&dir, &flags);
    {
        let admin = connect(&addr, "admin");
        for i in 0..COMPONENTS {
            admin.define_event(&format!("a{i}"), None).unwrap();
            admin.define_event(&format!("b{i}"), None).unwrap();
            admin.define_event(&format!("pair{i}"), Some(&format!("(a{i} ; b{i})"))).unwrap();
            admin.define_rule(&RuleSpec::count(&format!("r{i}"), &format!("pair{i}"))).unwrap();
        }
        // Half of every composite, one per shard, then die.
        for i in 0..COMPONENTS {
            let dets = admin
                .signal_sync(&format!("a{i}"), &[(Arc::from("sku"), (i as i64).into())], None)
                .unwrap();
            assert_eq!(dets, 0, "half a composite detects nothing yet");
        }
    }
    server.kill().expect("SIGKILL server");
    let _ = server.wait();

    let (mut server, addr) = spawn_server_with(&dir, &flags);
    let client = connect(&addr, "survivor");
    let report = std::fs::read_to_string(dir.join("recovery-report.json")).unwrap();
    let report = json::Value::parse(&report).expect("well-formed report");
    assert_eq!(
        report.get("journal_records").and_then(json::Value::as_u64),
        Some(COMPONENTS as u64),
        "every shard's stream recovered: {report}"
    );

    // The committer kept `flight-recorder.json` fresh while incarnation 1
    // ran, so the SIGKILLed process left its final seconds on disk and
    // recovery folded them into the report: signal entries labelled with
    // the pre-crash workload's event names.
    let flight = report.get("flight_recorder").expect("report carries the flight recorder");
    assert_ne!(*flight, json::Value::Null, "flight-recorder section survived the SIGKILL");
    let events = flight.get("events").and_then(json::Value::as_arr).expect("events array");
    assert!(!events.is_empty(), "flight recorder captured pre-crash events");
    let signal_labels: Vec<&str> = events
        .iter()
        .filter(|e| e.get("kind").and_then(json::Value::as_str) == Some("signal"))
        .filter_map(|e| e.get("label").and_then(json::Value::as_str))
        .collect();
    assert!(!signal_labels.is_empty(), "flight recorder captured pre-crash signals: {flight}");
    let expected: Vec<String> = (0..COMPONENTS).map(|i| format!("a{i}")).collect();
    for label in &signal_labels {
        assert!(
            expected.iter().any(|e| e == label),
            "flight signal {label} matches the pre-crash workload"
        );
    }
    for i in 0..COMPONENTS {
        let dets = client
            .signal_sync(&format!("b{i}"), &[(Arc::from("sku"), (100 + i as i64).into())], None)
            .unwrap();
        assert_eq!(dets, 1, "pre-crash half of pair{i} completes after restart");
    }

    client.shutdown_server().unwrap();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_then_restart_replays_nothing() {
    let dir = tmp("graceful");

    let (mut server, addr) = spawn_server(&dir);
    {
        let admin = connect(&addr, "admin");
        admin.define_event("tick", None).unwrap();
        admin.define_event("double", Some("(tick ; tick)")).unwrap();
        admin.define_rule(&RuleSpec::count("dbl", "double")).unwrap();
        for i in 0..5 {
            admin.signal_sync("tick", &[(Arc::from("i"), i64::from(i).into())], None).unwrap();
        }
        // Client-driven graceful shutdown: the server drains, flushes the
        // journal, and cuts a final checkpoint before exiting.
        admin.shutdown_server().unwrap();
    }
    let _ = server.wait();

    let (mut server, addr) = spawn_server(&dir);
    let client = connect(&addr, "again");
    let report = std::fs::read_to_string(dir.join("recovery-report.json")).unwrap();
    let report = json::Value::parse(&report).expect("well-formed report");
    assert_eq!(
        report.get("replayed_records").and_then(json::Value::as_u64),
        Some(0),
        "final checkpoint covers the whole journal: {report}"
    );
    assert_eq!(report.get("checkpoint_tag").and_then(json::Value::as_u64), Some(5));
    // And the graph state is live: one more tick completes a `double`.
    let dets = client.signal_sync("tick", &[(Arc::from("i"), 99i64.into())], None).unwrap();
    assert_eq!(dets, 1, "odd pre-shutdown tick pairs with the new one");

    client.shutdown_server().unwrap();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
