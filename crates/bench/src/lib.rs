//! Benchmark support library: shared workload generators for the BEAST-style
//! benches (see `benches/`) and the `beast` binary that prints the
//! EXPERIMENTS.md tables.

pub mod workload;
