//! `sentinel-top`: a live per-shard / per-rule terminal view over a
//! running server's `MetricsScrape` opcode — `top` for the active DBMS.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin sentinel-top -- [FLAGS]
//!
//!   --addr <host:port>   server address (default 127.0.0.1:7878)
//!   --interval-ms <N>    refresh interval (default 1000)
//!   --iters <N>          exit after N refreshes (default: run forever)
//!   --once               scrape once, print, exit (no ANSI clearing;
//!                        equivalent to --iters 1 without the redraw)
//! ```
//!
//! Each refresh scrapes `{prom, telemetry}` and renders: signal/fire
//! rates over the last interval (from the time-series ring deltas),
//! per-shard queue depth / signals / contention, per-rule dispatch
//! counts, and the durability gauges when the server is durable.

use std::time::Duration;

use sentinel_net::SentinelClient;
use sentinel_obs::json;

struct Args {
    addr: String,
    interval: Duration,
    iters: Option<u64>,
    once: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        interval: Duration::from_millis(1000),
        iters: None,
        once: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--interval-ms" => {
                args.interval = Duration::from_millis(
                    value("--interval-ms").parse().expect("--interval-ms <N>"),
                );
            }
            "--iters" => args.iters = Some(value("--iters").parse().expect("--iters <N>")),
            "--once" => args.once = true,
            "--help" | "-h" => {
                println!("sentinel-top [--addr HOST:PORT] [--interval-ms N] [--iters N] [--once]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The newest point of a series, if any.
fn last_point(series: &json::Value, name: &str) -> Option<u64> {
    let points = series.get(name)?.get("points")?.as_arr()?;
    points.last()?.as_arr()?.get(1)?.as_u64()
}

/// `prefix.<middle>.suffix` series names, sorted by the numeric middle.
fn shard_labels(series: &json::Value, prefix: &str, suffix: &str) -> Vec<u64> {
    let json::Value::Obj(pairs) = series else { return Vec::new() };
    let mut out: Vec<u64> = pairs
        .iter()
        .filter_map(|(name, _)| name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Follower names carried by `repl.follower.<name>.lag` series.
fn follower_labels(series: &json::Value) -> Vec<String> {
    let json::Value::Obj(pairs) = series else { return Vec::new() };
    pairs
        .iter()
        .filter_map(|(name, _)| {
            Some(name.strip_prefix("repl.follower.")?.strip_suffix(".lag")?.to_string())
        })
        .collect()
}

/// Rule names carried by `rule.<name>.hits` series.
fn rule_labels(series: &json::Value) -> Vec<String> {
    let json::Value::Obj(pairs) = series else { return Vec::new() };
    pairs
        .iter()
        .filter_map(|(name, _)| {
            Some(name.strip_prefix("rule.")?.strip_suffix(".hits")?.to_string())
        })
        .collect()
}

fn render(scrape: &json::Value, tick: u64) {
    let telemetry = scrape.get("telemetry").cloned().unwrap_or(json::Value::Null);
    let empty = json::Value::obj([] as [(&str, json::Value); 0]);
    let series = telemetry.get("series").cloned().unwrap_or(empty);

    println!("sentinel-top — refresh {tick}");
    let signals = last_point(&series, "detector.signals").unwrap_or(0);
    let fired = last_point(&series, "scheduler.fired").unwrap_or(0);
    println!("  signals/interval: {signals:>8}    rules fired/interval: {fired:>6}");
    if let Some(p99) = last_point(&series, "scheduler.condition_p99_ns") {
        let action = last_point(&series, "scheduler.action_p99_ns").unwrap_or(0);
        println!("  condition p99: {p99:>10} ns    action p99: {action:>10} ns");
    }
    if let Some(fsync) = last_point(&series, "durability.fsync_p99_ns") {
        let appends = last_point(&series, "durability.journal_appends").unwrap_or(0);
        let ckpts = last_point(&series, "durability.checkpoints").unwrap_or(0);
        println!(
            "  journal appends/interval: {appends:>6}    fsync p99: {fsync:>10} ns    \
             checkpoints/interval: {ckpts}"
        );
    }
    if let Some(depth) = last_point(&series, "service.queue_depth") {
        let drain = last_point(&series, "service.drain_p99_ns").unwrap_or(0);
        println!("  service queue depth: {depth:>6}    drain p99: {drain:>10} ns");
    }

    // Replication: a primary carries per-follower lag series; a replica
    // carries its own apply rate and time since primary contact.
    if let Some(tip) = last_point(&series, "repl.tip") {
        let lag = last_point(&series, "repl.lag_frames").unwrap_or(0);
        let followers = follower_labels(&series);
        if followers.is_empty() {
            let applied = last_point(&series, "repl.applied").unwrap_or(0);
            let seq = last_point(&series, "repl.applied_seq").unwrap_or(0);
            let contact = last_point(&series, "repl.last_contact_ms").unwrap_or(0);
            println!(
                "  replica: applied/interval: {applied:>6}    at seq {seq} \
                 (lag {lag} frames)    last primary contact {contact} ms ago"
            );
        } else {
            println!("  primary: replication tip {tip}    max follower lag {lag} frames");
            println!("  {:<24} {:>12} {:>14}", "follower", "lag frames", "ack age ms");
            for f in followers {
                let flag = last_point(&series, &format!("repl.follower.{f}.lag")).unwrap_or(0);
                let age =
                    last_point(&series, &format!("repl.follower.{f}.ack_age_ms")).unwrap_or(0);
                println!("  {f:<24} {flag:>12} {age:>14}");
            }
        }
    }

    let shards = shard_labels(&series, "detector.shard.", ".signals");
    if !shards.is_empty() {
        println!("  {:>6} {:>12} {:>12} {:>12}", "shard", "signals/int", "contention", "queue");
        for shard in shards {
            let sig = last_point(&series, &format!("detector.shard.{shard}.signals")).unwrap_or(0);
            let con =
                last_point(&series, &format!("detector.shard.{shard}.contention")).unwrap_or(0);
            let q =
                last_point(&series, &format!("detector.shard.{shard}.queue_depth")).unwrap_or(0);
            println!("  {shard:>6} {sig:>12} {con:>12} {q:>12}");
        }
    }

    let mut rules: Vec<(String, u64)> = rule_labels(&series)
        .into_iter()
        .map(|r| {
            let hits = last_point(&series, &format!("rule.{r}.hits")).unwrap_or(0);
            (r, hits)
        })
        .collect();
    rules.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    if !rules.is_empty() {
        println!("  {:<32} {:>12}", "rule", "fired/int");
        for (rule, hits) in rules.iter().take(16) {
            println!("  {rule:<32} {hits:>12}");
        }
    }
    if telemetry == json::Value::Null {
        println!("  (server telemetry is off — start the server without --no-telemetry)");
    }
}

fn main() {
    let args = parse_args();
    let client = match SentinelClient::connect(&args.addr, "sentinel-top") {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect to {} failed: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let iters = if args.once { Some(1) } else { args.iters };
    let mut tick = 0u64;
    loop {
        tick += 1;
        let scrape = match client.metrics_scrape() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("scrape failed: {e}");
                std::process::exit(1);
            }
        };
        if !args.once {
            // ANSI: clear screen, cursor home.
            print!("\x1b[2J\x1b[H");
        }
        render(&scrape, tick);
        if iters.is_some_and(|n| tick >= n) {
            break;
        }
        std::thread::sleep(args.interval);
    }
}
