//! The BEAST harness binary: regenerates every quantitative table of
//! EXPERIMENTS.md in one run.
//!
//! Unlike the criterion benches (statistically rigorous, per-experiment),
//! this binary prints compact tables for the whole evaluation — the rows
//! recorded in EXPERIMENTS.md. Run with:
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin beast
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sentinel_bench::workload::{
    beast_system, chain_detector, counting_rules, detector_with_leaves, fire_leaf, nested_cascade,
    objects, poke,
};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::rules::ExecutionMode;
use sentinel_core::snoop::{parse_event_expr, CouplingMode, ParamContext};
use sentinel_core::txn::PriorityPool;

/// Measures `f` over `iters` iterations, returning ns/iter.
fn measure(iters: usize, mut f: impl FnMut()) -> f64 {
    // Warmup.
    for _ in 0..iters.min(100) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else {
        format!("{ns:8.0} ns")
    }
}

fn header(title: &str) {
    println!("\n## {title}\n");
}

/// Prints the section's observability snapshot (compact JSON, one line).
fn stats_line(label: &str, json: sentinel_core::obs::json::Value) {
    println!("\nstats[{label}]: {json}");
}

fn beast_e1() {
    header("BEAST-E1: primitive event detection overhead (per poke())");
    println!("| objects | passive-ish (unsubscribed event) | active (1 rule) | overhead |");
    println!("|---|---|---|---|");
    let mut last = None;
    for nobjs in [1usize, 16, 256] {
        let s = beast_system(ExecutionMode::Inline);
        let t = s.begin().unwrap();
        let objs = objects(&s, t, nobjs);
        let mut i = 0i64;
        let base = measure(3000, || {
            i += 1;
            poke(&s, t, objs[(i as usize) % objs.len()], i);
        });
        s.commit(t).unwrap();

        let s = beast_system(ExecutionMode::Inline);
        let _c = counting_rules(&s, "poke", 1, 10);
        let t = s.begin().unwrap();
        let objs = objects(&s, t, nobjs);
        let mut i = 0i64;
        let active = measure(3000, || {
            i += 1;
            poke(&s, t, objs[(i as usize) % objs.len()], i);
        });
        s.commit(t).unwrap();
        println!("| {nobjs} | {} | {} | {:.2}x |", fmt_ns(base), fmt_ns(active), active / base);
        last = Some(s.stats());
    }
    if let Some(stats) = last {
        stats_line("e1", stats.to_json());
    }
}

fn beast_e2() {
    header("BEAST-E2: composite detection per operator chain (per full round)");
    println!("| operator | depth 1 | depth 4 | depth 8 |");
    println!("|---|---|---|---|");
    let mut last = None;
    for (label, op) in [("AND", "^"), ("OR", "|"), ("SEQ", ";")] {
        let mut cells = Vec::new();
        for depth in [1usize, 4, 8] {
            let d = chain_detector(op, depth, ParamContext::Chronicle);
            let mut txn = 0u64;
            let ns = measure(2000, || {
                txn += 1;
                for i in 0..=depth {
                    fire_leaf(&d, i, txn);
                }
            });
            cells.push(fmt_ns(ns));
            last = Some(d.stats());
        }
        println!("| {label} | {} | {} | {} |", cells[0], cells[1], cells[2]);
    }
    if let Some(stats) = last {
        stats_line("e2", stats.to_json());
    }
}

fn beast_e3() {
    header("BEAST-E3: context cost (backlog initiators + 1 terminator)");
    println!("| context | backlog 1 | backlog 32 | backlog 256 |");
    println!("|---|---|---|---|");
    let mut last = None;
    for ctx in ParamContext::ALL {
        let mut cells = Vec::new();
        for backlog in [1usize, 32, 256] {
            let d = detector_with_leaves(2);
            let id = d.define_named("x", &parse_event_expr("e0 ^ e1").unwrap()).unwrap();
            d.subscribe(id, ctx, 1).unwrap();
            let mut txn = 0u64;
            let ns = measure(300, || {
                txn += 1;
                for _ in 0..backlog {
                    fire_leaf(&d, 0, txn);
                }
                fire_leaf(&d, 1, txn);
                d.flush_txn(txn);
            });
            cells.push(fmt_ns(ns));
            last = Some(d.stats());
        }
        println!("| {} | {} | {} | {} |", ctx.keyword(), cells[0], cells[1], cells[2]);
    }
    if let Some(stats) = last {
        stats_line("e3", stats.to_json());
    }
}

fn beast_r1() {
    header("BEAST-R1: rule firing overhead");
    println!("| rules on one event | ns per triggering event |");
    println!("|---|---|");
    for nrules in [1usize, 10, 100, 1000] {
        let s = beast_system(ExecutionMode::Inline);
        let _c = counting_rules(&s, "poke", nrules, 10);
        let t = s.begin().unwrap();
        let objs = objects(&s, t, 1);
        let mut i = 0i64;
        let ns = measure(if nrules >= 100 { 200 } else { 2000 }, || {
            i += 1;
            poke(&s, t, objs[0], i);
        });
        s.commit(t).unwrap();
        println!("| {nrules} | {} |", fmt_ns(ns));
    }

    println!("\n| coupling | triggerings/txn | per-transaction cost | rule executions |");
    println!("|---|---|---|---|");
    let mut last = None;
    for coupling in [CouplingMode::Immediate, CouplingMode::Deferred] {
        for k in [1usize, 10, 50] {
            let s = beast_system(ExecutionMode::Inline);
            let fired = Arc::new(AtomicUsize::new(0));
            let f = fired.clone();
            s.define_rule(
                "r",
                "poke",
                Arc::new(|_| true),
                Arc::new(move |_| {
                    f.fetch_add(1, Ordering::Relaxed);
                }),
                RuleOptions::default().coupling(coupling),
            )
            .unwrap();
            let setup = s.begin().unwrap();
            let objs = objects(&s, setup, 1);
            s.commit(setup).unwrap();
            fired.store(0, Ordering::Relaxed);
            let mut i = 0i64;
            let iters = 300;
            let ns = measure(iters, || {
                let t = s.begin().unwrap();
                for _ in 0..k {
                    i += 1;
                    poke(&s, t, objs[0], i);
                }
                s.commit(t).unwrap();
            });
            let execs =
                fired.load(Ordering::Relaxed) as f64 / (iters as f64 + iters.min(100) as f64);
            println!("| {coupling} | {k} | {} | {execs:.1} per txn |", fmt_ns(ns));
            last = Some(s.stats());
        }
    }
    if let Some(stats) = last {
        stats_line("r1", stats.to_json());
    }
}

fn beast_r2() {
    header("BEAST-R2: nested rule cascade (per transaction)");
    println!("| depth | inline | threaded(4) |");
    println!("|---|---|---|");
    let mut last = None;
    for depth in [1usize, 4, 8, 16] {
        let mut cells = Vec::new();
        for mode in [ExecutionMode::Inline, ExecutionMode::Threaded { workers: 4 }] {
            let s = beast_system(mode);
            let _c = nested_cascade(&s, depth);
            let ns = measure(200, || {
                let t = s.begin().unwrap();
                s.raise(Some(t), "cascade0", Vec::new()).unwrap();
                s.commit(t).unwrap();
            });
            cells.push(fmt_ns(ns));
            last = Some(s.stats());
        }
        println!("| {depth} | {} | {} |", cells[0], cells[1]);
    }
    if let Some(stats) = last {
        stats_line("r2", stats.to_json());
    }

    // Trace-stream consumption: the debugger subscribes to the shared bus
    // and drains structured records for one traced transaction.
    let s = beast_system(ExecutionMode::Inline);
    let _c = nested_cascade(&s, 4);
    s.debugger().attach_stream(s.trace().subscribe());
    let t = s.begin().unwrap();
    s.raise(Some(t), "cascade0", Vec::new()).unwrap();
    s.commit(t).unwrap();
    let records = s.debugger().drain_stream();
    println!("\ntrace[r2]: {} records consumed for one depth-4 cascade txn", records.len());
}

fn abl1() {
    header("ABL-1: shared event graph vs per-rule graphs");
    println!("| rules | shared graph (nodes / round) | per-rule graphs (nodes / round) |");
    println!("|---|---|---|");
    let mut last = None;
    for k in [4usize, 32, 128] {
        let shared = detector_with_leaves(2);
        let id = shared.define_named("x", &parse_event_expr("e0 ^ e1").unwrap()).unwrap();
        for sub in 0..k {
            shared.subscribe(id, ParamContext::Recent, sub as u64).unwrap();
        }
        let mut txn = 0u64;
        let shared_ns = measure(2000, || {
            txn += 1;
            fire_leaf(&shared, 0, txn);
            fire_leaf(&shared, 1, txn);
        });
        let shared_nodes = shared.graph_size();

        let per_rule = detector_with_leaves(2 + k);
        for sub in 0..k {
            let expr = format!("e0 ^ (e1 | e{})", 2 + sub);
            let nid = per_rule
                .define_named(&format!("x{sub}"), &parse_event_expr(&expr).unwrap())
                .unwrap();
            per_rule.subscribe(nid, ParamContext::Recent, sub as u64).unwrap();
        }
        let mut txn = 0u64;
        let per_ns = measure(2000, || {
            txn += 1;
            fire_leaf(&per_rule, 0, txn);
            fire_leaf(&per_rule, 1, txn);
        });
        println!(
            "| {k} | {} ({} nodes) | {} ({} nodes) |",
            fmt_ns(shared_ns),
            shared_nodes,
            fmt_ns(per_ns),
            per_rule.graph_size()
        );
        last = Some(shared.stats());
    }
    if let Some(stats) = last {
        stats_line("abl1", stats.to_json());
    }
}

fn abl2() {
    header("ABL-2: demand-driven propagation (64-wide graph)");
    println!("| active subscriptions | ns per leaf occurrence |");
    println!("|---|---|");
    let mut last = None;
    for active_n in [0usize, 8, 64] {
        let d = detector_with_leaves(65);
        let mut ids = Vec::new();
        for i in 0..64 {
            let expr = format!("e0 ^ e{}", i + 1);
            ids.push(d.define_named(&format!("w{i}"), &parse_event_expr(&expr).unwrap()).unwrap());
        }
        for (i, id) in ids.iter().take(active_n).enumerate() {
            d.subscribe(*id, ParamContext::Recent, i as u64).unwrap();
        }
        let mut txn = 0u64;
        let ns = measure(3000, || {
            txn += 1;
            fire_leaf(&d, 0, txn);
        });
        println!("| {active_n} | {} |", fmt_ns(ns));
        last = Some(d.stats());
    }
    if let Some(stats) = last {
        stats_line("abl2", stats.to_json());
    }
}

fn abl3() {
    header("ABL-3: thread pool vs spawn-per-rule (burst of no-op rule bodies)");
    println!("| burst | pool(4) | spawn per rule |");
    println!("|---|---|---|");
    let submitted = sentinel_core::obs::Counter::new();
    let bursts = sentinel_core::obs::Counter::new();
    for burst in [10usize, 100, 1000] {
        let pool = PriorityPool::new(4);
        let pool_ns = measure(50, || {
            let counter = Arc::new(AtomicUsize::new(0));
            for _ in 0..burst {
                let c = counter.clone();
                pool.submit(0, move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.quiesce();
            submitted.add(burst as u64);
            bursts.inc();
        });
        let spawn_ns = measure(10, || {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..burst)
                .map(|_| {
                    let c = counter.clone();
                    std::thread::spawn(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        println!("| {burst} | {} | {} |", fmt_ns(pool_ns), fmt_ns(spawn_ns));
    }
    stats_line(
        "abl3",
        sentinel_core::obs::json::Value::obj([
            ("pool_bursts", bursts.get().into()),
            ("pool_bodies_submitted", submitted.get().into()),
        ]),
    );
}

fn main() {
    println!("# BEAST harness results");
    println!("(logical-clock simulator substrate; shapes, not absolute numbers, are the result)");
    beast_e1();
    beast_e2();
    beast_e3();
    beast_r1();
    beast_r2();
    abl1();
    abl2();
    abl3();
    println!("\ndone.");
}
