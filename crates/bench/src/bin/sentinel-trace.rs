//! Trace-query CLI: runs a provenance-traced workload against a fresh
//! Sentinel instance, then answers queries over the recorded spans.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin sentinel-trace -- [FLAGS]
//!
//!   --pokes <N>      workload size: poke() invocations (default 64)
//!   --export <path>  write Chrome trace-event JSON — load the file into
//!                    Perfetto (https://ui.perfetto.dev) or chrome://tracing
//!   --slowest <N>    print the N longest spans (default 10)
//!   --trace <id>     print every span of trace T<id>
//!   --rule <name>    print condition/action spans of one rule
//!   --event <name>   print signal/primitive/detect spans of one event
//! ```
//!
//! The workload exercises the whole causal chain: primitive `poke`
//! signals, a SEQ composite (`poke ; poke`), a rule on the composite whose
//! action raises a cascade event, a rule on the cascade, and a commit (WAL
//! force) — so the export shows signal → detect → condition → action →
//! cascaded signal → wal_force spans linked end to end.

use std::sync::Arc;

use sentinel_bench::workload::{beast_system, objects, poke};
use sentinel_core::obs::span::{SpanRecord, TraceId};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::rules::ExecutionMode;
use sentinel_core::snoop::ParamContext;
use sentinel_core::storage::TxnId;
use sentinel_core::Sentinel;

struct Args {
    pokes: usize,
    export: Option<String>,
    slowest: usize,
    trace: Option<u64>,
    rule: Option<String>,
    event: Option<String>,
}

fn parse_args() -> Args {
    let mut args =
        Args { pokes: 64, export: None, slowest: 10, trace: None, rule: None, event: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--pokes" => args.pokes = value("--pokes").parse().expect("--pokes <N>"),
            "--export" => args.export = Some(value("--export")),
            "--slowest" => args.slowest = value("--slowest").parse().expect("--slowest <N>"),
            "--trace" => args.trace = Some(value("--trace").parse().expect("--trace <id>")),
            "--rule" => args.rule = Some(value("--rule")),
            "--event" => args.event = Some(value("--event")),
            "--help" | "-h" => {
                println!(
                    "sentinel-trace [--pokes N] [--export PATH] [--slowest N] \
                     [--trace ID] [--rule NAME] [--event NAME]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The traced workload: SEQ composite + cascading rules over `pokes` calls.
fn run_workload(pokes: usize) -> Arc<Sentinel> {
    let s = beast_system(ExecutionMode::Inline);
    s.set_tracing(true);

    s.define_event("pokepair", "poke ; poke").expect("composite");
    s.detector().declare_explicit("audit");
    let s2 = s.clone();
    s.define_rule(
        "pair_watch",
        "pokepair",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            // Cascade: the action re-signals, extending the same trace.
            s2.raise(inv.txn.map(TxnId), "audit", Vec::new()).expect("raise");
        }),
        RuleOptions::default().context(ParamContext::Chronicle),
    )
    .expect("rule");
    let s3 = s.clone();
    s.define_rule(
        "audit_log",
        "audit",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            // Persist an audit record and force it durable: the insert's
            // page traffic and the WAL force are tagged inside this
            // action's span (page_read / page_write / wal_force).
            if let Some(txn) = inv.txn {
                let state = sentinel_core::oodb::ObjectState::new("REACTIVE");
                let _ = s3.create_object(TxnId(txn), &state);
            }
            let _ = s3.db().engine().checkpoint();
        }),
        RuleOptions::default(),
    )
    .expect("rule");

    let t = s.begin().expect("begin");
    let objs = objects(&s, t, 8);
    for i in 0..pokes {
        poke(&s, t, objs[i % objs.len()], i as i64);
    }
    s.commit(t).expect("commit");
    s
}

fn print_spans(title: &str, spans: &[SpanRecord]) {
    println!("\n{title} ({} spans)", spans.len());
    for sp in spans {
        println!("  {sp}");
    }
}

fn main() {
    let args = parse_args();
    let s = run_workload(args.pokes);
    let store = s.trace_store();

    println!(
        "workload done: {} pokes, {} spans retained, {} evicted",
        args.pokes,
        store.len(),
        store.evicted()
    );

    let summaries = store.trace_summaries();
    println!("\ntraces ({}):", summaries.len());
    for ts in summaries.iter().take(20) {
        println!("  {} root={} spans={} wall={}ns", ts.trace, ts.root, ts.spans, ts.wall_ns);
    }
    if summaries.len() > 20 {
        println!("  … {} more (query with --trace <id>)", summaries.len() - 20);
    }

    if let Some(id) = args.trace {
        print_spans(&format!("trace T{id}"), &store.trace(TraceId(id)));
    }
    if let Some(rule) = &args.rule {
        print_spans(&format!("rule {rule}"), &store.by_rule(rule));
    }
    if let Some(event) = &args.event {
        print_spans(&format!("event {event}"), &store.by_event(event));
    }
    print_spans(&format!("slowest {}", args.slowest), &store.slowest(args.slowest));

    if let Some(path) = &args.export {
        let json = s.export_chrome_trace();
        std::fs::write(path, &json).expect("write export");
        println!("\nwrote {} bytes of Chrome trace-event JSON to {path}", json.len());
        println!("open in https://ui.perfetto.dev or chrome://tracing");
    }
}
