//! Load generator for `sentinel-server`: N concurrent clients drive a
//! SEQ + cascade rule workload over the wire and report throughput and
//! latency percentiles as one `bench{...}` JSON line.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin sentinel-loadgen -- [FLAGS]
//!
//!   --addr <host:port>  server address (default 127.0.0.1:7878)
//!   --clients <N>       concurrent client connections (default 8)
//!   --iters <N>         event pairs per client (default 200)
//!   --traced            stamp signals with per-client trace ids (pair
//!                       with `sentinel-server --tracing`)
//!   --shutdown          send a Shutdown frame when done (for CI)
//! ```
//!
//! The workload: explicit events `seq_a`, `seq_b`, `cascade`; composite
//! `pair = seq_a ; seq_b` (Chronicle context); rule `pair_watch` raises
//! `cascade` on every pair; rule `cascade_count` counts the cascades
//! server-side. Each client alternates `seq_a`, `seq_b` synchronously, so
//! in every interleaving each `seq_b` closes exactly one pair:
//! `pairs = clients × iters`, and with both rules immediate the server's
//! fired-rule count must advance by exactly `2 × pairs` — the zero-lost
//! check. The process exits non-zero on any lost signal, decode error, or
//! failed client.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sentinel_net::{ClientError, RuleSpec, SentinelClient};
use sentinel_obs::{json, Histogram};

struct Args {
    addr: String,
    clients: usize,
    iters: usize,
    traced: bool,
    shutdown: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        clients: 8,
        iters: 200,
        traced: false,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients <N>"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters <N>"),
            "--traced" => args.traced = true,
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => {
                println!(
                    "sentinel-loadgen [--addr HOST:PORT] [--clients N] [--iters N] \
                     [--traced] [--shutdown]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Stats-JSON helpers (absent paths read as 0 — e.g. `rule_hits` before
/// the first firing).
fn stat_u64(stats: &json::Value, path: &[&str]) -> u64 {
    let mut v = stats;
    for key in path {
        match v.get(key) {
            Some(next) => v = next,
            None => return 0,
        }
    }
    v.as_u64().unwrap_or(0)
}

/// Signals one event, retrying while the server reports backpressure.
fn signal_retry(
    client: &SentinelClient,
    event: &str,
    trace: Option<u64>,
    busy: &AtomicU64,
) -> Result<u64, ClientError> {
    loop {
        let res = match trace {
            Some(t) => client.signal_sync_traced(event, &[], None, t),
            None => client.signal_sync(event, &[], None),
        };
        match res {
            Err(ClientError::Busy { .. }) => {
                busy.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(500));
            }
            other => return other,
        }
    }
}

struct ClientOutcome {
    requests: u64,
    pairs_observed: u64,
    failed: bool,
}

fn run_client(
    addr: &str,
    index: usize,
    iters: usize,
    traced: bool,
    hist: &Histogram,
    busy: &AtomicU64,
) -> ClientOutcome {
    let name = format!("loadgen-{index}");
    let client =
        match SentinelClient::connect_with_backoff(addr, &name, 10, Duration::from_millis(50)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{name}: connect failed: {e}");
                return ClientOutcome { requests: 0, pairs_observed: 0, failed: true };
            }
        };
    let trace = traced.then_some(index as u64 + 1);
    let mut out = ClientOutcome { requests: 0, pairs_observed: 0, failed: false };
    for _ in 0..iters {
        for event in ["seq_a", "seq_b"] {
            let t0 = Instant::now();
            match signal_retry(&client, event, trace, busy) {
                Ok(detections) => {
                    hist.record_duration(t0.elapsed());
                    out.requests += 1;
                    if event == "seq_b" {
                        out.pairs_observed += detections;
                    }
                }
                Err(e) => {
                    eprintln!("{name}: {event} failed: {e}");
                    out.failed = true;
                    return out;
                }
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();

    let admin = match SentinelClient::connect_with_backoff(
        &args.addr,
        "loadgen-admin",
        20,
        Duration::from_millis(50),
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot reach server at {}: {e}", args.addr);
            std::process::exit(1);
        }
    };

    // Define the workload; tolerate "already defined" so repeated runs
    // against a long-lived server work (counts below are deltas).
    let defs: [Result<u64, ClientError>; 6] = [
        admin.define_event("seq_a", None),
        admin.define_event("seq_b", None),
        admin.define_event("cascade", None),
        admin.define_event("pair", Some("seq_a ; seq_b")),
        admin.define_rule(&RuleSpec::raise("pair_watch", "pair", "cascade").context("chronicle")),
        admin.define_rule(&RuleSpec::count("cascade_count", "cascade")),
    ];
    for def in defs {
        match def {
            Ok(_) | Err(ClientError::Server { .. }) => {}
            Err(e) => {
                eprintln!("workload definition failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let before = admin.stats().unwrap_or_else(|e| {
        eprintln!("stats failed: {e}");
        std::process::exit(1);
    });
    let fired0 = stat_u64(&before, &["scheduler", "fired", "immediate"]);
    let hits0 = stat_u64(&before, &["rule_hits", "cascade_count"]);
    let decode0 = stat_u64(&before, &["net", "decode_errors"]);

    let hist = Arc::new(Histogram::new());
    let busy = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let threads: Vec<_> = (0..args.clients)
        .map(|i| {
            let (addr, hist, busy) = (args.addr.clone(), hist.clone(), busy.clone());
            let (iters, traced) = (args.iters, args.traced);
            std::thread::spawn(move || run_client(&addr, i, iters, traced, &hist, &busy))
        })
        .collect();
    let outcomes: Vec<ClientOutcome> =
        threads.into_iter().map(|t| t.join().expect("client thread")).collect();
    let elapsed = t0.elapsed();

    let after = admin.stats().unwrap_or_else(|e| {
        eprintln!("stats failed: {e}");
        std::process::exit(1);
    });
    let fired = stat_u64(&after, &["scheduler", "fired", "immediate"]) - fired0;
    let hits = stat_u64(&after, &["rule_hits", "cascade_count"]) - hits0;
    let decode_errors = stat_u64(&after, &["net", "decode_errors"]) - decode0;

    let failed = outcomes.iter().filter(|o| o.failed).count() as u64;
    let requests: u64 = outcomes.iter().map(|o| o.requests).sum();
    let pairs_observed: u64 = outcomes.iter().map(|o| o.pairs_observed).sum();
    let pairs_expected = (args.clients * args.iters) as u64;
    // Every pair fires pair_watch + cascade_count, both immediate.
    let lost = (2 * pairs_expected) as i64 - fired as i64;

    let snap = hist.snapshot();
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    let throughput = requests as f64 / elapsed.as_secs_f64().max(1e-9);
    let line = json::Value::obj([
        ("bench", json::Value::str("net_loadgen")),
        ("clients", json::Value::UInt(args.clients as u64)),
        ("iters", json::Value::UInt(args.iters as u64)),
        ("requests", json::Value::UInt(requests)),
        ("pairs_expected", json::Value::UInt(pairs_expected)),
        ("pairs_observed", json::Value::UInt(pairs_observed)),
        ("rule_hits", json::Value::UInt(hits)),
        ("fired_immediate", json::Value::UInt(fired)),
        ("lost", json::Value::Int(lost)),
        ("elapsed_ms", json::Value::Float(elapsed_ms)),
        ("throughput_rps", json::Value::Float(throughput)),
        ("p50_us", json::Value::Float(snap.p50_ns() as f64 / 1e3)),
        ("p95_us", json::Value::Float(snap.p95_ns() as f64 / 1e3)),
        ("p99_us", json::Value::Float(snap.p99_ns() as f64 / 1e3)),
        ("mean_us", json::Value::Float(snap.mean_ns() as f64 / 1e3)),
        ("busy_retries", json::Value::UInt(busy.load(Ordering::Relaxed))),
        ("decode_errors", json::Value::UInt(decode_errors)),
        ("failed_clients", json::Value::UInt(failed)),
    ]);
    println!("bench{line}");

    if args.shutdown {
        if let Err(e) = admin.shutdown_server() {
            eprintln!("shutdown request failed: {e}");
        }
    }

    let ok = failed == 0
        && decode_errors == 0
        && lost == 0
        && pairs_observed == pairs_expected
        && hits == pairs_expected;
    if !ok {
        eprintln!(
            "FAILED: expected {pairs_expected} pairs \
             (observed {pairs_observed}, rule hits {hits}, lost {lost}, \
             decode errors {decode_errors}, failed clients {failed})"
        );
        std::process::exit(1);
    }
}
