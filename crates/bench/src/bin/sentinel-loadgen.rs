//! Load generator for `sentinel-server`: N concurrent clients drive a
//! SEQ + cascade rule workload over the wire and report throughput and
//! latency percentiles as one `bench{...}` JSON line.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin sentinel-loadgen -- [FLAGS]
//!
//!   --addr <host:port>  server address (default 127.0.0.1:7878)
//!   --clients <N>       concurrent client connections (default 8)
//!   --iters <N>         event pairs per client (default 200); with
//!                       `--batch` this is *batches* per client
//!   --codec <C>         wire codec: `auto` (default; negotiate binary
//!                       when the server speaks it), `json` (pin v1),
//!                       or `binary` (require v2)
//!   --batch <B>         pack B complete `seq_a`,`seq_b` pairs into each
//!                       `SignalBatch` frame (default 0 — one signal per
//!                       request, the NET-1 shape)
//!   --pipeline <P>      keep up to P batch frames in flight per client
//!                       before waiting on the oldest (default 1;
//!                       requires `--batch`)
//!   --traced            stamp signals with per-client trace ids (pair
//!                       with `sentinel-server --tracing`; not available
//!                       with `--batch`)
//!   --c10k <LIST>       connection-scaling sweep: for each comma-
//!                       separated count, hold that many extra *idle*
//!                       connections open while the active workload
//!                       above runs, and record the server's RSS (via
//!                       the pid in its stats), accept health, and
//!                       throughput. Writes one JSON report to
//!                       `--net-out` and exits non-zero on any lost
//!                       signal or failed/refused connection. Point it
//!                       at a server started with `--max-connections`
//!                       comfortably above the largest count
//!   --net-out <PATH>    where `--c10k` writes its report
//!                       (default BENCH_net.json)
//!   --shutdown          send a Shutdown frame when done (for CI)
//!   --promote           send a Promote frame to --addr and exit: turns a
//!                       read-only replica into a writable primary
//!   --repl-status       print the node's replication stats JSON and exit
//!                       (`role`, `tip`, follower lags / applied watermark)
//!
//!   --sweep             run the embedded detector-sharding sweep instead
//!                       of the TCP workload (no server needed): disjoint
//!                       composite components fed by concurrent threads
//!                       through a DetectorPool at each worker count
//!   --detector-threads <LIST>  comma-separated worker counts to sweep
//!                       (default 1,2,4,8)
//!   --components <N>    disjoint components in the sweep graph (default 64)
//!   --pairs <N>         a;b pairs signalled per component (default 1500)
//!   --feeders <N>       concurrent feeder threads (default 8)
//!   --hold-us <N>       simulated downstream cost per signal (rule-action
//!                       dispatch), held on the processing worker; 0 for a
//!                       pure-CPU sweep (default 20)
//!   --sweep-out <PATH>  where to write the sweep report
//!                       (default BENCH_detector.json)
//!   --durable-dir <DIR> journal the sweep: each worker-count run attaches
//!                       a durable engine over a fresh subdirectory of DIR
//!                       (per-shard streams + group commit), so the sweep
//!                       measures detection parallelism *with* durability
//!   --durable-fsync <P> fsync policy for `--durable-dir`: `always`
//!                       (default), `every=N`, or `never`
//!   --group-window-us <N>  group-commit accumulation window for
//!                       `--durable-dir` (default 100)
//! ```
//!
//! The workload: explicit events `seq_a`, `seq_b`, `cascade`; composite
//! `pair = seq_a ; seq_b` (Chronicle context); rule `pair_watch` raises
//! `cascade` on every pair; rule `cascade_count` counts the cascades
//! server-side. Each client alternates `seq_a`, `seq_b` synchronously, so
//! in every interleaving each `seq_b` closes exactly one pair:
//! `pairs = clients × iters`, and with both rules immediate the server's
//! fired-rule count must advance by exactly `2 × pairs` — the zero-lost
//! check. The process exits non-zero on any lost signal, decode error, or
//! failed client.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sentinel_core::durable_store::{DurableEngine, DurableOptions, FsyncPolicy};
use sentinel_core::JournalSink;
use sentinel_detector::service::Signal;
use sentinel_detector::{DetectorPool, LocalEventDetector};
use sentinel_net::{ClientCodec, ClientError, RuleSpec, SentinelClient};
use sentinel_obs::{json, Histogram};
use sentinel_snoop::{parse_event_expr, ParamContext};

struct Args {
    addr: String,
    clients: usize,
    iters: usize,
    codec: ClientCodec,
    batch: usize,
    pipeline: usize,
    c10k: Option<Vec<usize>>,
    net_out: String,
    traced: bool,
    shutdown: bool,
    promote: bool,
    repl_status: bool,
    sweep: bool,
    detector_threads: Vec<usize>,
    components: usize,
    pairs: usize,
    feeders: usize,
    hold_us: u64,
    sweep_out: String,
    durable_dir: Option<PathBuf>,
    durable_fsync: FsyncPolicy,
    group_window_us: u64,
}

fn parse_fsync(spec: &str) -> FsyncPolicy {
    match spec {
        "always" => FsyncPolicy::Always,
        "never" => FsyncPolicy::Never,
        other => match other.strip_prefix("every=").and_then(|n| n.parse().ok()) {
            Some(n) => FsyncPolicy::EveryN(n),
            None => {
                eprintln!("--durable-fsync wants `always`, `never`, or `every=N`");
                std::process::exit(2);
            }
        },
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        clients: 8,
        iters: 200,
        codec: ClientCodec::Auto,
        batch: 0,
        pipeline: 1,
        c10k: None,
        net_out: "BENCH_net.json".to_string(),
        traced: false,
        shutdown: false,
        promote: false,
        repl_status: false,
        sweep: false,
        detector_threads: vec![1, 2, 4, 8],
        components: 64,
        pairs: 1500,
        feeders: 8,
        hold_us: 20,
        sweep_out: "BENCH_detector.json".to_string(),
        durable_dir: None,
        durable_fsync: FsyncPolicy::Always,
        group_window_us: 100,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients <N>"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters <N>"),
            "--codec" => {
                args.codec = match value("--codec").as_str() {
                    "auto" => ClientCodec::Auto,
                    "json" => ClientCodec::Json,
                    "binary" => ClientCodec::Binary,
                    other => {
                        eprintln!("--codec wants auto|json|binary, got {other}");
                        std::process::exit(2);
                    }
                };
            }
            "--batch" => args.batch = value("--batch").parse().expect("--batch <B>"),
            "--pipeline" => args.pipeline = value("--pipeline").parse().expect("--pipeline <P>"),
            "--c10k" => {
                let counts: Vec<usize> = value("--c10k")
                    .split(',')
                    .map(|w| w.trim().parse().expect("--c10k N[,N...]"))
                    .collect();
                assert!(!counts.is_empty(), "--c10k needs connection counts");
                args.c10k = Some(counts);
            }
            "--net-out" => args.net_out = value("--net-out"),
            "--traced" => args.traced = true,
            "--shutdown" => args.shutdown = true,
            "--promote" => args.promote = true,
            "--repl-status" => args.repl_status = true,
            "--sweep" => args.sweep = true,
            "--detector-threads" => {
                args.detector_threads = value("--detector-threads")
                    .split(',')
                    .map(|w| w.trim().parse().expect("--detector-threads N[,N...]"))
                    .collect();
                assert!(!args.detector_threads.is_empty(), "--detector-threads needs counts");
            }
            "--components" => {
                args.components = value("--components").parse().expect("--components <N>");
            }
            "--pairs" => args.pairs = value("--pairs").parse().expect("--pairs <N>"),
            "--feeders" => args.feeders = value("--feeders").parse().expect("--feeders <N>"),
            "--hold-us" => args.hold_us = value("--hold-us").parse().expect("--hold-us <N>"),
            "--sweep-out" => args.sweep_out = value("--sweep-out"),
            "--durable-dir" => args.durable_dir = Some(PathBuf::from(value("--durable-dir"))),
            "--durable-fsync" => args.durable_fsync = parse_fsync(&value("--durable-fsync")),
            "--group-window-us" => {
                args.group_window_us =
                    value("--group-window-us").parse().expect("--group-window-us <N>");
            }
            "--help" | "-h" => {
                println!(
                    "sentinel-loadgen [--addr HOST:PORT] [--clients N] [--iters N] \
                     [--codec auto|json|binary] [--batch B] [--pipeline P] \
                     [--c10k N,N,...] [--net-out PATH] \
                     [--traced] [--shutdown] [--promote] [--repl-status] \
                     [--sweep] [--detector-threads N,N,...] \
                     [--components N] [--pairs N] [--feeders N] [--hold-us N] \
                     [--sweep-out PATH] [--durable-dir DIR] \
                     [--durable-fsync always|never|every=N] [--group-window-us N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.traced && args.batch > 0 {
        eprintln!("--traced is not available with --batch (batch frames carry no trace ids)");
        std::process::exit(2);
    }
    if args.pipeline > 1 && args.batch == 0 {
        eprintln!("--pipeline requires --batch");
        std::process::exit(2);
    }
    args
}

/// Stats-JSON helpers (absent paths read as 0 — e.g. `rule_hits` before
/// the first firing).
fn stat_u64(stats: &json::Value, path: &[&str]) -> u64 {
    let mut v = stats;
    for key in path {
        match v.get(key) {
            Some(next) => v = next,
            None => return 0,
        }
    }
    v.as_u64().unwrap_or(0)
}

/// Values of every point in a scraped time-series ring, oldest first.
fn series_values(series: &json::Value, name: &str) -> Vec<u64> {
    let Some(points) = series.get(name).and_then(|s| s.get("points")).and_then(|p| p.as_arr())
    else {
        return Vec::new();
    };
    points.iter().filter_map(|p| p.as_arr()?.get(1)?.as_u64()).collect()
}

/// Final telemetry snapshot for the TCP bench line, folded from one
/// `MetricsScrape`: per-shard queue-depth p99 over the ring's points and
/// the newest fsync (group-commit flush) p99 gauge. `Null` when the
/// server runs with `--no-telemetry` or predates the scrape opcode.
fn scrape_telemetry(admin: &SentinelClient) -> json::Value {
    let Ok(scrape) = admin.metrics_scrape() else { return json::Value::Null };
    let telemetry = scrape.get("telemetry").cloned().unwrap_or(json::Value::Null);
    if telemetry == json::Value::Null {
        return json::Value::Null;
    }
    let series = telemetry.get("series").cloned().unwrap_or(json::Value::Null);
    let mut shards: Vec<u64> = match &series {
        json::Value::Obj(pairs) => pairs
            .iter()
            .filter_map(|(name, _)| {
                name.strip_prefix("detector.shard.")?.strip_suffix(".queue_depth")?.parse().ok()
            })
            .collect(),
        _ => Vec::new(),
    };
    shards.sort_unstable();
    shards.dedup();
    let shard_queue = json::Value::Arr(
        shards
            .into_iter()
            .map(|shard| {
                let values = series_values(&series, &format!("detector.shard.{shard}.queue_depth"));
                let max = values.iter().copied().max().unwrap_or(0);
                json::Value::obj([
                    ("shard", json::Value::UInt(shard)),
                    ("queue_depth_p99", json::Value::UInt(samples_p99(values))),
                    ("queue_depth_max", json::Value::UInt(max)),
                ])
            })
            .collect(),
    );
    let fsync_p99 = series_values(&series, "durability.fsync_p99_ns")
        .last()
        .copied()
        .map_or(json::Value::Null, json::Value::UInt);
    json::Value::obj([("shard_queue", shard_queue), ("fsync_p99_ns", fsync_p99)])
}

/// Signals one event, retrying while the server reports backpressure.
fn signal_retry(
    client: &SentinelClient,
    event: &str,
    trace: Option<u64>,
    busy: &AtomicU64,
) -> Result<u64, ClientError> {
    loop {
        let res = match trace {
            Some(t) => client.signal_sync_traced(event, &[], None, t),
            None => client.signal_sync(event, &[], None),
        };
        match res {
            Err(ClientError::Busy { .. }) => {
                busy.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(500));
            }
            other => return other,
        }
    }
}

/// One row of the `--sweep` report: the same fixed workload replayed
/// through a [`DetectorPool`] of `workers` detector threads.
struct SweepRun {
    workers: usize,
    signals: u64,
    detections: u64,
    expected: u64,
    elapsed_ms: f64,
    throughput_sps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    /// Final telemetry snapshot for this run: per-shard queue-depth p99
    /// (sampled every [`QUEUE_SAMPLE_INTERVAL`] while the run drains),
    /// pool drain p99, and — when durable — the fsync/group-commit flush
    /// p99.
    telemetry: json::Value,
}

/// How often the sweep's sampler thread polls per-shard queue depths.
const QUEUE_SAMPLE_INTERVAL: Duration = Duration::from_millis(5);

/// p99 over raw gauge samples (nearest-rank; 0 when empty).
fn samples_p99(mut samples: Vec<u64>) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((0.99 * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Builds the sweep graph: `components` disjoint operator-DAG components,
/// each holding `seq{i} = a{i} ; b{i}` and `or{i} = a{i} | b{i}`
/// subscribed in all four parameter contexts. Disjoint components land in
/// disjoint shards, so added workers buy real concurrency.
fn sweep_detector(components: usize) -> Arc<LocalEventDetector> {
    let det = Arc::new(LocalEventDetector::new(1));
    for i in 0..components {
        let (a, b) = (format!("a{i}"), format!("b{i}"));
        det.declare_explicit(&a);
        det.declare_explicit(&b);
        let seq = det
            .define_named(&format!("seq{i}"), &parse_event_expr(&format!("{a} ; {b}")).unwrap())
            .unwrap();
        let or = det
            .define_named(&format!("or{i}"), &parse_event_expr(&format!("{a} | {b}")).unwrap())
            .unwrap();
        for (xi, &ctx) in ParamContext::ALL.iter().enumerate() {
            det.subscribe(seq, ctx, (1000 + i * 8 + xi) as u64).unwrap();
            det.subscribe(or, ctx, (1000 + i * 8 + 4 + xi) as u64).unwrap();
        }
    }
    det
}

/// Replays the fixed workload at one worker count. Each feeder owns the
/// components `i ≡ f (mod feeders)` and alternates `a{i}`, `b{i}`
/// strictly, so per component every pair closes `seq{i}` exactly once per
/// context (4 detections) and `or{i}` once per constituent per context
/// (8 more): the exact-count oracle is `components × pairs × 12`.
fn run_sweep_once(args: &Args, workers: usize) -> SweepRun {
    let det = sweep_detector(args.components);
    // `--durable-dir`: journal this run through the sharded durable engine
    // (fresh subdirectory per worker count so every run recovers nothing
    // and measures steady-state appends, not replay).
    let engine = args.durable_dir.as_ref().map(|dir| {
        let sub = dir.join(format!("w{workers}"));
        let _ = std::fs::remove_dir_all(&sub);
        let opts = DurableOptions {
            fsync: args.durable_fsync,
            group_window_us: args.group_window_us,
            checkpoint_every: 0,
            ..DurableOptions::default()
        };
        let (engine, _report) = DurableEngine::open(&sub, opts).expect("durable engine");
        det.set_event_sink(Arc::new(JournalSink::new(engine.clone())));
        engine
    });
    let pool = DetectorPool::spawn(Arc::clone(&det), workers);
    // Telemetry sampler: polls per-shard queue depths while the run
    // drains, so the report carries queue-pressure percentiles rather
    // than a single end-of-run reading (which is always zero after the
    // barrier).
    let sampler_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let det = Arc::clone(&det);
        let stop = Arc::clone(&sampler_stop);
        std::thread::spawn(move || {
            let mut depths: std::collections::BTreeMap<u32, Vec<u64>> =
                std::collections::BTreeMap::new();
            while !stop.load(Ordering::Relaxed) {
                for shard in det.stats().shards {
                    depths.entry(shard.shard).or_default().push(shard.queue_depth);
                }
                std::thread::sleep(QUEUE_SAMPLE_INTERVAL);
            }
            depths
        })
    };
    let signals = (args.components * args.pairs * 2) as u64;
    // Per-request latency: submit → detection-done callback, recorded as
    // exact samples (the open-loop feeders flood the queues, so latency
    // is dominated by queue wait and spans seconds — far past any
    // bounded histogram's resolution). The done callback runs on the
    // processing worker right after detection (and after the journal
    // append is durable under `always`), *before* the simulated
    // rule-action hold — so percentiles measure queueing + detection +
    // durability, not the modelled downstream cost.
    let lat = Arc::new(std::sync::Mutex::new(Vec::<u64>::with_capacity(signals as usize)));

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for f in 0..args.feeders {
            let pool = &pool;
            let lat = &lat;
            let (components, pairs, feeders) = (args.components, args.pairs, args.feeders);
            let hold_us = args.hold_us;
            s.spawn(move || {
                for _ in 0..pairs {
                    for i in (f..components).step_by(feeders.max(1)) {
                        for name in [format!("a{i}"), format!("b{i}")] {
                            let sig = Signal::Explicit { name, params: Vec::new(), txn: None };
                            let submitted = Instant::now();
                            let lat = Arc::clone(lat);
                            // Hold the worker after detection, modelling
                            // rule-action dispatch cost: disjoint shards
                            // overlap their holds, same-shard signals
                            // stay strictly FIFO.
                            pool.signal_async_done(
                                sig,
                                Box::new(move || {
                                    let ns = submitted.elapsed().as_nanos() as u64;
                                    lat.lock().unwrap().push(ns);
                                    if hold_us > 0 {
                                        std::thread::sleep(Duration::from_micros(hold_us));
                                    }
                                }),
                            );
                        }
                    }
                }
            });
        }
    });
    // Barrier: every queued signal fully detected before the clock stops.
    pool.barrier(|_| {});
    let elapsed = t0.elapsed();

    sampler_stop.store(true, Ordering::Relaxed);
    let queue_samples = sampler.join().expect("sampler thread");
    let shard_queue_p99 = json::Value::Arr(
        queue_samples
            .into_iter()
            .map(|(shard, samples)| {
                let max = samples.iter().copied().max().unwrap_or(0);
                json::Value::obj([
                    ("shard", json::Value::UInt(u64::from(shard))),
                    ("queue_depth_p99", json::Value::UInt(samples_p99(samples))),
                    ("queue_depth_max", json::Value::UInt(max)),
                ])
            })
            .collect(),
    );
    let drain_p99_ns = pool.metrics().drain_latency_ns.snapshot().p99_ns();
    let telemetry = json::Value::obj([
        ("shard_queue", shard_queue_p99),
        ("drain_p99_ns", json::Value::UInt(drain_p99_ns)),
        (
            "fsync_p99_ns",
            engine.as_ref().map_or(json::Value::Null, |e| {
                json::Value::UInt(e.metrics().group_commit_flush.snapshot().p99_ns())
            }),
        ),
        (
            "group_commits",
            engine
                .as_ref()
                .map_or(json::Value::Null, |e| json::Value::UInt(e.metrics().group_commits.get())),
        ),
    ]);

    let detections = pool.detections().try_iter().count() as u64;
    let mut samples = std::mem::take(&mut *lat.lock().unwrap());
    samples.sort_unstable();
    let pct = |q: f64| -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        samples[rank - 1] as f64 / 1e3
    };
    SweepRun {
        workers,
        signals,
        detections,
        expected: (args.components * args.pairs * 12) as u64,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_sps: signals as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        telemetry,
    }
}

/// `--sweep`: embedded sharding benchmark over the worker counts in
/// `--detector-threads`. Writes the report to `--sweep-out` and exits
/// non-zero if any run's detection count misses the oracle — which also
/// proves every worker count produced the identical occurrence total.
fn run_sweep(args: &Args) -> ! {
    let runs: Vec<SweepRun> = args
        .detector_threads
        .iter()
        .map(|&w| {
            let run = run_sweep_once(args, w);
            eprintln!(
                "sweep: workers={} detections={}/{} throughput={:.0}/s p99={:.1}us",
                run.workers, run.detections, run.expected, run.throughput_sps, run.p99_us
            );
            run
        })
        .collect();

    let base = runs.first().map(|r| r.throughput_sps).unwrap_or(0.0);
    let report = json::Value::obj([
        ("bench", json::Value::str("detector_sweep")),
        ("components", json::Value::UInt(args.components as u64)),
        ("pairs", json::Value::UInt(args.pairs as u64)),
        ("feeders", json::Value::UInt(args.feeders as u64)),
        ("hold_us", json::Value::UInt(args.hold_us)),
        ("durable", json::Value::Bool(args.durable_dir.is_some())),
        (
            "fsync",
            json::Value::Str(match args.durable_fsync {
                FsyncPolicy::Always => "always".to_string(),
                FsyncPolicy::EveryN(n) => format!("every={n}"),
                FsyncPolicy::Never => "never".to_string(),
            }),
        ),
        ("group_window_us", json::Value::UInt(args.group_window_us)),
        (
            "runs",
            json::Value::Arr(
                runs.iter()
                    .map(|r| {
                        json::Value::obj([
                            ("workers", json::Value::UInt(r.workers as u64)),
                            ("signals", json::Value::UInt(r.signals)),
                            ("detections", json::Value::UInt(r.detections)),
                            ("expected", json::Value::UInt(r.expected)),
                            ("elapsed_ms", json::Value::Float(r.elapsed_ms)),
                            ("throughput_sps", json::Value::Float(r.throughput_sps)),
                            (
                                "speedup_vs_first",
                                json::Value::Float(r.throughput_sps / base.max(1e-9)),
                            ),
                            ("p50_us", json::Value::Float(r.p50_us)),
                            ("p95_us", json::Value::Float(r.p95_us)),
                            ("p99_us", json::Value::Float(r.p99_us)),
                            ("telemetry", r.telemetry.clone()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(&args.sweep_out, format!("{report}\n")) {
        eprintln!("cannot write {}: {e}", args.sweep_out);
        std::process::exit(1);
    }
    println!("bench{report}");

    let bad: Vec<&SweepRun> = runs.iter().filter(|r| r.detections != r.expected).collect();
    if !bad.is_empty() {
        for r in bad {
            eprintln!(
                "FAILED: workers={} detected {} occurrences, oracle says {}",
                r.workers, r.detections, r.expected
            );
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

struct ClientOutcome {
    requests: u64,
    pairs_observed: u64,
    failed: bool,
}

/// [`SentinelClient::connect_with_backoff`] with an explicit codec.
fn connect_codec(
    addr: &str,
    name: &str,
    codec: ClientCodec,
    attempts: u32,
    mut backoff: Duration,
) -> Result<SentinelClient, ClientError> {
    let mut last = ClientError::Disconnected;
    for attempt in 0..attempts.max(1) {
        match SentinelClient::connect_with(addr, name, codec) {
            Ok(c) => return Ok(c),
            Err(e) => last = e,
        }
        if attempt + 1 < attempts {
            std::thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
    }
    Err(last)
}

fn run_client(
    addr: &str,
    index: usize,
    args: &Args,
    hist: &Histogram,
    busy: &AtomicU64,
) -> ClientOutcome {
    let name = format!("loadgen-{index}");
    let client = match connect_codec(addr, &name, args.codec, 10, Duration::from_millis(50)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{name}: connect failed: {e}");
            return ClientOutcome { requests: 0, pairs_observed: 0, failed: true };
        }
    };
    if args.batch > 0 {
        return run_client_batched(&client, &name, args, hist, busy);
    }
    let trace = args.traced.then_some(index as u64 + 1);
    let mut out = ClientOutcome { requests: 0, pairs_observed: 0, failed: false };
    for _ in 0..args.iters {
        for event in ["seq_a", "seq_b"] {
            let t0 = Instant::now();
            match signal_retry(&client, event, trace, busy) {
                Ok(detections) => {
                    hist.record_duration(t0.elapsed());
                    out.requests += 1;
                    if event == "seq_b" {
                        out.pairs_observed += detections;
                    }
                }
                Err(e) => {
                    eprintln!("{name}: {event} failed: {e}");
                    out.failed = true;
                    return out;
                }
            }
        }
    }
    out
}

/// The `--batch`/`--pipeline` path: `iters` SignalBatch frames, each
/// carrying `batch` complete `seq_a`,`seq_b` pairs, with up to
/// `pipeline` frames in flight before waiting on the oldest. A `Busy`
/// covers a whole batch and nothing of it was processed, so the batch
/// is simply resent — and because every frame holds only *complete*
/// pairs, retried frames reordering against other in-flight frames
/// cannot lose a pair.
fn run_client_batched(
    client: &SentinelClient,
    name: &str,
    args: &Args,
    hist: &Histogram,
    busy: &AtomicU64,
) -> ClientOutcome {
    const NO_PARAMS: &[(Arc<str>, sentinel_detector::Value)] = &[];
    let signals: Vec<sentinel_net::BatchSignal<'_>> = (0..args.batch)
        .flat_map(|_| [("seq_a", NO_PARAMS, None), ("seq_b", NO_PARAMS, None)])
        .collect();
    let per_batch = 2 * args.batch as u64;
    let window = args.pipeline.max(1);

    let mut out = ClientOutcome { requests: 0, pairs_observed: 0, failed: false };
    let mut inflight: VecDeque<(Instant, sentinel_net::Pending)> = VecDeque::new();
    let mut to_send = args.iters;
    let mut to_complete = args.iters;
    while to_complete > 0 {
        if to_send > 0 && inflight.len() < window {
            match client.send_batch(&signals) {
                Ok(p) => {
                    inflight.push_back((Instant::now(), p));
                    to_send -= 1;
                }
                Err(e) => {
                    eprintln!("{name}: batch send failed: {e}");
                    out.failed = true;
                    return out;
                }
            }
            continue;
        }
        let (t0, pending) = inflight.pop_front().expect("to_send + inflight covers to_complete");
        match pending.wait() {
            Ok(reply) => {
                hist.record_duration(t0.elapsed());
                let get = |k| reply.get(k).and_then(json::Value::as_u64).unwrap_or(0);
                let accepted = get("accepted");
                if accepted != per_batch {
                    eprintln!("{name}: batch accepted {accepted} of {per_batch}");
                    out.failed = true;
                    return out;
                }
                out.requests += accepted;
                out.pairs_observed += get("detections");
                to_complete -= 1;
            }
            Err(ClientError::Busy { .. }) => {
                busy.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(500));
                to_send += 1;
            }
            Err(e) => {
                eprintln!("{name}: batch failed: {e}");
                out.failed = true;
                return out;
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();
    if args.sweep {
        run_sweep(&args);
    }

    let admin = match SentinelClient::connect_with_backoff(
        &args.addr,
        "loadgen-admin",
        20,
        Duration::from_millis(50),
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot reach server at {}: {e}", args.addr);
            std::process::exit(1);
        }
    };

    // Admin-only modes: act on --addr and exit before any workload.
    if args.promote {
        match admin.promote() {
            Ok(promoted) => {
                println!("promote{{\"addr\":\"{}\",\"promoted\":{promoted}}}", args.addr);
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("promote failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.repl_status {
        match admin.stats() {
            Ok(stats) => {
                let repl = stats.get("replication").cloned().unwrap_or(json::Value::Null);
                println!("repl{repl}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("stats failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Define the workload; tolerate "already defined" so repeated runs
    // against a long-lived server work (counts below are deltas).
    let defs: [Result<u64, ClientError>; 6] = [
        admin.define_event("seq_a", None),
        admin.define_event("seq_b", None),
        admin.define_event("cascade", None),
        admin.define_event("pair", Some("seq_a ; seq_b")),
        admin.define_rule(&RuleSpec::raise("pair_watch", "pair", "cascade").context("chronicle")),
        admin.define_rule(&RuleSpec::count("cascade_count", "cascade")),
    ];
    for def in defs {
        match def {
            Ok(_) | Err(ClientError::Server { .. }) => {}
            Err(e) => {
                eprintln!("workload definition failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(counts) = args.c10k.clone() {
        run_c10k(&args, &admin, &counts);
    }

    let r = run_workload(&args, &admin);
    let line = json::Value::obj([
        ("bench", json::Value::str("net_loadgen")),
        ("clients", json::Value::UInt(args.clients as u64)),
        ("iters", json::Value::UInt(args.iters as u64)),
        ("codec", json::Value::str(codec_name(args.codec))),
        ("batch", json::Value::UInt(args.batch as u64)),
        ("pipeline", json::Value::UInt(args.pipeline as u64)),
        ("requests", json::Value::UInt(r.requests)),
        ("pairs_expected", json::Value::UInt(r.pairs_expected)),
        ("pairs_observed", json::Value::UInt(r.pairs_observed)),
        ("rule_hits", json::Value::UInt(r.hits)),
        ("fired_immediate", json::Value::UInt(r.fired)),
        ("lost", json::Value::Int(r.lost)),
        ("elapsed_ms", json::Value::Float(r.elapsed_ms)),
        ("throughput_rps", json::Value::Float(r.throughput_rps)),
        ("p50_us", json::Value::Float(r.p50_us)),
        ("p95_us", json::Value::Float(r.p95_us)),
        ("p99_us", json::Value::Float(r.p99_us)),
        ("mean_us", json::Value::Float(r.mean_us)),
        ("busy_retries", json::Value::UInt(r.busy_retries)),
        ("decode_errors", json::Value::UInt(r.decode_errors)),
        ("failed_clients", json::Value::UInt(r.failed)),
        ("telemetry", scrape_telemetry(&admin)),
    ]);
    println!("bench{line}");

    if args.shutdown {
        if let Err(e) = admin.shutdown_server() {
            eprintln!("shutdown request failed: {e}");
        }
    }

    if !r.ok() {
        eprintln!(
            "FAILED: expected {} pairs \
             (observed {}, rule hits {}, lost {}, \
             decode errors {}, failed clients {})",
            r.pairs_expected, r.pairs_observed, r.hits, r.lost, r.decode_errors, r.failed
        );
        std::process::exit(1);
    }
}

fn codec_name(codec: ClientCodec) -> &'static str {
    match codec {
        ClientCodec::Auto => "auto",
        ClientCodec::Json => "json",
        ClientCodec::Binary => "binary",
    }
}

/// One measured run of the TCP workload with exact-count accounting.
struct WorkloadResult {
    requests: u64,
    pairs_expected: u64,
    pairs_observed: u64,
    hits: u64,
    fired: u64,
    decode_errors: u64,
    lost: i64,
    failed: u64,
    busy_retries: u64,
    elapsed_ms: f64,
    throughput_rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
}

impl WorkloadResult {
    fn ok(&self) -> bool {
        self.failed == 0
            && self.decode_errors == 0
            && self.lost == 0
            && self.pairs_observed == self.pairs_expected
            && self.hits == self.pairs_expected
    }
}

/// Runs `clients` workers through the workload and folds the zero-loss
/// accounting from server-side stat deltas (so repeated runs against one
/// long-lived server stay exact).
fn run_workload(args: &Args, admin: &SentinelClient) -> WorkloadResult {
    let before = admin.stats().unwrap_or_else(|e| {
        eprintln!("stats failed: {e}");
        std::process::exit(1);
    });
    let fired0 = stat_u64(&before, &["scheduler", "fired", "immediate"]);
    let hits0 = stat_u64(&before, &["rule_hits", "cascade_count"]);
    let decode0 = stat_u64(&before, &["net", "decode_errors"]);

    let hist = Histogram::new();
    let busy = AtomicU64::new(0);
    let t0 = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.clients)
            .map(|i| {
                let (hist, busy) = (&hist, &busy);
                s.spawn(move || run_client(&args.addr, i, args, hist, busy))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = t0.elapsed();

    let after = admin.stats().unwrap_or_else(|e| {
        eprintln!("stats failed: {e}");
        std::process::exit(1);
    });
    let fired = stat_u64(&after, &["scheduler", "fired", "immediate"]) - fired0;
    let hits = stat_u64(&after, &["rule_hits", "cascade_count"]) - hits0;
    let decode_errors = stat_u64(&after, &["net", "decode_errors"]) - decode0;

    let failed = outcomes.iter().filter(|o| o.failed).count() as u64;
    let requests: u64 = outcomes.iter().map(|o| o.requests).sum();
    let pairs_observed: u64 = outcomes.iter().map(|o| o.pairs_observed).sum();
    let pairs_expected = (args.clients * args.iters * args.batch.max(1)) as u64;
    // Every pair fires pair_watch + cascade_count, both immediate.
    let lost = (2 * pairs_expected) as i64 - fired as i64;

    let snap = hist.snapshot();
    WorkloadResult {
        requests,
        pairs_expected,
        pairs_observed,
        hits,
        fired,
        decode_errors,
        lost,
        failed,
        busy_retries: busy.load(Ordering::Relaxed),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: snap.p50_ns() as f64 / 1e3,
        p95_us: snap.p95_ns() as f64 / 1e3,
        p99_us: snap.p99_ns() as f64 / 1e3,
        mean_us: snap.mean_ns() as f64 / 1e3,
    }
}

/// The server's resident set in kB, read from `/proc/<pid>/status`
/// (`pid` comes from the server's own stats; `None` off-host or against
/// a server that predates the field).
fn server_rss_kb(pid: u64) -> Option<u64> {
    if pid == 0 {
        return None;
    }
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `--c10k`: connection-scaling sweep. For each count, holds that many
/// extra idle connections open (never sending a byte — they must ride
/// the reactor untouched, exempt from stall eviction), then runs the
/// active workload alongside them and records the server's RSS, accept
/// health, and throughput. Exits non-zero on any lost signal, refused
/// or failed connection, or missing idle capacity.
fn run_c10k(args: &Args, admin: &SentinelClient, counts: &[usize]) -> ! {
    let stats0 = admin.stats().unwrap_or_else(|e| {
        eprintln!("stats failed: {e}");
        std::process::exit(1);
    });
    let pid = stat_u64(&stats0, &["net", "pid"]);
    let rss_baseline_kb = server_rss_kb(pid);

    let mut rows = Vec::new();
    let mut all_ok = true;
    for &n in counts {
        let t0 = Instant::now();
        let mut idle = Vec::with_capacity(n);
        let mut idle_failures = 0u64;
        for i in 0..n {
            match TcpStream::connect(&args.addr) {
                Ok(s) => idle.push(s),
                Err(e) => {
                    if idle_failures == 0 {
                        eprintln!("c10k: connect {i}/{n} failed: {e}");
                    }
                    idle_failures += 1;
                }
            }
        }
        let connect_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Let every accepted socket make it off the acceptor and into an
        // event loop before measuring.
        std::thread::sleep(Duration::from_millis(300));
        let settled = admin.stats().unwrap_or_else(|e| {
            eprintln!("stats failed: {e}");
            std::process::exit(1);
        });
        let active = stat_u64(&settled, &["net", "connections_active"]);
        let refused = stat_u64(&settled, &["net", "connections_refused"]);
        let rss_idle_kb = server_rss_kb(pid);

        let r = run_workload(args, admin);
        let rss_load_kb = server_rss_kb(pid);

        // `active` counts our idle conns + admin + whatever the workload
        // had open at sample time; the floor is the idle set surviving.
        let row_ok = r.ok() && idle_failures == 0 && active >= n as u64;
        all_ok &= row_ok;
        eprintln!(
            "c10k: idle={} connect_ms={:.0} active={} rss_idle_kb={} throughput={:.0}/s lost={}",
            n,
            connect_ms,
            active,
            rss_idle_kb.unwrap_or(0),
            r.throughput_rps,
            r.lost
        );
        rows.push(json::Value::obj([
            ("connections", json::Value::UInt(n as u64)),
            ("idle_failures", json::Value::UInt(idle_failures)),
            ("connect_ms", json::Value::Float(connect_ms)),
            ("connections_active", json::Value::UInt(active)),
            ("connections_refused", json::Value::UInt(refused)),
            ("rss_idle_kb", rss_idle_kb.map_or(json::Value::Null, json::Value::UInt)),
            ("rss_load_kb", rss_load_kb.map_or(json::Value::Null, json::Value::UInt)),
            ("requests", json::Value::UInt(r.requests)),
            ("throughput_rps", json::Value::Float(r.throughput_rps)),
            ("p50_us", json::Value::Float(r.p50_us)),
            ("p99_us", json::Value::Float(r.p99_us)),
            ("lost", json::Value::Int(r.lost)),
            ("busy_retries", json::Value::UInt(r.busy_retries)),
            ("failed_clients", json::Value::UInt(r.failed)),
            ("ok", json::Value::Bool(row_ok)),
        ]));
        drop(idle);
        // Let the reactor drain 10k EOFs before the next row measures.
        std::thread::sleep(Duration::from_millis(300));
    }

    let report = json::Value::obj([
        ("bench", json::Value::str("net_c10k")),
        ("clients", json::Value::UInt(args.clients as u64)),
        ("iters", json::Value::UInt(args.iters as u64)),
        ("codec", json::Value::str(codec_name(args.codec))),
        ("batch", json::Value::UInt(args.batch as u64)),
        ("pipeline", json::Value::UInt(args.pipeline as u64)),
        ("rss_baseline_kb", rss_baseline_kb.map_or(json::Value::Null, json::Value::UInt)),
        ("rows", json::Value::Arr(rows)),
    ]);
    if let Err(e) = std::fs::write(&args.net_out, format!("{report}\n")) {
        eprintln!("cannot write {}: {e}", args.net_out);
        std::process::exit(1);
    }
    println!("bench{report}");
    if args.shutdown {
        if let Err(e) = admin.shutdown_server() {
            eprintln!("shutdown request failed: {e}");
        }
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
