//! Standalone Sentinel server: one shared active DBMS behind a TCP port.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin sentinel-server -- [FLAGS]
//!
//!   --addr <host:port>      bind address (default 127.0.0.1:7878; port 0
//!                           lets the OS pick — the chosen port is printed)
//!   --max-connections <N>   concurrent connection cap (default 64;
//!                           raise well past 10000 for C10K runs — the
//!                           reactor holds idle connections for free)
//!   --event-loops <N>       epoll event loops serving sockets
//!                           (default 2; 0 selects the portable
//!                           thread-per-connection reference backend)
//!   --codec <V>             newest wire codec to grant at Hello:
//!                           `v2` (default; binary payload bodies) or
//!                           `v1` (JSON only — emulates an old server
//!                           for compatibility testing)
//!   --stall-ms <N>          evict a connection stuck mid-frame or with
//!                           unread replies after N ms (default 30000;
//!                           idle connections are never evicted)
//!   --max-write-queue <N>   per-connection write-queue byte cap before
//!                           a non-reading peer is evicted (default
//!                           4194304; one max-size frame always fits)
//!   --global-inflight <N>   global in-flight signal cap (default 1024)
//!   --session-inflight <N>  per-session queued-async cap (default 128)
//!   --detector-threads <N>  detector workers behind the async pump
//!                           (default 1; disjoint event-graph shards
//!                           detect concurrently across workers)
//!   --tracing               enable provenance tracing (lets clients
//!                           stitch server spans into their trace ids)
//!   --data-dir <DIR>        run durably: recover the catalog, event
//!                           journal, and event-graph state from DIR, and
//!                           journal everything from here on
//!   --fsync <POLICY>        journal fsync policy: `always` (default),
//!                           `every=N` (batch N appends per fsync), or
//!                           `never` (OS page cache only)
//!   --checkpoint-every <N>  checkpoint the event graph every N journal
//!                           records (default 1024; 0 disables automatic
//!                           checkpoints — shutdown still cuts one)
//!   --group-window-us <N>   group-commit accumulation window in µs: the
//!                           committer sleeps this long after the first
//!                           pending append so concurrent shards share
//!                           the fsync (default 0 — commit immediately)
//!   --group-bytes <N>       force a group commit once N payload bytes
//!                           are pending, regardless of the fsync policy
//!                           (default 0 — disabled)
//!   --no-telemetry          disable the 1 s time-series sampler (on by
//!                           default; scraped via the MetricsScrape
//!                           opcode or HTTP GET /metrics on the same
//!                           port)
//!   --replica-of <ADDR>     start as a read-only follower of the primary
//!                           at ADDR (requires --data-dir): bootstrap
//!                           from its snapshot, tail its replication
//!                           stream, serve reads, refuse writes until
//!                           promoted (Promote opcode or lease expiry)
//!   --lease-ms <N>          with --replica-of: self-promote after the
//!                           primary has been unreachable N ms (default
//!                           3000; 0 disables auto-promotion)
//!   --follower-name <NAME>  follower name shown in the primary's
//!                           replication stats (default "replica")
//! ```
//!
//! The process serves until a client sends a `Shutdown` frame (e.g.
//! `sentinel-loadgen --shutdown`), then drains the detector service and
//! exits — with `--data-dir`, shutdown also flushes the journal and cuts
//! a final checkpoint. The line `listening on <addr>` on stdout marks
//! readiness; a durable start first prints one `recovered ...` line
//! summarizing what came back from disk (the same numbers land in
//! `recovery-report.json` inside the data directory).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use sentinel_cluster::{Follower, FollowerConfig};
use sentinel_core::durable_store::{DurableOptions, FsyncPolicy};
use sentinel_core::{Sentinel, SentinelConfig};
use sentinel_net::{NetServer, ServerConfig};

struct Args {
    cfg: ServerConfig,
    tracing: bool,
    telemetry: bool,
    data_dir: Option<PathBuf>,
    durable: DurableOptions,
    replica_of: Option<String>,
    lease_ms: u64,
    follower_name: String,
}

fn parse_fsync(spec: &str) -> FsyncPolicy {
    match spec {
        "always" => FsyncPolicy::Always,
        "never" => FsyncPolicy::Never,
        other => match other.strip_prefix("every=").and_then(|n| n.parse().ok()) {
            Some(n) => FsyncPolicy::EveryN(n),
            None => {
                eprintln!("--fsync wants `always`, `never`, or `every=N`");
                std::process::exit(2);
            }
        },
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: ServerConfig::default(),
        tracing: false,
        telemetry: true,
        data_dir: None,
        durable: DurableOptions::default(),
        replica_of: None,
        lease_ms: 3000,
        follower_name: "replica".to_string(),
    };
    args.cfg.addr = "127.0.0.1:7878".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => args.cfg.addr = value("--addr"),
            "--max-connections" => {
                args.cfg.max_connections =
                    value("--max-connections").parse().expect("--max-connections <N>");
            }
            "--event-loops" => {
                args.cfg.event_loops = value("--event-loops").parse().expect("--event-loops <N>");
            }
            "--codec" => {
                args.cfg.max_codec_version = match value("--codec").as_str() {
                    "v1" => sentinel_net::protocol::VERSION,
                    "v2" => sentinel_net::protocol::VERSION_MAX,
                    other => {
                        eprintln!("--codec wants v1 or v2, got {other}");
                        std::process::exit(2);
                    }
                };
            }
            "--stall-ms" => {
                args.cfg.stall_timeout =
                    Duration::from_millis(value("--stall-ms").parse().expect("--stall-ms <N>"));
            }
            "--max-write-queue" => {
                args.cfg.max_write_queue =
                    value("--max-write-queue").parse().expect("--max-write-queue <N>");
            }
            "--global-inflight" => {
                args.cfg.max_inflight_global =
                    value("--global-inflight").parse().expect("--global-inflight <N>");
            }
            "--session-inflight" => {
                args.cfg.max_inflight_per_session =
                    value("--session-inflight").parse().expect("--session-inflight <N>");
            }
            "--detector-threads" => {
                args.cfg.detector_threads =
                    value("--detector-threads").parse().expect("--detector-threads <N>");
            }
            "--tracing" => args.tracing = true,
            "--no-telemetry" => args.telemetry = false,
            "--data-dir" => args.data_dir = Some(PathBuf::from(value("--data-dir"))),
            "--fsync" => args.durable.fsync = parse_fsync(&value("--fsync")),
            "--checkpoint-every" => {
                args.durable.checkpoint_every =
                    value("--checkpoint-every").parse().expect("--checkpoint-every <N>");
            }
            "--group-window-us" => {
                args.durable.group_window_us =
                    value("--group-window-us").parse().expect("--group-window-us <N>");
            }
            "--group-bytes" => {
                args.durable.group_bytes =
                    value("--group-bytes").parse().expect("--group-bytes <N>");
            }
            "--replica-of" => args.replica_of = Some(value("--replica-of")),
            "--lease-ms" => {
                args.lease_ms = value("--lease-ms").parse().expect("--lease-ms <N>");
            }
            "--follower-name" => args.follower_name = value("--follower-name"),
            "--help" | "-h" => {
                println!(
                    "sentinel-server [--addr HOST:PORT] [--max-connections N] \
                     [--event-loops N] [--codec v1|v2] [--stall-ms N] \
                     [--max-write-queue N] \
                     [--global-inflight N] [--session-inflight N] \
                     [--detector-threads N] [--tracing] [--data-dir DIR] \
                     [--fsync always|never|every=N] [--checkpoint-every N] \
                     [--group-window-us N] [--group-bytes N] [--no-telemetry] \
                     [--replica-of ADDR] [--lease-ms N] [--follower-name NAME]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn open_sentinel(args: &Args) -> Arc<Sentinel> {
    let Some(dir) = &args.data_dir else {
        if args.replica_of.is_some() {
            eprintln!("--replica-of requires --data-dir");
            std::process::exit(2);
        }
        return Sentinel::in_memory();
    };
    // On panic, dump the flight-recorder ring next to the journal so the
    // post-mortem has the process's final seconds.
    sentinel_core::obs::flight::install_panic_hook(
        dir.join(sentinel_core::obs::flight::FLIGHT_RECORDER_FILE),
    );
    let opened = if args.replica_of.is_some() {
        Sentinel::open_replica(dir, SentinelConfig::default(), args.durable)
    } else {
        Sentinel::open_durable(dir, SentinelConfig::default(), args.durable)
    };
    match opened {
        Ok((sentinel, report)) => {
            let p = &report.phases;
            println!(
                "recovered {} catalog ops, checkpoint {}, {} replayed of {} journal records \
                 ({} bytes truncated) [phases us: fence_repair={} stream_merge={} \
                 snapshot_restore={} catalog_interleave={} replay={} total={}]",
                report.catalog_ops,
                report.checkpoint_tag.map_or_else(|| "none".to_string(), |t| t.to_string()),
                report.replayed_records,
                report.journal_records,
                report.truncated_bytes,
                p.fence_repair_us,
                p.stream_merge_us,
                p.snapshot_restore_us,
                p.catalog_interleave_us,
                p.replay_us,
                p.total_us,
            );
            sentinel
        }
        Err(e) => {
            eprintln!("recovery failed for {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    let sentinel = open_sentinel(&args);
    sentinel.set_tracing(args.tracing);
    if args.telemetry {
        // Before NetServer::start, so the net/service sources register
        // into the same registry.
        sentinel.start_telemetry_default();
    }
    let server = match NetServer::start(sentinel.serve_handle(), args.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    // Keep the follower handle alive for the server's lifetime; dropping
    // it stops the apply loop.
    let _follower = args.replica_of.as_ref().map(|primary| {
        let dir = args.data_dir.clone().expect("checked in open_sentinel");
        let mut cfg = FollowerConfig::new(primary, &args.follower_name, dir);
        cfg.lease = match args.lease_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        };
        println!("following {primary} as {}", args.follower_name);
        Follower::start(sentinel.clone(), cfg)
    });
    server.wait_for_shutdown();
    let net = server.metrics().snapshot();
    println!("server stopped: {}", net.to_json());
}
