//! Standalone Sentinel server: one shared active DBMS behind a TCP port.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin sentinel-server -- [FLAGS]
//!
//!   --addr <host:port>      bind address (default 127.0.0.1:7878; port 0
//!                           lets the OS pick — the chosen port is printed)
//!   --max-connections <N>   concurrent connection cap (default 64)
//!   --global-inflight <N>   global in-flight signal cap (default 1024)
//!   --session-inflight <N>  per-session queued-async cap (default 128)
//!   --tracing               enable provenance tracing (lets clients
//!                           stitch server spans into their trace ids)
//! ```
//!
//! The process serves until a client sends a `Shutdown` frame (e.g.
//! `sentinel-loadgen --shutdown`), then drains the detector service and
//! exits. The line `listening on <addr>` on stdout marks readiness.

use sentinel_core::Sentinel;
use sentinel_net::{NetServer, ServerConfig};

struct Args {
    cfg: ServerConfig,
    tracing: bool,
}

fn parse_args() -> Args {
    let mut args = Args { cfg: ServerConfig::default(), tracing: false };
    args.cfg.addr = "127.0.0.1:7878".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => args.cfg.addr = value("--addr"),
            "--max-connections" => {
                args.cfg.max_connections =
                    value("--max-connections").parse().expect("--max-connections <N>");
            }
            "--global-inflight" => {
                args.cfg.max_inflight_global =
                    value("--global-inflight").parse().expect("--global-inflight <N>");
            }
            "--session-inflight" => {
                args.cfg.max_inflight_per_session =
                    value("--session-inflight").parse().expect("--session-inflight <N>");
            }
            "--tracing" => args.tracing = true,
            "--help" | "-h" => {
                println!(
                    "sentinel-server [--addr HOST:PORT] [--max-connections N] \
                     [--global-inflight N] [--session-inflight N] [--tracing]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let sentinel = Sentinel::in_memory();
    sentinel.set_tracing(args.tracing);
    let server = match NetServer::start(sentinel.serve_handle(), args.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    server.wait_for_shutdown();
    let net = server.metrics().snapshot();
    println!("server stopped: {}", net.to_json());
}
