//! Shared workload builders for the BEAST-style benchmarks and ablations.
//!
//! BEAST (Geppert et al., the active-DBMS benchmark contemporary with
//! Sentinel) structures its measurements as: event detection overhead
//! (primitive, composite per operator, per context) and rule management /
//! execution overhead (firing, multiple rules, nested cascades). The
//! builders here assemble Sentinel systems and detectors for each of those
//! measurement classes so the criterion benches and the `beast` binary
//! share identical setups.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::detector::LocalEventDetector;
use sentinel_core::oodb::schema::{AttrType, ClassDef};
use sentinel_core::oodb::{AttrValue, ObjectState, Oid};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::rules::ExecutionMode;
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::snoop::{parse_event_expr, ParamContext};
use sentinel_core::storage::TxnId;
use sentinel_core::Sentinel;

/// Method signature used by every benchmark class.
pub const SIG: &str = "void poke(int v)";

/// A Sentinel system with one reactive class `BEAST` and a `poke` method.
pub fn beast_system(mode: ExecutionMode) -> Arc<Sentinel> {
    let s = Sentinel::in_memory_with(SentinelConfig { mode, ..SentinelConfig::default() });
    s.db()
        .register_class(
            ClassDef::new("BEAST").extends("REACTIVE").attr("v", AttrType::Int).method(SIG),
        )
        .expect("class");
    s.db().register_method(
        "BEAST",
        SIG,
        Arc::new(|ctx| {
            let v = ctx.arg("v").and_then(|x| x.as_int()).unwrap_or(0);
            ctx.set_attr("v", v)?;
            Ok(AttrValue::Null)
        }),
    );
    s.declare_event("poke", "BEAST", EventModifier::End, SIG, PrimTarget::AnyInstance)
        .expect("event");
    s
}

/// Creates `n` BEAST objects inside `txn`.
pub fn objects(s: &Sentinel, txn: TxnId, n: usize) -> Vec<Oid> {
    (0..n)
        .map(|i| {
            s.create_object(txn, &ObjectState::new("BEAST").with("v", i as i64)).expect("object")
        })
        .collect()
}

/// Invokes `poke` once.
pub fn poke(s: &Sentinel, txn: TxnId, oid: Oid, v: i64) {
    s.invoke(txn, oid, SIG, vec![("v".into(), v.into())]).expect("poke");
}

/// A standalone detector with `n` independent primitive leaves
/// `e0 … e(n-1)`, each on its own class `C<i>`.
pub fn detector_with_leaves(n: usize) -> LocalEventDetector {
    let d = LocalEventDetector::new(0);
    for i in 0..n {
        d.declare_primitive(
            &format!("e{i}"),
            &format!("C{i}"),
            EventModifier::End,
            SIG,
            PrimTarget::AnyInstance,
        )
        .expect("leaf");
    }
    d
}

/// Fires leaf `i` of a [`detector_with_leaves`] detector.
pub fn fire_leaf(d: &LocalEventDetector, i: usize, txn: u64) -> usize {
    d.notify_method(&format!("C{i}"), SIG, EventModifier::End, 1, Vec::new(), Some(txn)).len()
}

/// Builds a left-deep operator chain of the given depth, e.g. for `^`:
/// `((e0 ^ e1) ^ e2) ^ e3 …`, subscribes in `ctx`, returns the detector.
pub fn chain_detector(op: &str, depth: usize, ctx: ParamContext) -> LocalEventDetector {
    let d = detector_with_leaves(depth + 1);
    let mut expr = "e0".to_string();
    for i in 1..=depth {
        expr = format!("({expr} {op} e{i})");
    }
    let id = d.define_named("chain", &parse_event_expr(&expr).unwrap()).expect("chain");
    d.subscribe(id, ctx, 1).expect("subscribe");
    d
}

/// Counts rule firings via a shared counter.
pub struct FiringCounter(pub Arc<AtomicUsize>);

impl FiringCounter {
    /// New zeroed counter.
    pub fn new() -> Self {
        FiringCounter(Arc::new(AtomicUsize::new(0)))
    }

    /// Current count.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::SeqCst)
    }
}

impl Default for FiringCounter {
    fn default() -> Self {
        Self::new()
    }
}

/// Defines `n` counting rules on event `event` with priority class `prio`.
pub fn counting_rules(s: &Sentinel, event: &str, n: usize, prio: u32) -> FiringCounter {
    let counter = FiringCounter::new();
    for i in 0..n {
        let c = counter.0.clone();
        s.define_rule(
            &format!("count_{event}_{prio}_{i}"),
            event,
            Arc::new(|_| true),
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
            RuleOptions::default().priority(prio),
        )
        .expect("rule");
    }
    counter
}

/// Defines a chain of `depth` rules where rule `i` raises the explicit
/// event that triggers rule `i+1` (nested cascade). Returns the counter
/// incremented by the deepest rule.
pub fn nested_cascade(s: &Arc<Sentinel>, depth: usize) -> FiringCounter {
    let counter = FiringCounter::new();
    for i in 0..depth {
        s.detector().declare_explicit(&format!("cascade{i}"));
    }
    for i in 0..depth {
        let s2 = s.clone();
        let c = counter.0.clone();
        let last = i + 1 == depth;
        let next = format!("cascade{}", i + 1);
        s.define_rule(
            &format!("cascade_rule{i}"),
            &format!("cascade{i}"),
            Arc::new(|_| true),
            Arc::new(move |inv| {
                if last {
                    c.fetch_add(1, Ordering::SeqCst);
                } else {
                    s2.raise(inv.txn.map(TxnId), &next, Vec::new()).expect("raise");
                }
            }),
            RuleOptions::default(),
        )
        .expect("cascade rule");
    }
    counter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beast_system_pokes() {
        let s = beast_system(ExecutionMode::Inline);
        let c = counting_rules(&s, "poke", 3, 10);
        let t = s.begin().unwrap();
        let objs = objects(&s, t, 2);
        poke(&s, t, objs[0], 1);
        s.commit(t).unwrap();
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn chain_detector_detects_at_full_depth() {
        let d = chain_detector("^", 3, ParamContext::Cumulative);
        let mut total = 0;
        for i in 0..4 {
            total += fire_leaf(&d, i, 1);
        }
        assert_eq!(total, 1, "AND chain completes once all leaves fired");
    }

    #[test]
    fn cascade_reaches_bottom() {
        let s = beast_system(ExecutionMode::Inline);
        let c = nested_cascade(&s, 5);
        let t = s.begin().unwrap();
        s.raise(Some(t), "cascade0", Vec::new()).unwrap();
        s.commit(t).unwrap();
        assert_eq!(c.get(), 1);
    }
}
