//! BEAST-E1: primitive event detection overhead.
//!
//! Measures the cost a method invocation pays for being a (potential)
//! primitive event: the same `poke` call on a passive object store versus
//! the active system with (a) no subscriber, (b) one subscribed rule —
//! across different numbers of reactive objects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_bench::workload::{beast_system, counting_rules, objects, poke};
use sentinel_core::rules::ExecutionMode;

fn bench_primitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("beast_e1_primitive");
    group.sample_size(20);

    for &nobjs in &[1usize, 16, 256] {
        // (a) event declared, nothing subscribed: demand-driven detection
        // means the notify is filtered at the leaf.
        let s = beast_system(ExecutionMode::Inline);
        let t = s.begin().unwrap();
        let objs = objects(&s, t, nobjs);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("event_unsubscribed", nobjs), &nobjs, |b, _| {
            b.iter(|| {
                poke(&s, t, objs[i % objs.len()], i as i64);
                i += 1;
            })
        });
        s.commit(t).unwrap();

        // (b) one immediate rule subscribed: full detect + fire path.
        let s = beast_system(ExecutionMode::Inline);
        let counter = counting_rules(&s, "poke", 1, 10);
        let t = s.begin().unwrap();
        let objs = objects(&s, t, nobjs);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("event_with_rule", nobjs), &nobjs, |b, _| {
            b.iter(|| {
                poke(&s, t, objs[i % objs.len()], i as i64);
                i += 1;
            })
        });
        s.commit(t).unwrap();
        assert!(counter.get() > 0);
    }
    group.finish();
}

criterion_group!(benches, bench_primitive);
criterion_main!(benches);
