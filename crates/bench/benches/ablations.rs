//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! * **ABL-1 shared event graph** — k rules over the same sub-expression:
//!   hash-consed shared graph (Sentinel's design, §3.1) vs a fresh copy of
//!   the expression per rule (what per-rule graphs would cost).
//! * **ABL-2 demand-driven propagation** — a wide graph where only a few
//!   contexts/nodes are active: occurrences must not pay for inactive
//!   sub-graphs ("does not propagate parameters to irrelevant nodes").
//! * **ABL-3 thread pool vs spawn-per-rule** — the paper's rationale for
//!   lightweight processes with a free-thread pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_bench::workload::{detector_with_leaves, fire_leaf};
use sentinel_core::snoop::{parse_event_expr, ParamContext};
use sentinel_core::txn::PriorityPool;

fn abl1_shared_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_shared_graph");
    group.sample_size(15);
    for &k in &[4usize, 32, 128] {
        // Shared: one AND node, k subscriptions.
        let shared = detector_with_leaves(2);
        let id = shared.define_named("x", &parse_event_expr("e0 ^ e1").unwrap()).unwrap();
        for sub in 0..k {
            shared.subscribe(id, ParamContext::Recent, sub as u64).unwrap();
        }
        // Per-rule: k distinct AND nodes (defeating hash-consing by varying
        // the right operand association shape via extra ORs with unique
        // leaves).
        let per_rule = detector_with_leaves(2 + k);
        for sub in 0..k {
            let expr = format!("e0 ^ (e1 | e{})", 2 + sub);
            let nid = per_rule
                .define_named(&format!("x{sub}"), &parse_event_expr(&expr).unwrap())
                .unwrap();
            per_rule.subscribe(nid, ParamContext::Recent, sub as u64).unwrap();
        }
        let mut txn = 0u64;
        group.bench_with_input(BenchmarkId::new("shared", k), &k, |b, _| {
            b.iter(|| {
                txn += 1;
                fire_leaf(&shared, 0, txn) + fire_leaf(&shared, 1, txn)
            })
        });
        let mut txn = 0u64;
        group.bench_with_input(BenchmarkId::new("per_rule", k), &k, |b, _| {
            b.iter(|| {
                txn += 1;
                fire_leaf(&per_rule, 0, txn) + fire_leaf(&per_rule, 1, txn)
            })
        });
        // Report the structural sizes once per k (visible with --verbose).
        assert!(shared.graph_size() < per_rule.graph_size());
    }
    group.finish();
}

fn abl2_demand_driven(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_demand_driven");
    group.sample_size(15);
    // A wide graph: 64 composite events all over leaf e0; only `active_n`
    // of them have subscribers. Demand-driven propagation should make the
    // cost proportional to the active count, not the graph width.
    for &active_n in &[0usize, 8, 64] {
        let d = detector_with_leaves(65);
        let mut ids = Vec::new();
        for i in 0..64 {
            let expr = format!("e0 ^ e{}", i + 1);
            ids.push(d.define_named(&format!("w{i}"), &parse_event_expr(&expr).unwrap()).unwrap());
        }
        for (i, id) in ids.iter().take(active_n).enumerate() {
            d.subscribe(*id, ParamContext::Recent, i as u64).unwrap();
        }
        let mut txn = 0u64;
        group.bench_with_input(
            BenchmarkId::new("active_subscriptions", active_n),
            &active_n,
            |b, _| {
                b.iter(|| {
                    txn += 1;
                    fire_leaf(&d, 0, txn)
                })
            },
        );
    }
    group.finish();
}

fn abl3_pool_vs_spawn(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_thread_pool");
    group.sample_size(10);
    for &burst in &[10usize, 100, 1000] {
        let pool = PriorityPool::new(4);
        group.bench_with_input(BenchmarkId::new("pool", burst), &burst, |b, &burst| {
            b.iter(|| {
                let counter = Arc::new(AtomicUsize::new(0));
                for _ in 0..burst {
                    let c = counter.clone();
                    pool.submit(0, move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
                pool.quiesce();
                counter.load(Ordering::Relaxed)
            })
        });
        group.bench_with_input(BenchmarkId::new("spawn_per_rule", burst), &burst, |b, &burst| {
            b.iter(|| {
                let counter = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..burst)
                    .map(|_| {
                        let c = counter.clone();
                        std::thread::spawn(move || {
                            c.fetch_add(1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                counter.load(Ordering::Relaxed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, abl1_shared_graph, abl2_demand_driven, abl3_pool_vs_spawn);
criterion_main!(benches);
