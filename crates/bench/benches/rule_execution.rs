//! FIG-3 benchmark: the rule execution model.
//!
//! Measures the throughput of the Figure 3 machinery: priority-class
//! scheduling (serial across classes, concurrent within), inline vs
//! threaded execution, and the subtransaction packaging cost per firing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_bench::workload::{beast_system, counting_rules, objects, poke};
use sentinel_core::rules::ExecutionMode;

fn bench_scheduler_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_rule_execution");
    group.sample_size(12);
    for (mode, label) in [
        (ExecutionMode::Inline, "inline"),
        (ExecutionMode::Threaded { workers: 2 }, "threaded2"),
        (ExecutionMode::Threaded { workers: 8 }, "threaded8"),
    ] {
        for &nrules in &[1usize, 8, 64] {
            let s = beast_system(mode);
            let counter = counting_rules(&s, "poke", nrules, 10);
            let t = s.begin().unwrap();
            let objs = objects(&s, t, 1);
            let mut i = 0i64;
            group.bench_with_input(BenchmarkId::new(label, nrules), &nrules, |b, _| {
                b.iter(|| {
                    i += 1;
                    poke(&s, t, objs[0], i);
                })
            });
            s.commit(t).unwrap();
            assert!(counter.get() >= nrules);
        }
    }
    group.finish();
}

fn bench_priority_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_priority_classes");
    group.sample_size(12);
    // Same total rule count split over 1, 4, or 16 priority classes: each
    // class boundary adds a quiesce barrier in threaded mode.
    for &classes in &[1usize, 4, 16] {
        let s = beast_system(ExecutionMode::Threaded { workers: 4 });
        let per_class = 16 / classes;
        for cls in 0..classes {
            counting_rules(&s, "poke", per_class, (cls as u32 + 1) * 10);
        }
        let t = s.begin().unwrap();
        let objs = objects(&s, t, 1);
        let mut i = 0i64;
        group.bench_with_input(BenchmarkId::new("classes", classes), &classes, |b, _| {
            b.iter(|| {
                i += 1;
                poke(&s, t, objs[0], i);
            })
        });
        s.commit(t).unwrap();
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler_modes, bench_priority_classes);
criterion_main!(benches);
