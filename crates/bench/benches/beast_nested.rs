//! BEAST-R2: nested rule cascades.
//!
//! Rule `i` raises the event of rule `i+1` from its action; the cascade
//! depth sweeps 1–16. Measures the per-level cost of nested triggering:
//! subtransaction begin/commit, derived-priority scheduling, and the
//! re-entrant detector path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_bench::workload::{beast_system, nested_cascade};
use sentinel_core::rules::ExecutionMode;

fn bench_cascade_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("beast_r2_nested_cascade");
    group.sample_size(15);
    for &depth in &[1usize, 4, 8, 16] {
        for (mode, label) in [
            (ExecutionMode::Inline, "inline"),
            (ExecutionMode::Threaded { workers: 4 }, "threaded"),
        ] {
            let s = beast_system(mode);
            let counter = nested_cascade(&s, depth);
            group.bench_with_input(BenchmarkId::new(label, depth), &depth, |b, _| {
                b.iter(|| {
                    let t = s.begin().unwrap();
                    s.raise(Some(t), "cascade0", Vec::new()).unwrap();
                    s.commit(t).unwrap();
                })
            });
            assert!(counter.get() > 0);
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cascade_depth);
criterion_main!(benches);
