//! BEAST-R1: rule firing overhead.
//!
//! (a) 1–1000 immediate rules on one event (multiple-rule dispatch), and
//! (b) immediate vs deferred coupling — the deferred rewrite adds an `A*`
//! node and moves execution to pre-commit, so a transaction with `k`
//! triggerings pays k× for immediate but 1× (plus accumulation) for
//! deferred.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_bench::workload::{beast_system, counting_rules, objects, poke};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::rules::ExecutionMode;
use sentinel_core::snoop::CouplingMode;

fn bench_many_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("beast_r1_many_rules");
    group.sample_size(15);
    for &nrules in &[1usize, 10, 100, 1000] {
        let s = beast_system(ExecutionMode::Inline);
        let counter = counting_rules(&s, "poke", nrules, 10);
        let t = s.begin().unwrap();
        let objs = objects(&s, t, 1);
        let mut i = 0i64;
        group.bench_with_input(BenchmarkId::new("immediate_rules", nrules), &nrules, |b, _| {
            b.iter(|| {
                i += 1;
                poke(&s, t, objs[0], i);
            })
        });
        s.commit(t).unwrap();
        assert!(counter.get() >= nrules);
    }
    group.finish();
}

fn bench_coupling_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("beast_r1_coupling");
    group.sample_size(15);
    // Each iteration: one transaction with `k` triggerings.
    for &k in &[1usize, 10, 50] {
        for coupling in [CouplingMode::Immediate, CouplingMode::Deferred] {
            let s = beast_system(ExecutionMode::Inline);
            let fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let f = fired.clone();
            s.define_rule(
                "r",
                "poke",
                Arc::new(|_| true),
                Arc::new(move |_| {
                    f.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }),
                RuleOptions::default().coupling(coupling),
            )
            .unwrap();
            let setup = s.begin().unwrap();
            let objs = objects(&s, setup, 1);
            s.commit(setup).unwrap();
            let label = format!("{coupling}");
            let mut i = 0i64;
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, &k| {
                b.iter(|| {
                    let t = s.begin().unwrap();
                    for _ in 0..k {
                        i += 1;
                        poke(&s, t, objs[0], i);
                    }
                    s.commit(t).unwrap();
                })
            });
        }
    }
    group.finish();
}

fn bench_enable_disable(c: &mut Criterion) {
    // Rule (de)activation at run time: counter propagation through the
    // sub-graph is the measured cost.
    let mut group = c.benchmark_group("beast_r1_enable_disable");
    group.sample_size(20);
    let s = beast_system(ExecutionMode::Inline);
    s.define_event("wide", "poke ^ (poke ; poke)").unwrap();
    let counter = counting_rules(&s, "wide", 1, 10);
    let id = s.rules().lookup("count_wide_10_0").unwrap();
    group.bench_function("disable_enable_cycle", |b| {
        b.iter(|| {
            s.rules().disable(id).unwrap();
            s.rules().enable(id).unwrap();
        })
    });
    group.finish();
    let _ = counter;
}

criterion_group!(benches, bench_many_rules, bench_coupling_modes, bench_enable_disable);
criterion_main!(benches);
