//! BEAST-E2: composite event detection cost per Snoop operator and
//! operator-chain depth.
//!
//! Drives left-deep chains `((e0 op e1) op e2) …` of depth 1–8 and measures
//! the cost of pushing a full round of constituent occurrences through the
//! event graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_bench::workload::{chain_detector, detector_with_leaves, fire_leaf};
use sentinel_core::snoop::{parse_event_expr, ParamContext};

fn bench_operator_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("beast_e2_composite_chains");
    group.sample_size(20);
    for op in ["^", "|", ";"] {
        for &depth in &[1usize, 4, 8] {
            let d = chain_detector(op, depth, ParamContext::Chronicle);
            let name = match op {
                "^" => "AND",
                "|" => "OR",
                _ => "SEQ",
            };
            let mut txn = 0u64;
            group.bench_with_input(BenchmarkId::new(name, depth), &depth, |b, &depth| {
                b.iter(|| {
                    txn += 1;
                    let mut detected = 0;
                    for i in 0..=depth {
                        detected += fire_leaf(&d, i, txn);
                    }
                    detected
                })
            });
        }
    }
    group.finish();
}

fn bench_window_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("beast_e2_window_operators");
    group.sample_size(20);
    // A(s, m, t), A*(s, m, t), NOT(m)[s, t]: one window round per iteration,
    // with `mids` middle occurrences.
    for (label, expr) in [
        ("A", "A(e0, e1, e2)"),
        ("A_star", "A*(e0, e1, e2)"),
        ("NOT", "NOT(e1)[e0, e2]"),
        ("ANY2of3", "ANY(2, e0, e1, e2)"),
    ] {
        for &mids in &[1usize, 16, 64] {
            let d = detector_with_leaves(3);
            let id = d.define_named("w", &parse_event_expr(expr).unwrap()).unwrap();
            d.subscribe(id, ParamContext::Chronicle, 1).unwrap();
            let mut txn = 0u64;
            group.bench_with_input(BenchmarkId::new(label, mids), &mids, |b, &mids| {
                b.iter(|| {
                    txn += 1;
                    let mut detected = fire_leaf(&d, 0, txn); // open
                    for _ in 0..mids {
                        detected += fire_leaf(&d, 1, txn); // mid
                    }
                    detected += fire_leaf(&d, 2, txn); // close
                    detected
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_operator_chains, bench_window_operators);
criterion_main!(benches);
