//! BEAST-E3: parameter-context cost comparison.
//!
//! The same `e0 ^ e1` expression detected in each of the four contexts, at
//! different initiator:terminator ratios (buffered backlog sizes). The
//! paper's storage argument — recent is cheapest, continuous/cumulative
//! have "significant storage requirements" — shows up as throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_bench::workload::{detector_with_leaves, fire_leaf};
use sentinel_core::snoop::{parse_event_expr, ParamContext};

fn bench_contexts(c: &mut Criterion) {
    let mut group = c.benchmark_group("beast_e3_contexts");
    group.sample_size(20);
    for ctx in ParamContext::ALL {
        for &backlog in &[1usize, 32, 256] {
            let d = detector_with_leaves(2);
            let id = d.define_named("x", &parse_event_expr("e0 ^ e1").unwrap()).unwrap();
            d.subscribe(id, ctx, 1).unwrap();
            let mut txn = 0u64;
            group.bench_with_input(
                BenchmarkId::new(ctx.keyword(), backlog),
                &backlog,
                |b, &backlog| {
                    b.iter(|| {
                        txn += 1;
                        let mut detected = 0;
                        // `backlog` initiators, then one terminator.
                        for _ in 0..backlog {
                            detected += fire_leaf(&d, 0, txn);
                        }
                        detected += fire_leaf(&d, 1, txn);
                        // Drain leftovers so state does not grow across
                        // iterations (chronicle keeps unconsumed initiators).
                        d.flush_txn(txn);
                        detected
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_contexts);
criterion_main!(benches);
