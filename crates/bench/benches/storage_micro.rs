//! Substrate microbenchmarks for the Exodus-analogue storage engine:
//! transactional record operations, WAL append/force, restart recovery
//! scaling, and lock-manager throughput. These back the DESIGN.md claim
//! that the substitution preserves the relevant behaviour: Sentinel's
//! event/rule costs (BEAST-E/R) sit on top of these baseline costs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_core::storage::disk::{DiskManager, MemDisk};
use sentinel_core::storage::lock::{LockManager, LockMode};
use sentinel_core::storage::wal::{LogRecord, LogStore, MemLogStore, Wal};
use sentinel_core::storage::{PageId, Rid, StorageEngine, TxnId};

fn bench_engine_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_engine_ops");
    group.sample_size(20);

    let eng = StorageEngine::in_memory();
    let t = eng.begin().unwrap();
    let payload = vec![7u8; 128];
    group.bench_function("insert_128B", |b| b.iter(|| eng.insert(t, &payload).unwrap()));

    let rid = eng.insert(t, &payload).unwrap();
    group.bench_function("read_128B", |b| b.iter(|| eng.read(t, rid).unwrap()));
    group.bench_function("update_128B", |b| b.iter(|| eng.update(t, rid, &payload).unwrap()));
    eng.commit(t).unwrap();

    group.bench_function("begin_commit_empty_txn", |b| {
        b.iter(|| {
            let t = eng.begin().unwrap();
            eng.commit(t).unwrap();
        })
    });

    group.bench_function("txn_with_10_inserts", |b| {
        b.iter(|| {
            let t = eng.begin().unwrap();
            for _ in 0..10 {
                eng.insert(t, &payload).unwrap();
            }
            eng.commit(t).unwrap();
        })
    });
    group.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_wal");
    group.sample_size(20);
    for &size in &[16usize, 256, 4000] {
        let wal = Wal::new(Arc::new(MemLogStore::new()));
        let rec = LogRecord::Insert {
            txn: TxnId(1),
            rid: Rid::new(PageId(1), 1),
            data: bytes::Bytes::from(vec![1u8; size]),
        };
        group.bench_with_input(BenchmarkId::new("append", size), &size, |b, _| {
            b.iter(|| wal.append(&rec).unwrap())
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_recovery");
    group.sample_size(10);
    for &committed in &[100usize, 1000, 5000] {
        // Build a log with `committed` committed inserts plus one loser.
        let disk = Arc::new(MemDisk::new());
        let log = Arc::new(MemLogStore::new());
        {
            let eng = StorageEngine::open(
                disk.clone() as Arc<dyn DiskManager>,
                log.clone() as Arc<dyn LogStore>,
            )
            .unwrap();
            let t = eng.begin().unwrap();
            for i in 0..committed {
                eng.insert(t, format!("record-{i}").as_bytes()).unwrap();
            }
            eng.commit(t).unwrap();
            let loser = eng.begin().unwrap();
            eng.insert(loser, b"uncommitted").unwrap();
            // crash
        }
        let log_bytes = log.read_all().unwrap();
        group.bench_with_input(BenchmarkId::new("restart", committed), &committed, |b, _| {
            b.iter(|| {
                // Fresh disk + the captured log: full redo from scratch.
                let disk = Arc::new(MemDisk::new());
                let log = Arc::new(MemLogStore::new());
                log.append(&log_bytes).unwrap();
                StorageEngine::open(disk as Arc<dyn DiskManager>, log as Arc<dyn LogStore>).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_lock_manager(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_locks");
    group.sample_size(20);
    let lm = LockManager::new();
    let mut txn = 0u64;
    group.bench_function("xlock_release_100", |b| {
        b.iter(|| {
            txn += 1;
            for r in 0..100u64 {
                lm.lock(TxnId(txn), r, LockMode::Exclusive).unwrap();
            }
            lm.release_all(TxnId(txn));
        })
    });
    group.bench_function("shared_reacquire", |b| {
        // Many txns sharing one hot resource.
        b.iter(|| {
            txn += 1;
            lm.lock(TxnId(txn), 0, LockMode::Shared).unwrap();
            lm.release_all(TxnId(txn));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_ops, bench_wal, bench_recovery, bench_lock_manager);
criterion_main!(benches);
