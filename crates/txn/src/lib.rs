//! # sentinel-txn
//!
//! Nested transaction manager for rule execution — the substrate of the
//! paper's §2.3/§3.2.3 rule execution model (designed in R. Badani's
//! thesis, reference [2] of the paper):
//!
//! > "For rule execution, a nested transaction manager is implemented with
//! > its own lock manager. This is in addition to the concurrency control
//! > and recovery provided by the Exodus for top-level transactions. Each
//! > rule (i.e., condition and action portions of a rule) is packaged into
//! > a subtransaction. … Light weight processes are used both for
//! > prioritized and concurrent rule execution."
//!
//! Three pieces:
//!
//! * [`nested`] — Moss-style subtransaction trees: each top-level
//!   transaction anchors a tree; subtransactions commit *into their parent*
//!   or abort (releasing their effects), with lock inheritance on commit.
//! * [`locks`] — the nested lock manager: a lock conflicts only with locks
//!   held by non-ancestors; on subtransaction commit its locks are
//!   inherited by the parent.
//! * [`pool`] — the priority thread pool ("a free thread id from a pool of
//!   free threads", Figure 3): fixed workers, highest-priority-first
//!   dispatch, and a quiesce barrier so the triggering transaction can
//!   suspend until all rule threads finish.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod locks;
pub mod nested;
pub mod pool;

pub use locks::{LockMode, NestedLockManager};
pub use nested::{NestedError, NestedTxnManager, SubTxnId, SubTxnState};
pub use pool::PriorityPool;
