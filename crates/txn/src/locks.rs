//! The nested lock manager ("a nested transaction manager is implemented
//! with its own lock manager", §2.3/Figure 1 "Lock table + Nested
//! transactions using threads").
//!
//! Moss's rules: a subtransaction may acquire
//!
//! * a **shared** lock iff every *exclusive* holder is one of its ancestors
//!   (or itself);
//! * an **exclusive** lock iff every holder of any mode is one of its
//!   ancestors (or itself).
//!
//! On subtransaction commit the parent *inherits* the locks
//! ([`NestedLockManager::inherit`]); on abort they are released.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::nested::{NestedError, SubTxnId};

/// Lock modes for rule subtransactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (condition evaluation reads).
    Shared,
    /// Exclusive (action writes).
    Exclusive,
}

#[derive(Debug, Default)]
struct Res {
    holders: HashMap<SubTxnId, LockMode>,
}

#[derive(Default)]
struct State {
    resources: HashMap<u64, Res>,
    held: HashMap<SubTxnId, HashSet<u64>>,
}

/// Nested lock manager shared by all rule threads of an application.
pub struct NestedLockManager {
    state: Mutex<State>,
    wakeup: Condvar,
    timeout: Duration,
}

impl Default for NestedLockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl NestedLockManager {
    /// Default 2 s wait bound (rule subtransaction deadlocks resolve by
    /// victimizing the timed-out requester).
    pub fn new() -> Self {
        Self::with_timeout(Duration::from_secs(2))
    }

    /// Explicit wait bound.
    pub fn with_timeout(timeout: Duration) -> Self {
        NestedLockManager { state: Mutex::new(State::default()), wakeup: Condvar::new(), timeout }
    }

    fn grantable(
        res: &Res,
        holder: SubTxnId,
        ancestors: &HashSet<SubTxnId>,
        mode: LockMode,
    ) -> bool {
        res.holders.iter().all(|(h, m)| {
            if *h == holder || ancestors.contains(h) {
                return true;
            }
            match mode {
                LockMode::Shared => *m == LockMode::Shared,
                LockMode::Exclusive => false,
            }
        })
    }

    /// Acquires `mode` on `resource` for `holder`, whose ancestor set
    /// (including itself) is `ancestors`. Blocks up to the timeout.
    pub fn lock(
        &self,
        holder: SubTxnId,
        ancestors: &HashSet<SubTxnId>,
        resource: u64,
        mode: LockMode,
    ) -> Result<(), NestedError> {
        let mut st = self.state.lock();
        let deadline = Instant::now() + self.timeout;
        loop {
            let res = st.resources.entry(resource).or_default();
            if Self::grantable(res, holder, ancestors, mode) {
                // Upgrade-or-insert, keeping the stronger mode.
                let entry = res.holders.entry(holder).or_insert(mode);
                if mode == LockMode::Exclusive {
                    *entry = LockMode::Exclusive;
                }
                st.held.entry(holder).or_default().insert(resource);
                return Ok(());
            }
            if self.wakeup.wait_until(&mut st, deadline).timed_out() {
                return Err(NestedError::LockTimeout(holder));
            }
        }
    }

    /// Transfers all of `child`'s locks to `parent` (commit inheritance).
    pub fn inherit(&self, child: SubTxnId, parent: SubTxnId) {
        let mut st = self.state.lock();
        if let Some(resources) = st.held.remove(&child) {
            for r in &resources {
                if let Some(res) = st.resources.get_mut(r) {
                    if let Some(mode) = res.holders.remove(&child) {
                        let entry = res.holders.entry(parent).or_insert(mode);
                        if mode == LockMode::Exclusive {
                            *entry = LockMode::Exclusive;
                        }
                    }
                }
            }
            st.held.entry(parent).or_default().extend(resources);
        }
        self.wakeup.notify_all();
    }

    /// Releases everything `holder` has (abort, or commit of a root).
    pub fn release_all(&self, holder: SubTxnId) {
        let mut st = self.state.lock();
        if let Some(resources) = st.held.remove(&holder) {
            for r in resources {
                if let Some(res) = st.resources.get_mut(&r) {
                    res.holders.remove(&holder);
                    if res.holders.is_empty() {
                        st.resources.remove(&r);
                    }
                }
            }
        }
        self.wakeup.notify_all();
    }

    /// Number of resources currently locked (diagnostics).
    pub fn active_resources(&self) -> usize {
        self.state.lock().resources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn anc(ids: &[u64]) -> HashSet<SubTxnId> {
        ids.iter().map(|&i| SubTxnId(i)).collect()
    }

    #[test]
    fn sibling_exclusive_conflicts() {
        let lm = NestedLockManager::with_timeout(Duration::from_millis(40));
        // Tree: root 1, children 2 and 3.
        lm.lock(SubTxnId(2), &anc(&[2, 1]), 9, LockMode::Exclusive).unwrap();
        let err = lm.lock(SubTxnId(3), &anc(&[3, 1]), 9, LockMode::Exclusive);
        assert_eq!(err, Err(NestedError::LockTimeout(SubTxnId(3))));
    }

    #[test]
    fn child_may_take_parents_lock() {
        let lm = NestedLockManager::new();
        lm.lock(SubTxnId(1), &anc(&[1]), 9, LockMode::Exclusive).unwrap();
        // Child 2 of 1: parent's lock doesn't conflict.
        lm.lock(SubTxnId(2), &anc(&[2, 1]), 9, LockMode::Exclusive).unwrap();
    }

    #[test]
    fn shared_locks_coexist_between_siblings() {
        let lm = NestedLockManager::new();
        lm.lock(SubTxnId(2), &anc(&[2, 1]), 9, LockMode::Shared).unwrap();
        lm.lock(SubTxnId(3), &anc(&[3, 1]), 9, LockMode::Shared).unwrap();
        assert_eq!(lm.active_resources(), 1);
    }

    #[test]
    fn inheritance_moves_locks_to_parent() {
        let lm = NestedLockManager::with_timeout(Duration::from_millis(40));
        lm.lock(SubTxnId(2), &anc(&[2, 1]), 9, LockMode::Exclusive).unwrap();
        lm.inherit(SubTxnId(2), SubTxnId(1));
        // A stranger still conflicts (holder is now 1).
        assert!(lm.lock(SubTxnId(5), &anc(&[5, 4]), 9, LockMode::Shared).is_err());
        // A child of 1 does not.
        lm.lock(SubTxnId(3), &anc(&[3, 1]), 9, LockMode::Shared).unwrap();
    }

    #[test]
    fn release_wakes_waiters() {
        let lm = Arc::new(NestedLockManager::new());
        lm.lock(SubTxnId(2), &anc(&[2, 1]), 9, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            lm2.lock(SubTxnId(3), &anc(&[3, 1]), 9, LockMode::Exclusive)
        });
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(SubTxnId(2));
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn upgrade_keeps_stronger_mode() {
        let lm = NestedLockManager::with_timeout(Duration::from_millis(40));
        let a = anc(&[2, 1]);
        lm.lock(SubTxnId(2), &a, 9, LockMode::Shared).unwrap();
        lm.lock(SubTxnId(2), &a, 9, LockMode::Exclusive).unwrap();
        // Sibling shared must now conflict.
        assert!(lm.lock(SubTxnId(3), &anc(&[3, 1]), 9, LockMode::Shared).is_err());
    }
}
