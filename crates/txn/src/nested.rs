//! Moss-style nested transaction trees.
//!
//! Every top-level (Exodus) transaction can anchor a tree of
//! subtransactions; Sentinel packages each triggered rule's
//! condition+action into one subtransaction (Figure 3), and nested rule
//! triggering nests subtransactions to arbitrary depth (§2.2 "rules can be
//! nested to arbitrary levels").
//!
//! State rules:
//! * a subtransaction may only be begun under an *active* parent;
//! * commit of a subtransaction makes its effects (and locks) the parent's;
//! * abort of a subtransaction aborts its still-active descendants first;
//! * aborting/committing a node with an active child directly is an error
//!   for commit (children must resolve first) and a cascade for abort.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::locks::NestedLockManager;

/// Identifier of a node in a nested transaction tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubTxnId(pub u64);

impl fmt::Display for SubTxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Lifecycle state of a subtransaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubTxnState {
    /// Running.
    Active,
    /// Committed into its parent.
    Committed,
    /// Rolled back.
    Aborted,
}

/// Errors from nested transaction operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NestedError {
    /// Operation on an unknown id.
    Unknown(SubTxnId),
    /// Parent is not active.
    ParentNotActive(SubTxnId),
    /// Commit/abort of a non-active subtransaction.
    NotActive(SubTxnId),
    /// Commit while a child is still active.
    ActiveChild(SubTxnId),
    /// Lock wait timed out (possible deadlock among rule subtransactions).
    LockTimeout(SubTxnId),
}

impl fmt::Display for NestedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NestedError::Unknown(s) => write!(f, "unknown subtransaction {s}"),
            NestedError::ParentNotActive(s) => write!(f, "parent {s} not active"),
            NestedError::NotActive(s) => write!(f, "subtransaction {s} not active"),
            NestedError::ActiveChild(s) => write!(f, "subtransaction {s} has an active child"),
            NestedError::LockTimeout(s) => write!(f, "lock wait timeout in {s}"),
        }
    }
}

impl std::error::Error for NestedError {}

#[derive(Debug)]
struct SubInfo {
    parent: Option<SubTxnId>,
    /// The top-level (storage) transaction this tree belongs to.
    top: u64,
    state: SubTxnState,
    children: Vec<SubTxnId>,
    depth: u32,
}

/// The nested transaction manager (one per application, shared by all rule
/// threads).
pub struct NestedTxnManager {
    next: AtomicU64,
    nodes: Mutex<HashMap<SubTxnId, SubInfo>>,
    locks: Arc<NestedLockManager>,
}

impl Default for NestedTxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl NestedTxnManager {
    /// A manager with a default-configured nested lock manager.
    pub fn new() -> Self {
        NestedTxnManager {
            next: AtomicU64::new(1),
            nodes: Mutex::new(HashMap::new()),
            locks: Arc::new(NestedLockManager::new()),
        }
    }

    /// The nested lock manager.
    pub fn locks(&self) -> &Arc<NestedLockManager> {
        &self.locks
    }

    /// Starts the root subtransaction for top-level transaction `top`.
    pub fn begin_top(&self, top: u64) -> SubTxnId {
        let id = SubTxnId(self.next.fetch_add(1, Ordering::Relaxed));
        self.nodes.lock().insert(
            id,
            SubInfo {
                parent: None,
                top,
                state: SubTxnState::Active,
                children: Vec::new(),
                depth: 0,
            },
        );
        id
    }

    /// Begins a subtransaction under `parent`.
    pub fn begin_sub(&self, parent: SubTxnId) -> Result<SubTxnId, NestedError> {
        let mut nodes = self.nodes.lock();
        let (top, depth) = {
            let p = nodes.get(&parent).ok_or(NestedError::Unknown(parent))?;
            if p.state != SubTxnState::Active {
                return Err(NestedError::ParentNotActive(parent));
            }
            (p.top, p.depth + 1)
        };
        let id = SubTxnId(self.next.fetch_add(1, Ordering::Relaxed));
        nodes.insert(
            id,
            SubInfo {
                parent: Some(parent),
                top,
                state: SubTxnState::Active,
                children: Vec::new(),
                depth,
            },
        );
        nodes.get_mut(&parent).expect("checked above").children.push(id);
        Ok(id)
    }

    /// State of a subtransaction.
    pub fn state(&self, id: SubTxnId) -> Option<SubTxnState> {
        self.nodes.lock().get(&id).map(|n| n.state)
    }

    /// Parent of a subtransaction (None for roots).
    pub fn parent(&self, id: SubTxnId) -> Option<SubTxnId> {
        self.nodes.lock().get(&id).and_then(|n| n.parent)
    }

    /// Nesting depth (0 for roots) — the paper derives nested-rule thread
    /// priorities from this level.
    pub fn depth(&self, id: SubTxnId) -> Option<u32> {
        self.nodes.lock().get(&id).map(|n| n.depth)
    }

    /// Top-level (storage) transaction of this tree.
    pub fn top_of(&self, id: SubTxnId) -> Option<u64> {
        self.nodes.lock().get(&id).map(|n| n.top)
    }

    /// `id` and all its ancestors, nearest first.
    pub fn ancestry(&self, id: SubTxnId) -> Vec<SubTxnId> {
        let nodes = self.nodes.lock();
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            out.push(c);
            cur = nodes.get(&c).and_then(|n| n.parent);
        }
        out
    }

    /// Commits `id` into its parent: effects become the parent's, locks are
    /// inherited by the parent (anti-inheritance for roots: released).
    pub fn commit_sub(&self, id: SubTxnId) -> Result<(), NestedError> {
        let parent = {
            let mut nodes = self.nodes.lock();
            let info = nodes.get(&id).ok_or(NestedError::Unknown(id))?;
            if info.state != SubTxnState::Active {
                return Err(NestedError::NotActive(id));
            }
            if info
                .children
                .iter()
                .any(|c| nodes.get(c).is_some_and(|n| n.state == SubTxnState::Active))
            {
                return Err(NestedError::ActiveChild(id));
            }
            let parent = info.parent;
            nodes.get_mut(&id).expect("present").state = SubTxnState::Committed;
            parent
        };
        match parent {
            Some(p) => self.locks.inherit(id, p),
            None => self.locks.release_all(id),
        }
        Ok(())
    }

    /// Aborts `id`, cascading to its active descendants first.
    pub fn abort_sub(&self, id: SubTxnId) -> Result<(), NestedError> {
        // Collect the subtree bottom-up.
        let to_abort = {
            let mut nodes = self.nodes.lock();
            let info = nodes.get(&id).ok_or(NestedError::Unknown(id))?;
            if info.state != SubTxnState::Active {
                return Err(NestedError::NotActive(id));
            }
            let mut order = Vec::new();
            let mut stack = vec![id];
            while let Some(n) = stack.pop() {
                if nodes.get(&n).is_some_and(|i| i.state == SubTxnState::Active) {
                    order.push(n);
                    stack.extend(nodes.get(&n).map(|i| i.children.clone()).unwrap_or_default());
                }
            }
            for n in &order {
                nodes.get_mut(n).expect("collected above").state = SubTxnState::Aborted;
            }
            order
        };
        // Deepest first so children release before parents.
        for n in to_abort.into_iter().rev() {
            self.locks.release_all(n);
        }
        Ok(())
    }

    /// Removes the bookkeeping of one *resolved* (committed or aborted)
    /// subtransaction and its descendants, unlinking it from its
    /// parent's child list. Used for rule subtransactions under the
    /// long-lived no-transaction root: that root never sees a
    /// transaction end, so without eager reaping it accretes one dead
    /// node per rule firing for the life of the process. No-op while
    /// `id` is still active.
    pub fn reap_sub(&self, id: SubTxnId) {
        let mut nodes = self.nodes.lock();
        let Some(info) = nodes.get(&id) else { return };
        if info.state == SubTxnState::Active {
            return;
        }
        if let Some(p) = info.parent {
            if let Some(pi) = nodes.get_mut(&p) {
                pi.children.retain(|c| *c != id);
            }
        }
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if let Some(info) = nodes.remove(&n) {
                stack.extend(info.children);
            }
        }
    }

    /// Removes all bookkeeping for the tree rooted at `root` (after the
    /// top-level transaction finishes).
    pub fn forget_tree(&self, root: SubTxnId) {
        let mut nodes = self.nodes.lock();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if let Some(info) = nodes.remove(&n) {
                stack.extend(info.children);
            }
        }
    }

    /// Number of live (tracked) subtransactions — diagnostics.
    pub fn live_count(&self) -> usize {
        self.nodes.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::LockMode;

    #[test]
    fn tree_lifecycle() {
        let m = NestedTxnManager::new();
        let root = m.begin_top(100);
        let c1 = m.begin_sub(root).unwrap();
        let c2 = m.begin_sub(root).unwrap();
        let g = m.begin_sub(c1).unwrap();
        assert_eq!(m.depth(root), Some(0));
        assert_eq!(m.depth(g), Some(2));
        assert_eq!(m.top_of(g), Some(100));
        assert_eq!(m.ancestry(g), vec![g, c1, root]);

        m.commit_sub(g).unwrap();
        m.commit_sub(c1).unwrap();
        m.abort_sub(c2).unwrap();
        m.commit_sub(root).unwrap();
        assert_eq!(m.state(root), Some(SubTxnState::Committed));
        m.forget_tree(root);
        assert_eq!(m.live_count(), 0);
    }

    #[test]
    fn commit_with_active_child_is_rejected() {
        let m = NestedTxnManager::new();
        let root = m.begin_top(1);
        let c = m.begin_sub(root).unwrap();
        assert_eq!(m.commit_sub(root), Err(NestedError::ActiveChild(root)));
        m.commit_sub(c).unwrap();
        m.commit_sub(root).unwrap();
    }

    #[test]
    fn begin_under_finished_parent_is_rejected() {
        let m = NestedTxnManager::new();
        let root = m.begin_top(1);
        let c = m.begin_sub(root).unwrap();
        m.abort_sub(c).unwrap();
        assert!(matches!(m.begin_sub(c), Err(NestedError::ParentNotActive(_))));
    }

    #[test]
    fn abort_cascades_to_descendants() {
        let m = NestedTxnManager::new();
        let root = m.begin_top(1);
        let c = m.begin_sub(root).unwrap();
        let g = m.begin_sub(c).unwrap();
        m.abort_sub(c).unwrap();
        assert_eq!(m.state(g), Some(SubTxnState::Aborted));
        assert_eq!(m.state(root), Some(SubTxnState::Active));
    }

    #[test]
    fn lock_inheritance_on_commit() {
        let m = NestedTxnManager::new();
        let root = m.begin_top(1);
        let c = m.begin_sub(root).unwrap();
        let anc: std::collections::HashSet<_> = m.ancestry(c).into_iter().collect();
        m.locks().lock(c, &anc, 55, LockMode::Exclusive).unwrap();
        m.commit_sub(c).unwrap();
        // The parent now holds the lock: a sibling can't take it…
        let sib = m.begin_sub(root).unwrap();
        let anc_sib: std::collections::HashSet<_> = m.ancestry(sib).into_iter().collect();
        // …but CAN take it because the holder (root) is its ancestor.
        m.locks().lock(sib, &anc_sib, 55, LockMode::Exclusive).unwrap();
    }

    #[test]
    fn double_commit_rejected() {
        let m = NestedTxnManager::new();
        let root = m.begin_top(1);
        m.commit_sub(root).unwrap();
        assert_eq!(m.commit_sub(root), Err(NestedError::NotActive(root)));
        assert_eq!(m.abort_sub(root), Err(NestedError::NotActive(root)));
    }
}
