//! Priority thread pool for rule execution.
//!
//! Mirrors Figure 3's `Initiate_thread`: a pool of free worker threads, a
//! priority queue of pending rule bodies, and a quiesce barrier so the
//! triggering application can suspend "until all the rules are executed"
//! and then resume. Jobs may submit further jobs (nested rule triggering);
//! the barrier accounts for those too.
//!
//! Higher priority values run first; ties run in submission order (stable).

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PrioritizedJob {
    priority: i64,
    seq: u64,
    job: Job,
}

impl PartialEq for PrioritizedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for PrioritizedJob {}
impl PartialOrd for PrioritizedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioritizedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier submission.
        self.priority.cmp(&other.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Shared {
    queue: Mutex<BinaryHeap<PrioritizedJob>>,
    /// Signals workers that work arrived or shutdown started.
    work_cv: Condvar,
    /// Signals waiters that the pool may have gone idle.
    idle_cv: Condvar,
    /// Queued + currently-running jobs.
    pending: AtomicU64,
    shutdown: AtomicBool,
    seq: AtomicU64,
}

/// Fixed-size priority thread pool.
pub struct PriorityPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl PriorityPool {
    /// Spawns `workers` worker threads (≥ 1). One worker gives strictly
    /// serial, priority-ordered execution; more workers add concurrency
    /// within and across priority levels.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(BinaryHeap::new()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            pending: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sentinel-rule-worker-{i}"))
                    .spawn(move || Self::worker(sh))
                    .expect("spawn rule worker")
            })
            .collect();
        PriorityPool { shared, workers: handles }
    }

    fn worker(sh: Arc<Shared>) {
        loop {
            let job = {
                let mut q = sh.queue.lock();
                loop {
                    if let Some(j) = q.pop() {
                        break j;
                    }
                    if sh.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    sh.work_cv.wait(&mut q);
                }
            };
            (job.job)();
            // Last decrement wakes quiesce waiters.
            if sh.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _q = sh.queue.lock();
                sh.idle_cv.notify_all();
            }
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job with `priority` (higher runs first).
    pub fn submit(&self, priority: i64, job: impl FnOnce() + Send + 'static) {
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        {
            let mut q = self.shared.queue.lock();
            q.push(PrioritizedJob { priority, seq, job: Box::new(job) });
        }
        self.shared.work_cv.notify_one();
    }

    /// Blocks until every submitted job (including jobs submitted *by*
    /// jobs) has finished — the application-suspension point of Figure 3.
    pub fn quiesce(&self) {
        let mut q = self.shared.queue.lock();
        while self.shared.pending.load(Ordering::SeqCst) != 0 {
            self.shared.idle_cv.wait(&mut q);
        }
    }

    /// Jobs queued or running right now.
    pub fn pending(&self) -> u64 {
        self.shared.pending.load(Ordering::SeqCst)
    }
}

impl Drop for PriorityPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _q = self.shared.queue.lock();
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_jobs() {
        let pool = PriorityPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            pool.submit(0, move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.quiesce();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn single_worker_respects_priority_order() {
        let pool = PriorityPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        // Block the worker so all submissions queue up first.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let g = gate.clone();
            pool.submit(100, move || {
                let (m, cv) = &*g;
                let mut open = m.lock();
                while !*open {
                    cv.wait(&mut open);
                }
            });
        }
        for (prio, tag) in [(1, "low"), (10, "high"), (5, "mid")] {
            let o = order.clone();
            pool.submit(prio, move || o.lock().push(tag));
        }
        {
            let (m, cv) = &*gate;
            *m.lock() = true;
            cv.notify_all();
        }
        pool.quiesce();
        assert_eq!(*order.lock(), vec!["high", "mid", "low"]);
    }

    #[test]
    fn equal_priority_is_fifo_on_single_worker() {
        let pool = PriorityPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let g = gate.clone();
            pool.submit(1, move || {
                let (m, cv) = &*g;
                let mut open = m.lock();
                while !*open {
                    cv.wait(&mut open);
                }
            });
        }
        for i in 0..5 {
            let o = order.clone();
            pool.submit(0, move || o.lock().push(i));
        }
        {
            let (m, cv) = &*gate;
            *m.lock() = true;
            cv.notify_all();
        }
        pool.quiesce();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn quiesce_waits_for_nested_submissions() {
        let pool = Arc::new(PriorityPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let p2 = pool.clone();
        let c2 = counter.clone();
        pool.submit(0, move || {
            // A rule triggering another rule.
            let c3 = c2.clone();
            p2.submit(0, move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                c3.fetch_add(1, Ordering::SeqCst);
            });
            c2.fetch_add(1, Ordering::SeqCst);
        });
        pool.quiesce();
        assert_eq!(counter.load(Ordering::SeqCst), 2, "nested job included in quiesce");
    }

    #[test]
    fn quiesce_on_idle_pool_returns_immediately() {
        let pool = PriorityPool::new(2);
        pool.quiesce();
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = PriorityPool::new(3);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = c.clone();
            pool.submit(0, move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.quiesce();
        drop(pool);
        assert_eq!(c.load(Ordering::SeqCst), 10);
    }
}
