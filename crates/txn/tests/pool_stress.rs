use sentinel_txn::PriorityPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn burst_quiesce_stress() {
    let pool = PriorityPool::new(4);
    for round in 0..200 {
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let c = counter.clone();
            pool.submit(0, move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.quiesce();
        assert_eq!(counter.load(Ordering::Relaxed), 1000, "round {round}");
    }
}
