//! Cross-node global event detection.
//!
//! The paper's global detector (Figure 2) receives *forwarded* local
//! events and detects inter-application composites over leaves named
//! `app<N>.<event>`. In-process, `sentinel-core`'s
//! `Sentinel::forward_to_global` ships occurrences over a channel; this
//! module is the multi-node version of the same step-5 arrow: the
//! forwarding rule's action sends the flattened occurrence over the wire
//! to a designated **global-detector node** — an ordinary Sentinel
//! server on which the inter-node composite events and rules are
//! defined (each leaf declared as an explicit event, e.g.
//! `define_event("appwide", Some("app1.sale ; app2.audit"))`).
//!
//! Parameter-context fidelity: the forwarded signal carries the *local*
//! occurrence's flattened constituent parameters, so a `SEQ`/`AND` on
//! the global node computes Recent/Chronicle/Continuous/Cumulative
//! bindings from exactly the same leaf parameters a single-node detector
//! would see. Provenance: when tracing is on, the action forwards the
//! ambient trace id; the global node adopts it
//! (`TraceStore::adopt_remote`), so one Chrome trace export stitches
//! spans from both nodes.

use std::sync::Arc;

use sentinel_core::global::global_leaf_name;
use sentinel_core::{Sentinel, SentinelError};
use sentinel_detector::Value;
use sentinel_net::SentinelClient;
use sentinel_obs::span;
use sentinel_rules::manager::RuleOptions;

/// Forwards every occurrence of local event `event` to the Sentinel
/// server behind `client` (the global-detector node), as an explicit
/// signal named [`global_leaf_name`]`(sentinel.app_id(), event)`.
///
/// Implemented, like everything active in Sentinel, as a rule
/// (`__forward_app<N>.<event>`, priority 1 so it runs before
/// priority-0 system rules). The action is fire-and-forget: a send
/// failure is dropped — the global node catching up is a liveness
/// concern, the local transaction must not abort over it.
pub fn forward_to_node(
    sentinel: &Arc<Sentinel>,
    event: &str,
    client: Arc<SentinelClient>,
) -> Result<(), SentinelError> {
    let ev = sentinel.event(event)?;
    let app = sentinel.app_id();
    let name = global_leaf_name(app, event);
    let rule_name = format!("__forward_{name}");
    sentinel.rules().define_rule(
        &rule_name,
        ev,
        Arc::new(|_| true),
        Arc::new(move |inv| {
            let mut params: Vec<(Arc<str>, Value)> = Vec::new();
            for prim in inv.occurrence.param_list() {
                if let Some(oid) = prim.source {
                    params.push((Arc::from("oid"), Value::Oid(oid)));
                }
                params.extend(prim.params.iter().cloned());
            }
            let _ = match span::current() {
                Some(ctx) => client.signal_sync_traced(&name, &params, None, ctx.trace.0),
                None => client.signal_sync(&name, &params, None),
            };
        }),
        RuleOptions::default().priority(1),
    )?;
    Ok(())
}
