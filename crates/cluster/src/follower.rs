//! The follower apply loop: bootstrap, tail, ack, checkpoint, and (on
//! primary loss) promote.
//!
//! The loop is pull-based: the follower asks for `ReplFrames{from}` at
//! its own pace, applies each entry via
//! [`Sentinel::apply_repl_entry`] (journal first for events/fences,
//! graph first for catalog ops — see `sentinel-core`'s `replica`
//! module), acks its watermark, and cuts a local checkpoint every
//! [`FollowerConfig::checkpoint_every`] applied entries — always at an
//! entry boundary, where local journal and graph agree.
//!
//! **Resume.** Bootstrap state (`replica-state.json` in the data dir)
//! records the primary's log sequence the snapshot covered (`base_seq`)
//! and how many local log entries the bootstrap itself produced
//! (`bootstrap_entries`, the shipped DDL prefix). After a follower
//! restart, local recovery re-seeds the local replication log
//! deterministically, so the resume watermark is
//! `base_seq + (local_tip - bootstrap_entries)` — no re-bootstrap, no
//! re-fetch of entries already applied.
//!
//! **Lease.** Every successful primary round-trip renews the lease.
//! Once `lease` elapses without contact (and at least one contact ever
//! succeeded, so a follower pointed at a dead address does not instantly
//! crown itself), the loop calls [`Sentinel::promote`] and exits.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sentinel_core::Sentinel;
use sentinel_detector::GraphSnapshot;
use sentinel_durable::{CatalogOp, ReplEntry};
use sentinel_net::{ClientError, SentinelClient};
use sentinel_obs::flight::FlightKind;
use sentinel_obs::repl::ReplicationStats;
use sentinel_obs::{flight, json};

/// Name of the bootstrap-state file in the replica's data directory.
pub const REPLICA_STATE_FILE: &str = "replica-state.json";

/// Tuning for a [`Follower`].
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// The primary's wire address (`host:port`).
    pub primary: String,
    /// This follower's name (shown in the primary's follower stats).
    pub name: String,
    /// Data directory (for `replica-state.json`; the Sentinel itself was
    /// opened over the same directory).
    pub data_dir: PathBuf,
    /// Promote after the primary has been unreachable this long;
    /// `None` disables auto-promotion (explicit `Promote` only).
    pub lease: Option<Duration>,
    /// Sleep between polls when fully caught up.
    pub poll: Duration,
    /// Maximum entries per `ReplFrames` request.
    pub batch: u64,
    /// Cut a local checkpoint every N applied entries (0 = never).
    pub checkpoint_every: u64,
}

impl FollowerConfig {
    /// Defaults for following `primary` with follower name `name`.
    pub fn new(primary: &str, name: &str, data_dir: impl Into<PathBuf>) -> FollowerConfig {
        FollowerConfig {
            primary: primary.to_string(),
            name: name.to_string(),
            data_dir: data_dir.into(),
            lease: Some(Duration::from_secs(3)),
            poll: Duration::from_millis(20),
            batch: 512,
            checkpoint_every: 256,
        }
    }
}

/// Bootstrap state persisted to [`REPLICA_STATE_FILE`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct ReplicaState {
    primary: String,
    base_seq: u64,
    bootstrap_entries: u64,
}

impl ReplicaState {
    fn to_json(&self) -> json::Value {
        json::Value::obj([
            ("primary", json::Value::str(&self.primary)),
            ("base_seq", json::Value::UInt(self.base_seq)),
            ("bootstrap_entries", json::Value::UInt(self.bootstrap_entries)),
        ])
    }

    fn from_json(v: &json::Value) -> Option<ReplicaState> {
        Some(ReplicaState {
            primary: v.get("primary")?.as_str()?.to_string(),
            base_seq: v.get("base_seq")?.as_u64()?,
            bootstrap_entries: v.get("bootstrap_entries")?.as_u64()?,
        })
    }
}

/// A running follower apply loop. Dropping it stops the loop (without
/// promoting).
pub struct Follower {
    stop: Arc<AtomicBool>,
    thread: Mutex<Option<JoinHandle<()>>>,
    sentinel: Arc<Sentinel>,
}

impl Follower {
    /// Starts tailing `cfg.primary` into `sentinel` (which must have
    /// been opened with [`Sentinel::open_replica`] over `cfg.data_dir`).
    pub fn start(sentinel: Arc<Sentinel>, cfg: FollowerConfig) -> Follower {
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = stop.clone();
        let loop_sentinel = sentinel.clone();
        let thread = std::thread::Builder::new()
            .name(format!("sentinel-follower-{}", cfg.name))
            .spawn(move || follower_loop(loop_sentinel, cfg, loop_stop))
            .expect("spawn follower thread");
        Follower { stop, thread: Mutex::new(Some(thread)), sentinel }
    }

    /// The replicated system.
    pub fn sentinel(&self) -> &Arc<Sentinel> {
        &self.sentinel
    }

    /// Stops the apply loop (no promotion) and joins its thread.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }

    /// Blocks until the loop exits on its own — on promotion (lease
    /// expiry or an external `Promote`) or after [`Follower::stop`].
    pub fn join(&self) {
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One follower lifetime: connect (with retries under the lease),
/// bootstrap or resume, then tail until stopped or promoted.
fn follower_loop(sentinel: Arc<Sentinel>, cfg: FollowerConfig, stop: Arc<AtomicBool>) {
    let state_path = cfg.data_dir.join(REPLICA_STATE_FILE);
    let mut state: Option<ReplicaState> = std::fs::read_to_string(&state_path)
        .ok()
        .and_then(|s| json::Value::parse(&s).ok())
        .and_then(|v| ReplicaState::from_json(&v));
    // `None` until the first successful round-trip: a follower that never
    // reached its primary has nothing to promote itself over.
    let mut last_contact: Option<Instant> = None;
    let mut applied: Option<u64> = None;
    let mut applied_entries: u64 = 0;
    let mut since_checkpoint: u64 = 0;

    'outer: while !stop.load(Ordering::SeqCst) && sentinel.is_replica() {
        let client = match SentinelClient::connect(&cfg.primary, &cfg.name) {
            Ok(c) => c,
            Err(_) => {
                if lease_expired(&cfg, last_contact) {
                    promote_on_lease(&sentinel, &cfg);
                    break;
                }
                std::thread::sleep(cfg.poll);
                continue;
            }
        };
        let tip = match client.repl_subscribe(&cfg.name) {
            Ok(reply) => reply.get("tip").and_then(json::Value::as_u64).unwrap_or(0),
            Err(e) => {
                if fatal(&e) {
                    break;
                }
                if lease_expired(&cfg, last_contact) {
                    promote_on_lease(&sentinel, &cfg);
                    break;
                }
                std::thread::sleep(cfg.poll);
                continue;
            }
        };
        last_contact = Some(Instant::now());

        // First contact ever: bootstrap from a snapshot. Afterwards the
        // watermark derives from the persisted state plus whatever the
        // local journal recovered.
        if state.is_none() {
            match bootstrap(&sentinel, &client) {
                Ok(mut s) => {
                    s.primary = cfg.primary.clone();
                    let _ = std::fs::write(&state_path, s.to_json().to_string());
                    applied = Some(s.base_seq);
                    state = Some(s);
                }
                Err(msg) => {
                    // A failed bootstrap is not survivable from this
                    // loop: the graph may hold half the snapshot.
                    flight::global().record(FlightKind::CatchUp, Arc::from(msg.as_str()), 0, 0);
                    break;
                }
            }
        }
        let st = state.as_ref().expect("bootstrapped");
        let applied = applied.get_or_insert_with(|| {
            let local_tip = sentinel
                .durable_engine()
                .map(|e| e.replication().tip())
                .unwrap_or(st.bootstrap_entries);
            st.base_seq + local_tip.saturating_sub(st.bootstrap_entries)
        });
        let mut tip = tip.max(*applied);

        // Tail until transport failure or stop/promotion.
        while !stop.load(Ordering::SeqCst) && sentinel.is_replica() {
            let frames = match client.repl_frames(*applied, cfg.batch) {
                Ok(f) => f,
                Err(e) => {
                    if fatal(&e) {
                        break 'outer;
                    }
                    if lease_expired(&cfg, last_contact) {
                        promote_on_lease(&sentinel, &cfg);
                        break 'outer;
                    }
                    break; // reconnect
                }
            };
            last_contact = Some(Instant::now());
            tip = frames.get("tip").and_then(json::Value::as_u64).unwrap_or(tip);
            let entries = match frames.get("entries").and_then(json::Value::as_arr) {
                Some(a) => a,
                None => break,
            };
            let n = entries.len() as u64;
            for e in entries {
                let Some(entry) = ReplEntry::from_json(e) else {
                    flight::global().record_static(FlightKind::CatchUp, "bad-entry", *applied, 0);
                    break 'outer;
                };
                if sentinel.apply_repl_entry(&entry).is_err() {
                    flight::global().record_static(FlightKind::CatchUp, "apply-error", *applied, 0);
                    break 'outer;
                }
                *applied += 1;
                applied_entries += 1;
                since_checkpoint += 1;
                if cfg.checkpoint_every > 0 && since_checkpoint >= cfg.checkpoint_every {
                    let _ = sentinel.checkpoint_now();
                    since_checkpoint = 0;
                }
            }
            let _ = client.repl_ack(&cfg.name, *applied);
            publish_status(
                &sentinel,
                &cfg,
                tip,
                *applied,
                applied_entries,
                last_contact,
                client.negotiated_version(),
            );
            if n == 0 {
                std::thread::sleep(cfg.poll);
            }
        }
    }
}

/// Fetches the snapshot package and feeds it to
/// [`Sentinel::bootstrap_replica`].
fn bootstrap(sentinel: &Arc<Sentinel>, client: &SentinelClient) -> Result<ReplicaState, String> {
    let pkg = client.repl_snapshot().map_err(|e| format!("snapshot fetch: {e}"))?;
    let seq = pkg.get("seq").and_then(json::Value::as_u64).ok_or("snapshot missing seq")?;
    let catalog: Vec<CatalogOp> = pkg
        .get("catalog")
        .and_then(json::Value::as_arr)
        .ok_or("snapshot missing catalog")?
        .iter()
        .map(|v| CatalogOp::from_json(v).map(|(_, op)| op))
        .collect::<Option<_>>()
        .ok_or("undecodable catalog op")?;
    let raw = sentinel_durable::repl::bytes_from_hex(
        pkg.get("snapshot").and_then(json::Value::as_str).ok_or("snapshot missing bytes")?,
    )
    .ok_or("snapshot not hex")?;
    let snap = GraphSnapshot::decode(raw.into()).ok_or("undecodable snapshot")?;
    let bootstrap_entries = catalog.len() as u64;
    sentinel.bootstrap_replica(&catalog, &snap).map_err(|e| format!("bootstrap: {e}"))?;
    Ok(ReplicaState {
        primary: String::new(), // filled by the caller's config
        base_seq: seq,
        bootstrap_entries,
    })
}

fn lease_expired(cfg: &FollowerConfig, last_contact: Option<Instant>) -> bool {
    match (cfg.lease, last_contact) {
        (Some(lease), Some(at)) => at.elapsed() > lease,
        _ => false,
    }
}

fn promote_on_lease(sentinel: &Arc<Sentinel>, cfg: &FollowerConfig) {
    flight::global().record(
        FlightKind::Promote,
        Arc::from(format!("lease-expired:{}", cfg.primary).as_str()),
        cfg.lease.map(|l| l.as_millis() as u64).unwrap_or(0),
        0,
    );
    sentinel.promote();
}

#[allow(clippy::too_many_arguments)]
fn publish_status(
    sentinel: &Arc<Sentinel>,
    cfg: &FollowerConfig,
    tip: u64,
    applied: u64,
    applied_entries: u64,
    last_contact: Option<Instant>,
    wire_version: u8,
) {
    sentinel.set_repl_status(Some(ReplicationStats {
        role: "replica".into(),
        tip,
        followers: Vec::new(),
        applied,
        applied_entries,
        primary: Some(cfg.primary.clone()),
        last_contact_secs: last_contact.map(|at| at.elapsed().as_secs_f64()),
        wire_version: Some(wire_version),
    }));
}

/// Server-rejected requests that no retry will fix (the primary answered
/// — it is alive — but refuses replication, e.g. it is not durable).
fn fatal(e: &ClientError) -> bool {
    matches!(e, ClientError::Server { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_state_roundtrip() {
        let s =
            ReplicaState { primary: "127.0.0.1:9999".into(), base_seq: 42, bootstrap_entries: 7 };
        let parsed = json::Value::parse(&s.to_json().to_string()).unwrap();
        assert_eq!(ReplicaState::from_json(&parsed), Some(s));
    }

    #[test]
    fn lease_only_expires_after_first_contact() {
        let cfg = FollowerConfig::new("127.0.0.1:1", "f", "/tmp/x");
        assert!(!lease_expired(&cfg, None), "no contact yet: never self-promote");
        let past = Instant::now() - Duration::from_secs(60);
        assert!(lease_expired(&cfg, Some(past)));
        assert!(!lease_expired(&cfg, Some(Instant::now())));
    }
}
