//! Multi-node Sentinel: journal shipping, replica failover, and the
//! distributed global event detector.
//!
//! The paper's architecture is one active OODBMS per application plus a
//! global detector for inter-application composites (Figure 2). This
//! crate extends both across *machines*:
//!
//! * **Journal shipping** ([`Follower`]) — a primary's durable engine
//!   exposes a totally-ordered replication log (DDL catalog ops,
//!   epoch-stamped journal events, fence-log entries). A follower node
//!   bootstraps from the primary's newest-possible state (a
//!   checkpoint-grade snapshot cut with signalling paused, plus the DDL
//!   catalog prefix) and then tails the live stream over the existing
//!   versioned wire protocol (`ReplSubscribe` / `ReplSnapshot` /
//!   `ReplFrames` / `ReplAck`), applying entries through the same
//!   interleaved merge discipline crash recovery uses — so a follower
//!   is, by construction, a valid recovery prefix of its primary.
//! * **Failover** — a follower serves reads (stats, trace summaries,
//!   metrics) and refuses writes until promoted. Promotion is either
//!   explicit (the `Promote` opcode) or automatic: the apply loop tracks
//!   a lease, and when the primary stays unreachable past it, the
//!   follower promotes itself and starts accepting writes — completing
//!   half-detected composites with the pre-crash constituents' params.
//! * **Distributed global detection** ([`forward_to_node`]) — a
//!   `SEQ`/`AND` whose constituents arrive on *different nodes* detects
//!   on a designated global-detector node: each node forwards selected
//!   local events (flattened parameters and, when tracing, the ambient
//!   trace id for cross-node span stitching) as explicit signals named
//!   [`sentinel_core::global::global_leaf_name`]`(app, event)`.

pub mod follower;
pub mod global;

pub use follower::{Follower, FollowerConfig};
pub use global::forward_to_node;
