//! The crash flight recorder: an always-on, bounded ring of the last N
//! notable events — signals accepted, fences cut, rule firings, Busy
//! rejections, checkpoint cuts — so a post-mortem can see what the
//! process was doing in its final seconds.
//!
//! Recording is allocation-free on the hot path: the ring slots are
//! preallocated, a record is one atomic fetch-add to claim a sequence
//! number plus one short per-slot mutex (different slots never contend),
//! and labels travel as `Arc<str>` clones (refcount bumps) — static
//! labels are interned once. Torn global order is impossible: slots are
//! written independently and snapshots sort by sequence number.
//!
//! Persistence has three triggers:
//!
//! * **panic** — [`install_panic_hook`] chains the previous hook and
//!   dumps the global ring to `flight-recorder.json`;
//! * **periodic** — the durable engine's committer thread calls
//!   [`FlightRecorder::dump_if_dirty`] (time-throttled) after group
//!   commits, so even a SIGKILL leaves a dump at most a throttle window
//!   stale;
//! * **recovery** — `open_durable` reads the previous incarnation's dump
//!   and merges it into `recovery-report.json`.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::SystemTime;

use parking_lot::Mutex;

use crate::json;

/// File name of the flight-recorder dump.
pub const FLIGHT_RECORDER_FILE: &str = "flight-recorder.json";

/// Ring capacity of the process-global recorder.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// What kind of notable event a [`FlightEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A primitive signal was accepted by the detector (`a` = timestamp,
    /// `b` = transaction id or 0).
    Signal,
    /// A whole-graph fence was cut (`a` = timestamp, `b` = fence arg).
    Fence,
    /// A rule fired (`a` = timestamp, `b` = 0 immediate / 1 deferred /
    /// 2 detached).
    RuleFired,
    /// The server rejected a frame with Busy (`a` = in-flight count).
    Busy,
    /// A checkpoint was cut (`a` = journal tag, `b` = bytes).
    Checkpoint,
    /// A recovery pass ran (`a` = replayed records, `b` = catalog ops).
    Recovery,
    /// The process began a graceful shutdown.
    Shutdown,
    /// A panic reached the hook.
    Panic,
    /// A primary served a replication frame slice to a follower
    /// (`a` = from-sequence, `b` = entries shipped).
    Ship,
    /// A follower acknowledged an apply watermark (`a` = applied).
    Ack,
    /// A follower bootstrapped from a primary snapshot
    /// (`a` = base sequence, `b` = catalog ops shipped).
    CatchUp,
    /// A follower was promoted to primary (`a` = applied watermark).
    Promote,
}

impl FlightKind {
    /// Stable lowercase name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Signal => "signal",
            FlightKind::Fence => "fence",
            FlightKind::RuleFired => "rule_fired",
            FlightKind::Busy => "busy",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::Recovery => "recovery",
            FlightKind::Shutdown => "shutdown",
            FlightKind::Panic => "panic",
            FlightKind::Ship => "ship",
            FlightKind::Ack => "ack",
            FlightKind::CatchUp => "catch_up",
            FlightKind::Promote => "promote",
        }
    }
}

/// One recorded notable event.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Monotone sequence number (total recorded, including overwritten).
    pub seq: u64,
    /// Wall-clock microseconds since the unix epoch.
    pub unix_us: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// Event/rule/fence label.
    pub label: Arc<str>,
    /// Kind-specific detail (usually a timestamp).
    pub a: u64,
    /// Kind-specific detail.
    pub b: u64,
}

impl FlightEvent {
    fn to_json(&self) -> json::Value {
        json::Value::obj([
            ("seq", json::Value::UInt(self.seq)),
            ("unix_us", json::Value::UInt(self.unix_us)),
            ("kind", json::Value::str(self.kind.as_str())),
            ("label", json::Value::str(&*self.label)),
            ("a", json::Value::UInt(self.a)),
            ("b", json::Value::UInt(self.b)),
        ])
    }
}

/// The bounded ring. One per process in practice (see [`global`]), but
/// constructible standalone for tests.
pub struct FlightRecorder {
    next: AtomicU64,
    slots: Box<[Mutex<Option<FlightEvent>>]>,
    last_dump: AtomicU64,
    interned: Mutex<Vec<(&'static str, Arc<str>)>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.next.load(Ordering::Relaxed))
            .finish()
    }
}

fn unix_us() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

impl FlightRecorder {
    /// A recorder with `capacity` preallocated slots.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            next: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            last_dump: AtomicU64::new(0),
            interned: Mutex::new(Vec::new()),
        }
    }

    /// Total events ever recorded (= next sequence number).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Records one event. The label is an `Arc` clone — no allocation.
    pub fn record(&self, kind: FlightKind, label: Arc<str>, a: u64, b: u64) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock() = Some(FlightEvent { seq, unix_us: unix_us(), kind, label, a, b });
    }

    /// Records one event with a static label, interning it once so
    /// steady-state recording stays allocation-free.
    pub fn record_static(&self, kind: FlightKind, label: &'static str, a: u64, b: u64) {
        let interned = {
            let mut cache = self.interned.lock();
            match cache.iter().find(|(k, _)| *k == label) {
                Some((_, arc)) => arc.clone(),
                None => {
                    let arc: Arc<str> = Arc::from(label);
                    cache.push((label, arc.clone()));
                    arc
                }
            }
        };
        self.record(kind, interned, a, b);
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> =
            self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Renders the ring as a JSON object:
    /// `{"capacity":..,"recorded":..,"dropped":..,"events":[..]}`.
    pub fn to_json(&self) -> json::Value {
        let events = self.snapshot();
        let dropped = self.recorded().saturating_sub(events.len() as u64);
        json::Value::obj([
            ("capacity", json::Value::UInt(self.slots.len() as u64)),
            ("recorded", json::Value::UInt(self.recorded())),
            ("dropped", json::Value::UInt(dropped)),
            ("events", json::Value::Arr(events.iter().map(FlightEvent::to_json).collect())),
        ])
    }

    /// Writes the ring to `path` (tmp + rename, so a crash mid-dump
    /// leaves the previous dump intact).
    pub fn dump_to(&self, path: &Path) -> io::Result<()> {
        let seq = self.recorded();
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, format!("{}\n", self.to_json()))?;
        std::fs::rename(&tmp, path)?;
        self.last_dump.store(seq, Ordering::Relaxed);
        Ok(())
    }

    /// Dumps only if events were recorded since the last dump; returns
    /// whether a dump was written.
    pub fn dump_if_dirty(&self, path: &Path) -> io::Result<bool> {
        if self.recorded() == self.last_dump.load(Ordering::Relaxed) {
            return Ok(false);
        }
        self.dump_to(path)?;
        Ok(true)
    }
}

/// The process-global recorder every subsystem records into.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY))
}

/// Installs (once) a panic hook that records the panic and dumps the
/// global ring to `path`, then chains to the previous hook.
pub fn install_panic_hook(path: std::path::PathBuf) {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            global().record_static(FlightKind::Panic, "panic", 0, 0);
            let _ = global().dump_to(&path);
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.record(FlightKind::Signal, label("ev"), i, 0);
        }
        let events = fr.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(events.iter().map(|e| e.a).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(fr.recorded(), 10);
    }

    #[test]
    fn json_dump_shape() {
        let fr = FlightRecorder::new(8);
        fr.record_static(FlightKind::Checkpoint, "checkpoint", 42, 512);
        fr.record_static(FlightKind::Checkpoint, "checkpoint", 43, 256);
        let j = fr.to_json();
        assert_eq!(j.get("capacity").and_then(json::Value::as_u64), Some(8));
        assert_eq!(j.get("recorded").and_then(json::Value::as_u64), Some(2));
        assert_eq!(j.get("dropped").and_then(json::Value::as_u64), Some(0));
        let events = j.get("events").and_then(json::Value::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("kind").and_then(json::Value::as_str), Some("checkpoint"));
        assert_eq!(events[0].get("a").and_then(json::Value::as_u64), Some(42));
        // Round-trips through the parser (what recovery merging does).
        assert_eq!(json::Value::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn dump_if_dirty_throttles_on_no_news() {
        let dir = std::env::temp_dir().join(format!("sentinel-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(FLIGHT_RECORDER_FILE);
        let fr = FlightRecorder::new(8);
        assert!(!fr.dump_if_dirty(&path).unwrap(), "empty ring is clean");
        fr.record(FlightKind::Busy, label("conn"), 1, 0);
        assert!(fr.dump_if_dirty(&path).unwrap());
        assert!(!fr.dump_if_dirty(&path).unwrap(), "no new events since dump");
        fr.record(FlightKind::Busy, label("conn"), 2, 0);
        assert!(fr.dump_if_dirty(&path).unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = json::Value::parse(text.trim()).unwrap();
        assert_eq!(parsed.get("recorded").and_then(json::Value::as_u64), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn static_labels_intern_to_one_arc() {
        let fr = FlightRecorder::new(8);
        fr.record_static(FlightKind::Fence, "barrier", 0, 0);
        fr.record_static(FlightKind::Fence, "barrier", 1, 0);
        let events = fr.snapshot();
        assert!(Arc::ptr_eq(&events[0].label, &events[1].label));
    }
}
