//! Causal provenance spans: the trace model that links a rule action back
//! to the primitive method invocations that caused it.
//!
//! The paper's central data structure is the *linked parameter list*: a
//! composite occurrence "contains the parameters of each primitive event
//! that participates in the detection" (§2.3), and cascaded rule firings
//! extend the chain. This module makes that causality a first-class,
//! queryable artifact:
//!
//! * every primitive `Notify` allocates a [`TraceId`] and a root
//!   [`SpanId`] (or joins the trace of the rule action that raised it —
//!   the cascade link);
//! * composite detections record **links** to the spans of every
//!   constituent occurrence, per parameter context;
//! * condition/action spans parent on the triggering occurrence's span
//!   and stamp the cascade depth;
//! * storage tags WAL forces and page I/O with the span they ran inside.
//!
//! Completed spans land in a fixed-capacity ring buffer ([`TraceStore`])
//! with query helpers (by trace, by rule, by event, slowest-N) and a
//! Chrome trace-event exporter ([`crate::export`]) loadable in Perfetto.
//!
//! The ambient span is a thread-local stack ([`push_current`]): the
//! scheduler pushes the action span while an action runs, so events the
//! action raises — and I/O the storage engine performs — attach to it
//! without any parameter plumbing.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::json::Value;
use crate::trace::Field;
use crate::Counter;

/// Identifies one end-to-end causal chain (1-based; 0 is never issued).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies one span within a store (1-based; 0 is never issued).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The propagated context: which trace an occurrence belongs to and which
/// span represents it. Small and `Copy` so occurrences carry it for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The causal chain.
    pub trace: TraceId,
    /// The span representing this occurrence/operation.
    pub span: SpanId,
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The causal chain this span belongs to.
    pub trace: TraceId,
    /// This span.
    pub span: SpanId,
    /// Parent span within the same trace (None for roots).
    pub parent: Option<SpanId>,
    /// Causal links to spans *other than* the parent — a composite
    /// detection links every constituent occurrence's span here (the
    /// linked parameter list, lifted into the trace model).
    pub links: Vec<SpanContext>,
    /// Span kind: `"signal"`, `"primitive"`, `"detect"`, `"condition"`,
    /// `"action"`, `"flush"`, `"wal_force"`, `"page_read"`, `"page_write"`,
    /// `"net_signal"` (server-side root of a client-initiated trace).
    pub kind: &'static str,
    /// Display name (event name, rule name, …).
    pub name: Arc<str>,
    /// Start, nanoseconds since the store's epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the store's epoch (`>= start_ns`).
    pub end_ns: u64,
    /// Cascade depth (0 = triggered from the application) where known.
    pub depth: u32,
    /// Extra typed fields (parameter context, rule outcome, txn, …).
    pub fields: Vec<(&'static str, Field)>,
}

impl SpanRecord {
    /// Wall-clock duration of the span, ns.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The value of a named field, if present.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// Renders as a JSON object (the `sentinel-trace` CLI's dump format).
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("trace".to_string(), Value::UInt(self.trace.0)),
            ("span".to_string(), Value::UInt(self.span.0)),
            ("parent".to_string(), self.parent.map_or(Value::Null, |p| Value::UInt(p.0))),
            (
                "links".to_string(),
                Value::Arr(self.links.iter().map(|l| Value::UInt(l.span.0)).collect()),
            ),
            ("kind".to_string(), Value::str(self.kind)),
            ("name".to_string(), Value::str(self.name.as_ref())),
            ("start_ns".to_string(), Value::UInt(self.start_ns)),
            ("dur_ns".to_string(), Value::UInt(self.duration_ns())),
            ("depth".to_string(), Value::UInt(u64::from(self.depth))),
        ];
        for (k, v) in &self.fields {
            pairs.push((k.to_string(), v.to_json()));
        }
        Value::Obj(pairs)
    }
}

impl fmt::Display for SpanRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}:{} +{}ns dur={}ns",
            self.trace,
            self.span,
            self.kind,
            self.name,
            self.start_ns,
            self.duration_ns()
        )?;
        if let Some(p) = self.parent {
            write!(f, " parent={p}")?;
        }
        if !self.links.is_empty() {
            write!(f, " links=[")?;
            for (i, l) in self.links.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", l.span)?;
            }
            write!(f, "]")?;
        }
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// An open span: created by [`TraceStore::start`], completed (and recorded)
/// by [`TraceStore::finish`]. Not `Drop`-guarded: losing a handle simply
/// never records the span, which is the right failure mode for tracing.
#[derive(Debug)]
pub struct SpanHandle {
    /// The context child work should propagate.
    pub ctx: SpanContext,
    parent: Option<SpanId>,
    kind: &'static str,
    name: Arc<str>,
    start_ns: u64,
}

/// Per-trace roll-up returned by [`TraceStore::trace_summaries`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// The trace.
    pub trace: TraceId,
    /// Spans recorded for it (ring-buffer resident only).
    pub spans: usize,
    /// Name of the earliest span (the root signal, normally).
    pub root: Arc<str>,
    /// Span of wall-clock covered: max(end) - min(start), ns.
    pub wall_ns: u64,
}

/// Fixed-capacity ring buffer of completed [`SpanRecord`]s plus the id
/// allocators. Disabled by default: every entry point checks one relaxed
/// atomic load, so an idle store costs nothing on the hot path.
#[derive(Debug)]
pub struct TraceStore {
    enabled: AtomicBool,
    epoch: Instant,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    /// Spans evicted from the ring by newer ones.
    evicted: Counter,
}

/// Default ring capacity (spans retained).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// High bit marking trace ids adopted from a remote client
/// ([`TraceStore::adopt_remote`]); locally allocated ids count up from 1
/// and never reach it.
pub const REMOTE_TRACE_BIT: u64 = 1 << 63;

impl Default for TraceStore {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl TraceStore {
    /// A disabled store with the default ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A disabled store retaining at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceStore {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_trace: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            evicted: Counter::new(),
        }
    }

    /// Turns recording on or off. Spans already recorded are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are being recorded (one relaxed load).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this store's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Allocates a fresh trace id.
    pub fn new_trace(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Adopts a trace id propagated from a remote client (the optional
    /// trace field of a `sentinel-net` signal frame). The returned id has
    /// [`REMOTE_TRACE_BIT`] set so it can never collide with the locally
    /// allocated sequence, letting server-side spans stitch into a trace
    /// the client initiated. A zero raw id (clients never send one) is
    /// clamped to 1.
    pub fn adopt_remote(&self, raw: u64) -> TraceId {
        TraceId(raw.max(1) | REMOTE_TRACE_BIT)
    }

    /// Opens a span. `parent` is its causal parent within `trace`.
    pub fn start(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        kind: &'static str,
        name: Arc<str>,
    ) -> SpanHandle {
        let span = SpanId(self.next_span.fetch_add(1, Ordering::Relaxed) + 1);
        SpanHandle { ctx: SpanContext { trace, span }, parent, kind, name, start_ns: self.now_ns() }
    }

    /// Completes `handle`, recording its span.
    pub fn finish(&self, handle: SpanHandle, depth: u32, fields: Vec<(&'static str, Field)>) {
        self.finish_linked(handle, depth, Vec::new(), fields)
    }

    /// Completes `handle` with causal `links` (constituent spans).
    pub fn finish_linked(
        &self,
        handle: SpanHandle,
        depth: u32,
        links: Vec<SpanContext>,
        fields: Vec<(&'static str, Field)>,
    ) {
        let record = SpanRecord {
            trace: handle.ctx.trace,
            span: handle.ctx.span,
            parent: handle.parent,
            links,
            kind: handle.kind,
            name: handle.name,
            start_ns: handle.start_ns,
            end_ns: self.now_ns(),
            depth,
            fields,
        };
        self.record(record);
    }

    /// Records a pre-built span (storage I/O taggers build these directly).
    pub fn record(&self, record: SpanRecord) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.evicted.inc();
        }
        ring.push_back(record);
    }

    /// Spans evicted from the ring by capacity pressure.
    pub fn evicted(&self) -> u64 {
        self.evicted.get()
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Drops every retained span (the id allocators keep counting).
    pub fn clear(&self) {
        self.ring.lock().clear();
    }

    // --- queries -----------------------------------------------------

    /// Every retained span, in recording order.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Spans of one trace, in recording order.
    pub fn trace(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.ring.lock().iter().filter(|s| s.trace == trace).cloned().collect()
    }

    /// Spans whose `rule` field or name matches (condition/action spans of
    /// the rule), in recording order.
    pub fn by_rule(&self, rule: &str) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .iter()
            .filter(|s| {
                matches!(s.kind, "condition" | "action") && s.name.as_ref() == rule
                    || matches!(s.field("rule"), Some(Field::Str(r)) if r.as_ref() == rule)
            })
            .cloned()
            .collect()
    }

    /// Signal/primitive/detect spans of the named event, in recording order.
    pub fn by_event(&self, event: &str) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .iter()
            .filter(|s| {
                matches!(s.kind, "signal" | "primitive" | "detect") && s.name.as_ref() == event
            })
            .cloned()
            .collect()
    }

    /// The `n` longest spans, descending by duration.
    pub fn slowest(&self, n: usize) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self.ring.lock().iter().cloned().collect();
        spans.sort_by_key(|s| std::cmp::Reverse(s.duration_ns()));
        spans.truncate(n);
        spans
    }

    /// Per-trace roll-ups, ascending by trace id.
    pub fn trace_summaries(&self) -> Vec<TraceSummary> {
        use std::collections::BTreeMap;
        let ring = self.ring.lock();
        let mut acc: BTreeMap<TraceId, (usize, Arc<str>, u64, u64)> = BTreeMap::new();
        for s in ring.iter() {
            let e = acc.entry(s.trace).or_insert_with(|| (0, s.name.clone(), s.start_ns, s.end_ns));
            e.0 += 1;
            if s.start_ns < e.2 {
                e.1 = s.name.clone();
                e.2 = s.start_ns;
            }
            e.3 = e.3.max(s.end_ns);
        }
        acc.into_iter()
            .map(|(trace, (spans, root, start, end))| TraceSummary {
                trace,
                spans,
                root,
                wall_ns: end.saturating_sub(start),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Ambient span (thread-local)
// ---------------------------------------------------------------------------

thread_local! {
    /// Stack of span contexts active on this thread. The top is the span
    /// new work should parent on (the scheduler pushes the action span
    /// while the action runs; the detector pushes the signal span while
    /// propagation runs).
    static CURRENT: RefCell<Vec<SpanContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost span active on this thread, if any.
pub fn current() -> Option<SpanContext> {
    CURRENT.with(|c| c.borrow().last().copied())
}

/// Pushes `ctx` as the thread's current span until the guard drops.
#[must_use = "the span pops when the guard drops"]
pub fn push_current(ctx: SpanContext) -> CurrentGuard {
    CURRENT.with(|c| c.borrow_mut().push(ctx));
    CurrentGuard { _priv: () }
}

/// Pops the span pushed by the matching [`push_current`] on drop.
pub struct CurrentGuard {
    _priv: (),
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(t: u64, s: u64) -> SpanContext {
        SpanContext { trace: TraceId(t), span: SpanId(s) }
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let store = TraceStore::new();
        let t1 = store.new_trace();
        let t2 = store.new_trace();
        assert_ne!(t1, t2);
        assert!(t1.0 > 0);
        let a = store.start(t1, None, "signal", Arc::from("e"));
        let b = store.start(t1, Some(a.ctx.span), "detect", Arc::from("c"));
        assert_ne!(a.ctx.span, b.ctx.span);
    }

    #[test]
    fn finish_records_parent_links_and_duration() {
        let store = TraceStore::new();
        let t = store.new_trace();
        let root = store.start(t, None, "signal", Arc::from("e1"));
        let root_ctx = root.ctx;
        store.finish(root, 0, vec![("txn", Field::U64(7))]);
        let child = store.start(t, Some(root_ctx.span), "detect", Arc::from("seq"));
        store.finish_linked(child, 0, vec![root_ctx], vec![]);
        let spans = store.trace(t);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].field("txn"), Some(&Field::U64(7)));
        assert_eq!(spans[1].parent, Some(root_ctx.span));
        assert_eq!(spans[1].links, vec![root_ctx]);
        assert!(spans[1].end_ns >= spans[1].start_ns);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let store = TraceStore::with_capacity(2);
        let t = store.new_trace();
        for name in ["a", "b", "c"] {
            let h = store.start(t, None, "signal", Arc::from(name));
            store.finish(h, 0, vec![]);
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.evicted(), 1);
        let names: Vec<_> = store.snapshot().iter().map(|s| s.name.to_string()).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn queries_filter_by_trace_rule_event_and_duration() {
        let store = TraceStore::new();
        let t1 = store.new_trace();
        let t2 = store.new_trace();
        let h = store.start(t1, None, "signal", Arc::from("e1"));
        store.finish(h, 0, vec![]);
        let h = store.start(t2, None, "condition", Arc::from("R1"));
        std::thread::sleep(std::time::Duration::from_millis(2));
        store.finish(h, 1, vec![]);
        let h = store.start(t2, None, "action", Arc::from("R1"));
        store.finish(h, 1, vec![]);

        assert_eq!(store.trace(t1).len(), 1);
        assert_eq!(store.by_rule("R1").len(), 2);
        assert_eq!(store.by_event("e1").len(), 1);
        assert!(store.by_event("R1").is_empty(), "rule spans are not event spans");
        let slowest = store.slowest(1);
        assert_eq!(slowest.len(), 1);
        assert_eq!((slowest[0].kind, slowest[0].name.as_ref()), ("condition", "R1"));
        let summaries = store.trace_summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].trace, t1);
        assert_eq!(summaries[1].spans, 2);
    }

    #[test]
    fn ambient_span_nests_and_unwinds() {
        assert_eq!(current(), None);
        let g1 = push_current(ctx(1, 1));
        assert_eq!(current(), Some(ctx(1, 1)));
        {
            let _g2 = push_current(ctx(1, 2));
            assert_eq!(current(), Some(ctx(1, 2)));
        }
        assert_eq!(current(), Some(ctx(1, 1)));
        drop(g1);
        assert_eq!(current(), None);
    }

    #[test]
    fn remote_traces_never_collide_with_local_ones() {
        let store = TraceStore::new();
        let remote = store.adopt_remote(7);
        assert_eq!(remote, TraceId(7 | REMOTE_TRACE_BIT));
        assert_eq!(store.adopt_remote(7), remote, "adoption is deterministic");
        assert_eq!(store.adopt_remote(0), TraceId(1 | REMOTE_TRACE_BIT), "zero clamped");
        let local = store.new_trace();
        assert_ne!(local, remote);
        assert_eq!(local.0 & REMOTE_TRACE_BIT, 0);
        // Spans recorded under the adopted trace are queryable by it.
        let h = store.start(remote, None, "net_signal", Arc::from("load_a"));
        store.finish(h, 0, vec![]);
        assert_eq!(store.trace(remote).len(), 1);
    }

    #[test]
    fn span_record_renders_text_and_json() {
        let r = SpanRecord {
            trace: TraceId(3),
            span: SpanId(9),
            parent: Some(SpanId(4)),
            links: vec![ctx(3, 1), ctx(3, 2)],
            kind: "detect",
            name: Arc::from("seq"),
            start_ns: 10,
            end_ns: 25,
            depth: 1,
            fields: vec![("context", Field::from("chronicle"))],
        };
        let text = r.to_string();
        assert!(text.contains("T3 S9 detect:seq"));
        assert!(text.contains("links=[S1,S2]"));
        let json = r.to_json().to_string();
        assert!(json.contains(r#""trace":3"#));
        assert!(json.contains(r#""links":[1,2]"#));
        assert!(json.contains(r#""context":"chronicle""#));
    }
}
