//! Prometheus-style text exposition (version 0.0.4) for the live
//! metrics, hand-rolled under the shims-only dependency policy.
//!
//! [`PromText`] is a small builder: callers emit one metric at a time
//! and the builder writes the `# HELP` / `# TYPE` header the first time
//! each family name appears. Histograms render in the standard
//! cumulative-bucket form (`_bucket{le=..}` / `_sum` / `_count`) using
//! the log-linear bucket bounds of [`crate::Histogram`]; only the
//! non-empty buckets get an `le` line (sparse bucket sets are valid
//! exposition), so a mostly-idle histogram stays a handful of lines.
//!
//! Values are nanoseconds where the metric name says `_ns`; this keeps
//! the exposition loss-free against the internal unit instead of
//! converting to floating-point seconds.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::{bucket_upper_bound_ns, HistogramSnapshot};

/// Escapes a label value per the exposition format.
fn escape_label(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Builder for one exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    seen: BTreeSet<String>,
}

impl PromText {
    /// An empty document.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        if self.seen.insert(name.to_string()) {
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    fn label_block(labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let mut block = String::from("{");
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                block.push(',');
            }
            block.push_str(k);
            block.push_str("=\"");
            escape_label(v, &mut block);
            block.push('"');
        }
        block.push('}');
        block
    }

    /// Emits one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, "counter", help);
        let block = Self::label_block(labels);
        let _ = writeln!(self.out, "{name}{block} {value}");
    }

    /// Emits one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, "gauge", help);
        let block = Self::label_block(labels);
        let _ = writeln!(self.out, "{name}{block} {value}");
    }

    /// Emits one histogram in cumulative-bucket form. Only non-empty
    /// buckets produce an `le` line (plus the mandatory `+Inf`).
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) {
        self.header(name, "histogram", help);
        let mut cumulative = 0u64;
        for (i, &b) in snap.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            cumulative += b;
            let upper = bucket_upper_bound_ns(i);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            let le = if upper == u64::MAX { "+Inf".to_string() } else { upper.to_string() };
            with_le.push(("le", le.as_str()));
            let block = Self::label_block(&with_le);
            let _ = writeln!(self.out, "{name}_bucket{block} {cumulative}");
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        let block = Self::label_block(&with_inf);
        let _ = writeln!(self.out, "{name}_bucket{block} {}", snap.count);
        let plain = Self::label_block(labels);
        let _ = writeln!(self.out, "{name}_sum{plain} {}", snap.sum);
        let _ = writeln!(self.out, "{name}_count{plain} {}", snap.count);
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn counters_and_gauges_emit_one_header_per_family() {
        let mut w = PromText::new();
        w.counter("sentinel_signals_total", "Signals accepted", &[], 42);
        w.counter("sentinel_shard_signals_total", "Per-shard signals", &[("shard", "0")], 21);
        w.counter("sentinel_shard_signals_total", "Per-shard signals", &[("shard", "1")], 21);
        w.gauge("sentinel_queue_depth", "Queue depth", &[("shard", "a\"b")], 3);
        let text = w.finish();
        assert_eq!(text.matches("# TYPE sentinel_shard_signals_total counter").count(), 1);
        assert!(text.contains("sentinel_signals_total 42\n"));
        assert!(text.contains("sentinel_shard_signals_total{shard=\"0\"} 21\n"));
        assert!(text.contains("sentinel_queue_depth{shard=\"a\\\"b\"} 3\n"));
    }

    #[test]
    fn histograms_expose_cumulative_sparse_buckets() {
        let h = Histogram::new();
        h.record(2);
        h.record(2);
        h.record(100);
        let mut w = PromText::new();
        w.histogram("sentinel_lat_ns", "Latency", &[], &h.snapshot());
        let text = w.finish();
        assert!(text.contains("# TYPE sentinel_lat_ns histogram"));
        assert!(text.contains("sentinel_lat_ns_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("sentinel_lat_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("sentinel_lat_ns_sum 104\n"));
        assert!(text.contains("sentinel_lat_ns_count 3\n"));
        // Sparse: empty buckets between 2 and 100 emit no lines.
        assert!(!text.contains("le=\"7\""));
    }
}
