//! Structured trace-event stream.
//!
//! Subsystems emit [`TraceRecord`]s onto a shared [`TraceBus`]; any number
//! of consumers (the rule debugger, the `beast` bench binary, tests)
//! subscribe and receive every record emitted after their subscription.
//! When nobody is subscribed, `emit` is a single relaxed atomic load —
//! tracing costs nothing unless someone is watching.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;

use crate::json::Value;
use crate::Counter;

/// A typed field value on a trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    U64(u64),
    I64(i64),
    Str(Arc<str>),
    Bool(bool),
}

impl Field {
    /// Renders as a JSON value.
    pub fn to_json(&self) -> Value {
        match self {
            Field::U64(n) => Value::UInt(*n),
            Field::I64(n) => Value::Int(*n),
            Field::Str(s) => Value::str(s.as_ref()),
            Field::Bool(b) => Value::Bool(*b),
        }
    }
}

impl From<u64> for Field {
    fn from(n: u64) -> Self {
        Field::U64(n)
    }
}

impl From<i64> for Field {
    fn from(n: i64) -> Self {
        Field::I64(n)
    }
}

impl From<bool> for Field {
    fn from(b: bool) -> Self {
        Field::Bool(b)
    }
}

impl From<&str> for Field {
    fn from(s: &str) -> Self {
        Field::Str(Arc::from(s))
    }
}

impl From<Arc<str>> for Field {
    fn from(s: Arc<str>) -> Self {
        Field::Str(s)
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::U64(n) => write!(f, "{n}"),
            Field::I64(n) => write!(f, "{n}"),
            Field::Str(s) => write!(f, "{s}"),
            Field::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One structured trace event: where it came from, what happened, and a
/// small bag of typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Bus-global sequence number (1-based, total order of emission).
    pub seq: u64,
    /// Emitting subsystem, e.g. `"detector"`, `"scheduler"`.
    pub subsystem: &'static str,
    /// Event kind within the subsystem, e.g. `"detection"`, `"action"`.
    pub event: &'static str,
    /// Typed payload fields, in emission order.
    pub fields: Vec<(&'static str, Field)>,
}

impl TraceRecord {
    /// The value of a named field, if present.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// Renders as a JSON object.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("seq".to_string(), Value::UInt(self.seq)),
            ("subsystem".to_string(), Value::str(self.subsystem)),
            ("event".to_string(), Value::str(self.event)),
        ];
        for (k, v) in &self.fields {
            pairs.push((k.to_string(), v.to_json()));
        }
        Value::Obj(pairs)
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>6}] {}/{}", self.seq, self.subsystem, self.event)?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// Default per-subscriber channel capacity. A subscriber that falls more
/// than this many records behind starts losing records (counted in
/// [`TraceBus::stats`]) instead of growing memory without bound.
pub const SUBSCRIBER_CAPACITY: usize = 4096;

/// Point-in-time counters for a [`TraceBus`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceBusStats {
    /// Records emitted while at least one subscriber was attached.
    pub emitted: u64,
    /// Record deliveries dropped because a subscriber's channel was full.
    pub dropped: u64,
    /// Live subscribers.
    pub subscribers: usize,
}

impl TraceBusStats {
    /// Renders as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("emitted", Value::UInt(self.emitted)),
            ("dropped", Value::UInt(self.dropped)),
            ("subscribers", Value::UInt(self.subscribers as u64)),
        ])
    }
}

/// Broadcast bus for [`TraceRecord`]s.
///
/// Emitters call [`TraceBus::emit`]; each subscriber gets its own bounded
/// channel and receives every record emitted while subscribed — unless it
/// falls [`SUBSCRIBER_CAPACITY`] records behind, in which case deliveries
/// to it are dropped (and counted) rather than buffered without bound.
/// Dropped receivers are pruned lazily on the next emit.
#[derive(Debug, Default)]
pub struct TraceBus {
    seq: AtomicU64,
    subs: Mutex<Vec<Sender<Arc<TraceRecord>>>>,
    /// Subscriber count mirrored outside the lock so `emit` can bail
    /// without taking it when nobody listens.
    active: AtomicUsize,
    /// Deliveries dropped because a subscriber's channel was full.
    dropped: Counter,
}

impl TraceBus {
    pub fn new() -> Self {
        TraceBus::default()
    }

    /// True when at least one subscriber is (or recently was) attached.
    /// Emitters may use this to skip building expensive field values.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed) > 0
    }

    /// Attaches a new consumer with the default channel capacity. The
    /// receiver sees every record emitted from this call on, up to
    /// [`SUBSCRIBER_CAPACITY`] records of lag.
    pub fn subscribe(&self) -> Receiver<Arc<TraceRecord>> {
        self.subscribe_with_capacity(SUBSCRIBER_CAPACITY)
    }

    /// Attaches a new consumer whose channel buffers at most `capacity`
    /// records; further deliveries are dropped (and counted) until it
    /// catches up.
    pub fn subscribe_with_capacity(&self, capacity: usize) -> Receiver<Arc<TraceRecord>> {
        let (tx, rx) = bounded(capacity.max(1));
        let mut subs = self.subs.lock();
        subs.push(tx);
        self.active.store(subs.len(), Ordering::Relaxed);
        rx
    }

    /// Emits a record to all live subscribers. A no-op (one atomic load)
    /// when nobody is subscribed. Returns the record's sequence number,
    /// or 0 if it was dropped for lack of subscribers.
    pub fn emit(
        &self,
        subsystem: &'static str,
        event: &'static str,
        fields: Vec<(&'static str, Field)>,
    ) -> u64 {
        if !self.is_active() {
            return 0;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let record = Arc::new(TraceRecord { seq, subsystem, event, fields });
        let mut subs = self.subs.lock();
        subs.retain(|tx| match tx.try_send(record.clone()) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                // Slow subscriber: drop this delivery, keep the channel.
                self.dropped.inc();
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
        self.active.store(subs.len(), Ordering::Relaxed);
        seq
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> TraceBusStats {
        TraceBusStats {
            emitted: self.seq.load(Ordering::Relaxed),
            dropped: self.dropped.get(),
            subscribers: self.active.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_subscribers_is_a_noop() {
        let bus = TraceBus::new();
        assert!(!bus.is_active());
        assert_eq!(bus.emit("t", "e", vec![]), 0);
    }

    #[test]
    fn subscribers_see_records_in_order() {
        let bus = TraceBus::new();
        let rx = bus.subscribe();
        bus.emit("detector", "detection", vec![("event", Field::from("E1"))]);
        bus.emit("scheduler", "action", vec![("rule", Field::from("R1")), ("ok", true.into())]);
        let a = rx.try_recv().unwrap();
        let b = rx.try_recv().unwrap();
        assert_eq!((a.seq, a.subsystem, a.event), (1, "detector", "detection"));
        assert_eq!(b.seq, 2);
        assert_eq!(b.field("rule"), Some(&Field::from("R1")));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let bus = TraceBus::new();
        let rx1 = bus.subscribe();
        let rx2 = bus.subscribe();
        drop(rx1);
        bus.emit("t", "e", vec![]);
        assert_eq!(rx2.try_recv().unwrap().seq, 1);
        // rx1's sender was pruned on the emit above.
        assert!(bus.is_active());
        drop(rx2);
        bus.emit("t", "e", vec![]);
        assert!(!bus.is_active());
    }

    #[test]
    fn slow_subscriber_drops_instead_of_buffering() {
        let bus = TraceBus::new();
        let rx = bus.subscribe_with_capacity(2);
        for _ in 0..5 {
            bus.emit("t", "e", vec![]);
        }
        let stats = bus.stats();
        assert_eq!(stats.emitted, 5);
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.subscribers, 1);
        // The two oldest undropped records are still deliverable.
        assert_eq!(rx.try_recv().unwrap().seq, 1);
        assert_eq!(rx.try_recv().unwrap().seq, 2);
        assert!(rx.try_recv().is_err());
        // Catching up resumes delivery.
        bus.emit("t", "e", vec![]);
        assert_eq!(rx.try_recv().unwrap().seq, 6);
        assert_eq!(
            bus.stats().to_json().to_string(),
            r#"{"emitted":6,"dropped":3,"subscribers":1}"#
        );
    }

    #[test]
    fn record_renders_as_text_and_json() {
        let r = TraceRecord {
            seq: 7,
            subsystem: "scheduler",
            event: "panic",
            fields: vec![("rule", Field::from("R9")), ("depth", Field::U64(2))],
        };
        assert_eq!(r.to_string(), "[     7] scheduler/panic rule=R9 depth=2");
        assert_eq!(
            r.to_json().to_string(),
            r#"{"seq":7,"subsystem":"scheduler","event":"panic","rule":"R9","depth":2}"#
        );
    }
}
