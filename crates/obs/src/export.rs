//! Chrome trace-event export.
//!
//! Renders a set of [`SpanRecord`]s as the Chrome trace-event JSON format
//! (`{"traceEvents":[...]}`), loadable in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing`. Each span becomes one complete (`"ph":"X"`) event;
//! composite detections additionally emit flow events (`"ph":"s"`/`"f"`)
//! from each constituent span so the causal links render as arrows.
//!
//! Layout: `pid` is the trace id (Perfetto groups each causal chain into
//! its own process track) and `tid` is the cascade depth, so a cascade
//! reads top-to-bottom as it deepens. Span/parent/link ids and all typed
//! fields ride along in `args`.

use crate::json::Value;
use crate::span::SpanRecord;

/// Converts nanoseconds-since-epoch to the microsecond float timestamps
/// the trace-event format wants, keeping sub-microsecond precision.
fn us(ns: u64) -> Value {
    Value::Float(ns as f64 / 1_000.0)
}

fn event_args(span: &SpanRecord) -> Value {
    let mut pairs = vec![
        ("trace".to_string(), Value::UInt(span.trace.0)),
        ("span".to_string(), Value::UInt(span.span.0)),
        ("parent".to_string(), span.parent.map_or(Value::Null, |p| Value::UInt(p.0))),
        ("kind".to_string(), Value::str(span.kind)),
        ("depth".to_string(), Value::UInt(u64::from(span.depth))),
    ];
    if !span.links.is_empty() {
        pairs.push((
            "links".to_string(),
            Value::Arr(span.links.iter().map(|l| Value::UInt(l.span.0)).collect()),
        ));
    }
    for (k, v) in &span.fields {
        pairs.push((k.to_string(), v.to_json()));
    }
    Value::Obj(pairs)
}

/// One complete ("X") event for a span.
fn complete_event(span: &SpanRecord) -> Value {
    Value::obj([
        ("name", Value::str(format!("{}:{}", span.kind, span.name))),
        ("cat", Value::str(span.kind)),
        ("ph", Value::str("X")),
        ("ts", us(span.start_ns)),
        // Zero-duration slices are invisible in Perfetto; clamp up to 1ns.
        ("dur", us(span.duration_ns().max(1))),
        ("pid", Value::UInt(span.trace.0)),
        ("tid", Value::UInt(u64::from(span.depth))),
        ("args", event_args(span)),
    ])
}

/// A flow step ("s" start at the link source, "f" finish at `span`) so the
/// constituent → composite links draw as arrows.
fn flow_events(span: &SpanRecord, out: &mut Vec<Value>) {
    for link in &span.links {
        let id = link.span.0;
        out.push(Value::obj([
            ("name", Value::str("constituent")),
            ("cat", Value::str("link")),
            ("ph", Value::str("s")),
            ("ts", us(span.start_ns)),
            ("pid", Value::UInt(link.trace.0)),
            ("tid", Value::UInt(0)),
            ("id", Value::UInt(id)),
        ]));
        out.push(Value::obj([
            ("name", Value::str("constituent")),
            ("cat", Value::str("link")),
            ("ph", Value::str("f")),
            ("bp", Value::str("e")),
            ("ts", us(span.end_ns.max(span.start_ns + 1))),
            ("pid", Value::UInt(span.trace.0)),
            ("tid", Value::UInt(u64::from(span.depth))),
            ("id", Value::UInt(id)),
        ]));
    }
}

/// Renders `spans` as a Chrome trace-event document
/// (`{"traceEvents":[...],"displayTimeUnit":"ns"}`).
pub fn to_chrome_trace(spans: &[SpanRecord]) -> Value {
    let mut events = Vec::with_capacity(spans.len());
    for span in spans {
        events.push(complete_event(span));
        flow_events(span, &mut events);
    }
    Value::obj([("traceEvents", Value::Arr(events)), ("displayTimeUnit", Value::str("ns"))])
}

/// Renders `spans` as Chrome trace-event JSON text.
pub fn to_chrome_trace_json(spans: &[SpanRecord]) -> String {
    to_chrome_trace(spans).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanContext, SpanId, TraceId};
    use crate::trace::Field;
    use std::sync::Arc;

    fn span(trace: u64, id: u64, parent: Option<u64>, links: &[u64]) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            span: SpanId(id),
            parent: parent.map(SpanId),
            links: links
                .iter()
                .map(|&s| SpanContext { trace: TraceId(trace), span: SpanId(s) })
                .collect(),
            kind: "detect",
            name: Arc::from("seq"),
            start_ns: 1_500,
            end_ns: 4_000,
            depth: 1,
            fields: vec![("context", Field::from("recent"))],
        }
    }

    #[test]
    fn export_parses_and_carries_span_identity() {
        let doc = to_chrome_trace(&[span(7, 3, Some(2), &[1, 2])]);
        let parsed = Value::parse(&doc.to_string()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 complete event + 2 links × 2 flow halves.
        assert_eq!(events.len(), 5);
        let x = &events[0];
        assert_eq!(x.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(x.get("name").unwrap().as_str(), Some("detect:seq"));
        assert_eq!(x.get("pid").unwrap().as_u64(), Some(7));
        let args = x.get("args").unwrap();
        assert_eq!(args.get("span").unwrap().as_u64(), Some(3));
        assert_eq!(args.get("parent").unwrap().as_u64(), Some(2));
        assert_eq!(args.get("context").unwrap().as_str(), Some("recent"));
        assert_eq!(args.get("links").unwrap().as_arr().unwrap().len(), 2);
        // Flow halves pair up by id.
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("s"));
        assert_eq!(events[2].get("ph").unwrap().as_str(), Some("f"));
        assert_eq!(events[1].get("id").unwrap(), events[2].get("id").unwrap());
    }

    #[test]
    fn timestamps_are_microseconds() {
        let doc = to_chrome_trace(&[span(1, 1, None, &[])]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events[0].get("ts").unwrap(), &Value::Float(1.5));
        assert_eq!(events[0].get("dur").unwrap(), &Value::Float(2.5));
    }
}
