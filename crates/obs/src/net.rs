//! Network-layer observability: counters for the `sentinel-net`
//! client/server subsystem.
//!
//! The server owns one [`NetMetrics`] and bumps it from every connection
//! thread (all counters are relaxed atomics, same discipline as the rest
//! of this crate); [`NetMetrics::snapshot`] produces the plain-data
//! [`NetStats`] that the server merges into the `SentinelStats` JSON as a
//! `net` section.

use crate::{json, Counter, Gauge};

/// Live counters for one network server.
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Connections accepted over the server's lifetime.
    pub connections_opened: Counter,
    /// Connections refused because the acceptor pool was full.
    pub connections_refused: Counter,
    /// Currently-open connections (with high-watermark).
    pub connections_active: Gauge,
    /// Sessions authenticated by name (`Hello` accepted).
    pub sessions: Counter,
    /// Well-formed frames read from clients.
    pub frames_in: Counter,
    /// Frames written to clients (responses).
    pub frames_out: Counter,
    /// Bytes read from clients (framed traffic only).
    pub bytes_in: Counter,
    /// Bytes written to clients.
    pub bytes_out: Counter,
    /// Malformed/oversized/unknown frames (connection is closed after one).
    pub decode_errors: Counter,
    /// Signals rejected with a `Busy` frame by backpressure limits.
    pub busy_rejections: Counter,
    /// Event loops the reactor backend runs (0 under thread-per-connection).
    pub event_loops: Gauge,
    /// `epoll_wait` returns across all reactor loops.
    pub epoll_wakeups: Counter,
    /// Writes that could not complete in one syscall and left bytes queued
    /// for `EPOLLOUT` resumption.
    pub partial_writes: Counter,
    /// Connections evicted because a mid-frame read or a pending write
    /// made no progress for the stall timeout (half-open/SIGSTOP'd peers).
    pub stall_evictions: Counter,
    /// Connections evicted because their bounded write queue overflowed
    /// (a peer requesting faster than it reads).
    pub overflow_evictions: Counter,
    /// Deepest per-connection write queue observed, in bytes.
    pub write_queue_hwm: Gauge,
}

impl NetMetrics {
    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> NetStats {
        NetStats {
            connections_opened: self.connections_opened.get(),
            connections_refused: self.connections_refused.get(),
            connections_active: self.connections_active.get(),
            connections_hwm: self.connections_active.high_watermark(),
            sessions: self.sessions.get(),
            frames_in: self.frames_in.get(),
            frames_out: self.frames_out.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            decode_errors: self.decode_errors.get(),
            busy_rejections: self.busy_rejections.get(),
            event_loops: self.event_loops.get(),
            epoll_wakeups: self.epoll_wakeups.get(),
            partial_writes: self.partial_writes.get(),
            stall_evictions: self.stall_evictions.get(),
            overflow_evictions: self.overflow_evictions.get(),
            write_queue_hwm: self.write_queue_hwm.high_watermark(),
        }
    }
}

/// Plain-data snapshot of [`NetMetrics`] (the `net` stats section).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub connections_opened: u64,
    /// Connections refused because the acceptor pool was full.
    pub connections_refused: u64,
    /// Currently-open connections.
    pub connections_active: u64,
    /// Highest concurrent connection count observed.
    pub connections_hwm: u64,
    /// Sessions authenticated by name.
    pub sessions: u64,
    /// Well-formed frames read from clients.
    pub frames_in: u64,
    /// Frames written to clients.
    pub frames_out: u64,
    /// Bytes read from clients.
    pub bytes_in: u64,
    /// Bytes written to clients.
    pub bytes_out: u64,
    /// Malformed/oversized/unknown frames seen.
    pub decode_errors: u64,
    /// Signals rejected with a `Busy` frame.
    pub busy_rejections: u64,
    /// Event loops the reactor backend runs.
    pub event_loops: u64,
    /// `epoll_wait` returns across all reactor loops.
    pub epoll_wakeups: u64,
    /// Writes resumed later under `EPOLLOUT`.
    pub partial_writes: u64,
    /// Connections evicted for stalling mid-frame or mid-write.
    pub stall_evictions: u64,
    /// Connections evicted for overflowing their bounded write queue.
    pub overflow_evictions: u64,
    /// Deepest per-connection write queue observed, in bytes.
    pub write_queue_hwm: u64,
}

impl NetStats {
    /// Renders as a JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> json::Value {
        json::Value::obj([
            ("connections_opened", json::Value::UInt(self.connections_opened)),
            ("connections_refused", json::Value::UInt(self.connections_refused)),
            ("connections_active", json::Value::UInt(self.connections_active)),
            ("connections_hwm", json::Value::UInt(self.connections_hwm)),
            ("sessions", json::Value::UInt(self.sessions)),
            ("frames_in", json::Value::UInt(self.frames_in)),
            ("frames_out", json::Value::UInt(self.frames_out)),
            ("bytes_in", json::Value::UInt(self.bytes_in)),
            ("bytes_out", json::Value::UInt(self.bytes_out)),
            ("decode_errors", json::Value::UInt(self.decode_errors)),
            ("busy_rejections", json::Value::UInt(self.busy_rejections)),
            ("event_loops", json::Value::UInt(self.event_loops)),
            ("epoll_wakeups", json::Value::UInt(self.epoll_wakeups)),
            ("partial_writes", json::Value::UInt(self.partial_writes)),
            ("stall_evictions", json::Value::UInt(self.stall_evictions)),
            ("overflow_evictions", json::Value::UInt(self.overflow_evictions)),
            ("write_queue_hwm", json::Value::UInt(self.write_queue_hwm)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters_and_hwm() {
        let m = NetMetrics::default();
        m.connections_opened.inc();
        m.connections_active.set(3);
        m.connections_active.set(1);
        m.frames_in.add(10);
        m.busy_rejections.inc();
        let s = m.snapshot();
        assert_eq!(s.connections_opened, 1);
        assert_eq!(s.connections_active, 1);
        assert_eq!(s.connections_hwm, 3);
        assert_eq!(s.frames_in, 10);
        assert_eq!(s.busy_rejections, 1);
    }

    #[test]
    fn json_shape_is_stable() {
        let s = NetStats { frames_in: 2, ..NetStats::default() };
        let j = s.to_json();
        assert_eq!(j.get("frames_in").and_then(json::Value::as_u64), Some(2));
        assert_eq!(j.get("decode_errors").and_then(json::Value::as_u64), Some(0));
    }
}
