//! A minimal JSON value with a compact `Display`.
//!
//! The vendored `serde` shim is a no-op derive (no real serialization),
//! so stats snapshots render themselves through this value type instead.
//! Output is deterministic: object keys appear in insertion order.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Looks a key up in an object (None for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::UInt(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::Float(x) if x.is_finite() => write!(f, "{x}"),
            Value::Float(_) => f.write_str("null"),
            Value::Str(s) => escape(s, f),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = Value::obj([
            ("name", Value::str("R1 \"stock\"\n")),
            ("fired", Value::UInt(3)),
            ("delta", Value::Int(-2)),
            ("ratio", Value::Float(0.5)),
            ("tags", Value::Arr(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"R1 \"stock\"\n","fired":3,"delta":-2,"ratio":0.5,"tags":[true,null]}"#
        );
    }

    #[test]
    fn object_lookup() {
        let v = Value::obj([("a", Value::UInt(1)), ("b", Value::Int(2))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_u64), Some(2));
        assert!(v.get("c").is_none());
        assert!(Value::Null.get("a").is_none());
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Value::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(Value::str("\u{1}").to_string(), "\"\\u0001\"");
    }
}
