//! A minimal JSON value with a compact `Display`.
//!
//! The vendored `serde` shim is a no-op derive (no real serialization),
//! so stats snapshots render themselves through this value type instead.
//! Output is deterministic: object keys appear in insertion order.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Looks a key up in an object (None for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document. Strict enough to validate our own output:
    /// rejects trailing garbage, trailing commas, and malformed literals.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

/// A JSON parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the failure.
    pub message: &'static str,
    /// Byte offset in the input where it was detected.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError { message, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The skipped run is valid UTF-8 because the input is &str and
            // we only stopped on ASCII boundaries.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Unpaired surrogates degrade to U+FFFD; our
                            // own escaper never emits surrogate pairs.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::UInt(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::Float(x) if x.is_finite() => write!(f, "{x}"),
            Value::Float(_) => f.write_str("null"),
            Value::Str(s) => escape(s, f),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = Value::obj([
            ("name", Value::str("R1 \"stock\"\n")),
            ("fired", Value::UInt(3)),
            ("delta", Value::Int(-2)),
            ("ratio", Value::Float(0.5)),
            ("tags", Value::Arr(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"R1 \"stock\"\n","fired":3,"delta":-2,"ratio":0.5,"tags":[true,null]}"#
        );
    }

    #[test]
    fn object_lookup() {
        let v = Value::obj([("a", Value::UInt(1)), ("b", Value::Int(2))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_u64), Some(2));
        assert!(v.get("c").is_none());
        assert!(Value::Null.get("a").is_none());
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Value::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(Value::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn parse_roundtrips_rendered_values() {
        let v = Value::obj([
            ("name", Value::str("R1 \"stock\"\nß")),
            ("fired", Value::UInt(3)),
            ("delta", Value::Int(-2)),
            ("ratio", Value::Float(0.5)),
            ("tags", Value::Arr(vec![Value::Bool(true), Value::Null, Value::Arr(vec![])])),
            ("empty", Value::Obj(vec![])),
        ]);
        let parsed = Value::parse(&v.to_string()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let parsed = Value::parse(" { \"a\" : [ 1 , \"\\u0041\\t\" ] } ").unwrap();
        assert_eq!(parsed.get("a").unwrap().as_arr().unwrap()[1].as_str(), Some("A\t"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":1,}", "trueX", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
