//! Observability primitives for Sentinel.
//!
//! The paper's architecture (§4) threads event detection, rule scheduling
//! and storage through several cooperating subsystems; this crate gives
//! each of them a uniform, allocation-light way to count, time, and
//! narrate what it is doing:
//!
//! * [`Counter`] — monotone relaxed atomic counter.
//! * [`Gauge`] — instantaneous level with a high-watermark (queue depths).
//! * [`Histogram`] — log-linear-bucketed latency histogram (nanoseconds,
//!   ≤ 12.5% relative quantile error).
//! * [`json`] — a tiny hand-rolled JSON value for serializable snapshots
//!   (the vendored `serde` shim has no real serialization, so snapshots
//!   render themselves).
//! * [`trace`] — a broadcast bus of structured [`trace::TraceRecord`]s
//!   that the rule debugger and the `beast` bench binary both consume.
//! * [`span`] — causal provenance: trace/span ids carried from primitive
//!   `Notify` through composite detection to rule condition/action, with
//!   a ring-buffer [`span::TraceStore`] and query API.
//! * [`export`] — Chrome trace-event JSON rendering of recorded spans,
//!   loadable in Perfetto.
//! * [`net`] — counters for the `sentinel-net` client/server subsystem
//!   (connections, frames, decode errors, busy rejections).
//! * [`durability`] — counters for the `sentinel-durable` subsystem
//!   (journal appends/bytes/fsyncs, checkpoint durations) plus the
//!   structured recovery report.
//! * [`repl`] — the `replication` stats section a clustered node reports
//!   (log tip, per-follower lag, a replica's apply watermark).
//! * [`timeseries`] — a lock-cheap time-series registry: fixed-interval
//!   ring buffers of counter deltas and gauge levels, sampled by a 1 Hz
//!   thread, snapshotted as JSON for live dashboards.
//! * [`prom`] — Prometheus-style text exposition of counters, gauges and
//!   histograms, for standard scrapers hitting `GET /metrics`.
//! * [`flight`] — the crash flight recorder: an always-on bounded ring of
//!   the last N notable events, dumped to `flight-recorder.json` on panic
//!   and merged into the recovery report after a crash.
//!
//! Everything here is wait-free or a short critical section; when no one
//! is listening the trace bus is a single relaxed atomic load.

pub mod durability;
pub mod export;
pub mod flight;
pub mod json;
pub mod net;
pub mod prom;
pub mod repl;
pub mod span;
pub mod timeseries;
pub mod trace;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub use durability::{DurabilityMetrics, DurabilityStats, RecoveryReport};
pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use net::{NetMetrics, NetStats};
pub use prom::PromText;
pub use repl::{FollowerLag, ReplicationStats};
pub use span::{SpanContext, SpanId, SpanRecord, TraceId, TraceStore};
pub use timeseries::{Sample, SampleKind, SamplerHandle, TimeSeriesRegistry};
pub use trace::{Field, TraceBus, TraceBusStats, TraceRecord};

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotone event counter. All operations are relaxed: counters are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// An instantaneous level (e.g. queue depth) that remembers the highest
/// value it was ever set to.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    hwm: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge { value: AtomicU64::new(0), hwm: AtomicU64::new(0) }
    }

    /// Sets the current level and folds it into the high-watermark.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.hwm.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever observed.
    pub fn high_watermark(&self) -> u64 {
        self.hwm.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Log-linear sub-bucket resolution: each power-of-two octave is split
/// into `2^HISTOGRAM_SUB_BITS` linear sub-buckets, bounding the relative
/// quantile error at `2^-HISTOGRAM_SUB_BITS` (12.5%). The original log₄
/// buckets clamped p99 to a 4× bucket upper bound, which made tail
/// latencies useless for regression tracking.
pub const HISTOGRAM_SUB_BITS: usize = 3;

const HISTOGRAM_LINEAR: usize = 1 << HISTOGRAM_SUB_BITS;

/// Highest power of two with its own octave of buckets; samples at or
/// above `2^(HISTOGRAM_MAX_OCTAVE+1)` ns (≈ 73 min) land in the
/// open-ended last bucket.
const HISTOGRAM_MAX_OCTAVE: usize = 41;

/// Number of log-linear buckets: values below `2^HISTOGRAM_SUB_BITS` get
/// one exact bucket each; every octave above that gets
/// `2^HISTOGRAM_SUB_BITS` linear sub-buckets, up to an open-ended last
/// bucket starting around 2^42 ns.
pub const HISTOGRAM_BUCKETS: usize =
    (HISTOGRAM_MAX_OCTAVE - HISTOGRAM_SUB_BITS + 2) * HISTOGRAM_LINEAR;

/// A fixed-size log-linear histogram of nanosecond samples. Recording is
/// three relaxed atomic RMWs; snapshots are approximate under
/// concurrency, which is fine for statistics.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Inclusive upper bound, in ns, of log-linear bucket `i`. The last
/// bucket is open-ended (`u64::MAX`).
pub fn bucket_upper_bound_ns(i: usize) -> u64 {
    if i + 1 >= HISTOGRAM_BUCKETS {
        return u64::MAX;
    }
    if i < HISTOGRAM_LINEAR {
        return i as u64;
    }
    let octave = i / HISTOGRAM_LINEAR - 1 + HISTOGRAM_SUB_BITS;
    let sub = (i % HISTOGRAM_LINEAR) as u64;
    let step = 1u64 << (octave - HISTOGRAM_SUB_BITS);
    (1u64 << octave) + (sub + 1) * step - 1
}

impl Histogram {
    pub const fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Bucket index for a nanosecond sample: exact below
    /// `2^HISTOGRAM_SUB_BITS`, then the top `HISTOGRAM_SUB_BITS + 1` bits
    /// pick the octave and linear sub-bucket; clamped into the open-ended
    /// last bucket.
    fn bucket_of(ns: u64) -> usize {
        if ns < HISTOGRAM_LINEAR as u64 {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros() as usize;
        let sub = ((ns >> (msb - HISTOGRAM_SUB_BITS)) as usize) & (HISTOGRAM_LINEAR - 1);
        let idx = (msb - HISTOGRAM_SUB_BITS + 1) * HISTOGRAM_LINEAR + sub;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample, in nanoseconds.
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records an elapsed [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, ns.
    pub sum: u64,
    /// Largest sample, ns.
    pub max: u64,
    /// Per-bucket sample counts (see [`bucket_upper_bound_ns`] for the
    /// log-linear bucket bounds).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { count: 0, sum: 0, max: 0, buckets: [0; HISTOGRAM_BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the upper
    /// bound of the log-linear bucket holding the q-th sample, clamped to
    /// the largest sample seen. Relative error is at most
    /// `2^-HISTOGRAM_SUB_BITS` (12.5%); exact below 8 ns; 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based, clamped into [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // The last bucket is open-ended, so the max sample stands
                // in for its bound.
                return bucket_upper_bound_ns(i).min(self.max);
            }
        }
        self.max
    }

    /// Approximate median, ns.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// Approximate 95th percentile, ns.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// Approximate 99th percentile, ns.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Renders as a JSON object (`count`/`sum_ns`/`mean_ns`/`max_ns`,
    /// approximate `p50/p95/p99_ns`, plus the non-empty tail of
    /// `buckets`).
    pub fn to_json(&self) -> json::Value {
        let used = self.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        json::Value::obj([
            ("count", json::Value::UInt(self.count)),
            ("sum_ns", json::Value::UInt(self.sum)),
            ("mean_ns", json::Value::UInt(self.mean_ns())),
            ("max_ns", json::Value::UInt(self.max)),
            ("p50_ns", json::Value::UInt(self.p50_ns())),
            ("p95_ns", json::Value::UInt(self.p95_ns())),
            ("p99_ns", json::Value::UInt(self.p99_ns())),
            (
                "buckets",
                json::Value::Arr(
                    self.buckets[..used].iter().map(|&b| json::Value::UInt(b)).collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_watermark() {
        let g = Gauge::new();
        g.set(3);
        g.set(9);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_watermark(), 9);
    }

    #[test]
    fn histogram_buckets_log_linear() {
        // Exact buckets below 2^SUB_BITS.
        for ns in 0..HISTOGRAM_LINEAR as u64 {
            assert_eq!(Histogram::bucket_of(ns), ns as usize);
        }
        // Each octave splits into 8 linear sub-buckets.
        assert_eq!(Histogram::bucket_of(8), 8);
        assert_eq!(Histogram::bucket_of(15), 15);
        assert_eq!(Histogram::bucket_of(16), 16);
        assert_eq!(Histogram::bucket_of(17), 16);
        assert_eq!(Histogram::bucket_of(18), 17);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Bounds are consistent with indexing: every bucket's inclusive
        // upper bound maps back into the bucket, and its successor does
        // not (except in the open-ended tail).
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let upper = bucket_upper_bound_ns(i);
            assert_eq!(Histogram::bucket_of(upper), i, "upper bound of bucket {i}");
            assert_eq!(Histogram::bucket_of(upper + 1), i + 1);
        }
        assert_eq!(bucket_upper_bound_ns(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_snapshot_statistics() {
        let h = Histogram::new();
        for ns in [1, 5, 17, 17, 1000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1040);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean_ns(), 208);
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[5], 1); // 5
        assert_eq!(s.buckets[16], 2); // 17, 17 in [16, 18)
        assert_eq!(s.buckets[63], 1); // 1000 in [960, 1024)
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn histogram_json_trims_empty_tail() {
        let h = Histogram::new();
        h.record(2);
        h.record(20);
        let s = h.snapshot();
        let rendered = s.to_json().to_string();
        // 20 ns lands in bucket 18 ([18, 20) is bucket 17; [20, 22) is
        // bucket 18), so the trimmed bucket array has 19 entries.
        assert!(rendered.starts_with(r#"{"count":2,"sum_ns":22,"mean_ns":11,"max_ns":20,"#));
        assert!(rendered.contains(r#""p50_ns":2,"p95_ns":20,"p99_ns":20"#));
        let parsed = json::Value::parse(&rendered).unwrap();
        assert_eq!(parsed.get("buckets").and_then(json::Value::as_arr).unwrap().len(), 19);
    }

    #[test]
    fn histogram_quantiles_clamp_to_bucket_upper_bound() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.p50_ns(), 0);

        let h = Histogram::new();
        // 98 fast samples (exact bucket), one mid sample, one outlier.
        for _ in 0..98 {
            h.record(2);
        }
        h.record(20);
        h.record(5_000);
        let s = h.snapshot();
        assert_eq!(s.p50_ns(), 2); // exact below 8 ns
        assert_eq!(s.p95_ns(), 2);
        assert_eq!(s.quantile_ns(0.99), 21); // 99th sample is the 20 ns one
        assert_eq!(s.quantile_ns(1.0), 5_000); // clamped to max, not 5119

        // Everything in the open-ended last bucket reports the max.
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.snapshot().p50_ns(), u64::MAX);
    }

    #[test]
    fn histogram_quantile_error_is_bounded_against_exact_samples() {
        // Deterministic pseudo-random samples spanning ns..tens of ms.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut samples = Vec::with_capacity(10_000);
        let h = Histogram::new();
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Log-uniform-ish spread: scale by a shifted exponent.
            let shift = (x >> 58) % 26; // octaves 0..25 (~33 ms)
            let ns = (x >> 32) % (1u64 << (shift + 1)).max(2);
            samples.push(ns);
            h.record(ns);
        }
        samples.sort_unstable();
        let s = h.snapshot();
        for q in [0.10, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let approx = s.quantile_ns(q);
            assert!(approx >= exact, "q={q}: approx {approx} below exact {exact}");
            let bound = exact + exact / (1 << HISTOGRAM_SUB_BITS) as u64 + 1;
            assert!(approx <= bound, "q={q}: approx {approx} exceeds {bound} (exact {exact})");
        }
    }

    #[test]
    fn concurrent_counting_is_exact() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
