//! Observability primitives for Sentinel.
//!
//! The paper's architecture (§4) threads event detection, rule scheduling
//! and storage through several cooperating subsystems; this crate gives
//! each of them a uniform, allocation-light way to count, time, and
//! narrate what it is doing:
//!
//! * [`Counter`] — monotone relaxed atomic counter.
//! * [`Gauge`] — instantaneous level with a high-watermark (queue depths).
//! * [`Histogram`] — log₄-bucketed latency histogram (nanoseconds).
//! * [`json`] — a tiny hand-rolled JSON value for serializable snapshots
//!   (the vendored `serde` shim has no real serialization, so snapshots
//!   render themselves).
//! * [`trace`] — a broadcast bus of structured [`trace::TraceRecord`]s
//!   that the rule debugger and the `beast` bench binary both consume.
//! * [`span`] — causal provenance: trace/span ids carried from primitive
//!   `Notify` through composite detection to rule condition/action, with
//!   a ring-buffer [`span::TraceStore`] and query API.
//! * [`export`] — Chrome trace-event JSON rendering of recorded spans,
//!   loadable in Perfetto.
//! * [`net`] — counters for the `sentinel-net` client/server subsystem
//!   (connections, frames, decode errors, busy rejections).
//! * [`durability`] — counters for the `sentinel-durable` subsystem
//!   (journal appends/bytes/fsyncs, checkpoint durations) plus the
//!   structured recovery report.
//!
//! Everything here is wait-free or a short critical section; when no one
//! is listening the trace bus is a single relaxed atomic load.

pub mod durability;
pub mod export;
pub mod json;
pub mod net;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub use durability::{DurabilityMetrics, DurabilityStats, RecoveryReport};
pub use net::{NetMetrics, NetStats};
pub use span::{SpanContext, SpanId, SpanRecord, TraceId, TraceStore};
pub use trace::{Field, TraceBus, TraceBusStats, TraceRecord};

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotone event counter. All operations are relaxed: counters are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// An instantaneous level (e.g. queue depth) that remembers the highest
/// value it was ever set to.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    hwm: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge { value: AtomicU64::new(0), hwm: AtomicU64::new(0) }
    }

    /// Sets the current level and folds it into the high-watermark.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.hwm.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever observed.
    pub fn high_watermark(&self) -> u64 {
        self.hwm.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Number of log₄ buckets. Bucket `i` holds samples in
/// `[4^i, 4^(i+1))` ns (bucket 0 also takes 0); bucket 15 is open-ended,
/// starting at 4^15 ns ≈ 18 minutes — plenty for rule wall-times.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A fixed-size log₄ histogram of nanosecond samples. Recording is three
/// relaxed atomic RMWs; snapshots are approximate under concurrency,
/// which is fine for statistics.
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    pub const fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Bucket index for a nanosecond sample: ⌊log₄ ns⌋, clamped.
    fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            return 0;
        }
        let log2 = 63 - ns.leading_zeros() as usize;
        (log2 / 2).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample, in nanoseconds.
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records an elapsed [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, ns.
    pub sum: u64,
    /// Largest sample, ns.
    pub max: u64,
    /// Per-bucket sample counts (bucket `i` covers `[4^i, 4^(i+1))` ns).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the upper
    /// bound of the bucket holding the q-th sample, clamped to the largest
    /// sample seen. Resolution is the 4× bucket width; 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based, clamped into [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Upper bound of bucket i is 4^(i+1) - 1; the last bucket
                // is open-ended, so the max sample stands in for it.
                let upper =
                    if i + 1 >= HISTOGRAM_BUCKETS { self.max } else { (1u64 << (2 * (i + 1))) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Approximate median, ns.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// Approximate 95th percentile, ns.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// Approximate 99th percentile, ns.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Renders as a JSON object (`count`/`sum_ns`/`mean_ns`/`max_ns`,
    /// approximate `p50/p95/p99_ns`, plus the non-empty tail of
    /// `buckets`).
    pub fn to_json(&self) -> json::Value {
        let used = self.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        json::Value::obj([
            ("count", json::Value::UInt(self.count)),
            ("sum_ns", json::Value::UInt(self.sum)),
            ("mean_ns", json::Value::UInt(self.mean_ns())),
            ("max_ns", json::Value::UInt(self.max)),
            ("p50_ns", json::Value::UInt(self.p50_ns())),
            ("p95_ns", json::Value::UInt(self.p95_ns())),
            ("p99_ns", json::Value::UInt(self.p99_ns())),
            (
                "buckets",
                json::Value::Arr(
                    self.buckets[..used].iter().map(|&b| json::Value::UInt(b)).collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_watermark() {
        let g = Gauge::new();
        g.set(3);
        g.set(9);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_watermark(), 9);
    }

    #[test]
    fn histogram_buckets_by_log4() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(3), 0);
        assert_eq!(Histogram::bucket_of(4), 1);
        assert_eq!(Histogram::bucket_of(15), 1);
        assert_eq!(Histogram::bucket_of(16), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_snapshot_statistics() {
        let h = Histogram::new();
        for ns in [1, 5, 17, 17, 1000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1040);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean_ns(), 208);
        assert_eq!(s.buckets[0], 1); // 1
        assert_eq!(s.buckets[1], 1); // 5
        assert_eq!(s.buckets[2], 2); // 17, 17
        assert_eq!(s.buckets[4], 1); // 1000 in [256, 1024)
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn histogram_json_trims_empty_tail() {
        let h = Histogram::new();
        h.record(2);
        h.record(20);
        let rendered = h.snapshot().to_json().to_string();
        assert_eq!(
            rendered,
            concat!(
                r#"{"count":2,"sum_ns":22,"mean_ns":11,"max_ns":20,"#,
                r#""p50_ns":3,"p95_ns":20,"p99_ns":20,"buckets":[1,0,1]}"#
            )
        );
    }

    #[test]
    fn histogram_quantiles_approximate_by_bucket_upper_bound() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.p50_ns(), 0);

        let h = Histogram::new();
        // 98 fast samples in bucket 0, one in bucket 2, one slow outlier.
        for _ in 0..98 {
            h.record(2);
        }
        h.record(20);
        h.record(5_000);
        let s = h.snapshot();
        assert_eq!(s.p50_ns(), 3); // bucket 0 upper bound
        assert_eq!(s.p95_ns(), 3);
        assert_eq!(s.quantile_ns(0.99), 63); // 99th sample is the 20ns one
        assert_eq!(s.quantile_ns(1.0), 5_000); // clamped to max, not 4^7-1

        // Everything in the open-ended last bucket reports the max.
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.snapshot().p50_ns(), u64::MAX);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
