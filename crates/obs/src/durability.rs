//! Durability-layer observability: counters for the `sentinel-durable`
//! subsystem (catalog + event journal + checkpoints) and the structured
//! recovery report produced when a data directory is reopened.
//!
//! The durable engine owns one [`DurabilityMetrics`] and bumps it from the
//! signalling threads (relaxed atomics, same discipline as the rest of
//! this crate); [`DurabilityMetrics::snapshot`] produces the plain-data
//! [`DurabilityStats`] that `Sentinel::stats()` merges into the
//! `SentinelStats` JSON as a `durability` section.

use crate::{json, Counter, Gauge, Histogram, HistogramSnapshot};

/// Live counters for one durable engine.
#[derive(Debug, Default)]
pub struct DurabilityMetrics {
    /// Events appended to the journal.
    pub journal_appends: Counter,
    /// Payload bytes appended to the journal (excluding frame headers).
    pub journal_bytes: Counter,
    /// `fsync` calls issued for the event journal.
    pub journal_fsyncs: Counter,
    /// Journal segment rotations.
    pub journal_rotations: Counter,
    /// DDL operations appended to the catalog.
    pub catalog_appends: Counter,
    /// Checkpoints written successfully.
    pub checkpoints: Counter,
    /// Checkpoint attempts that failed (I/O errors; the journal still
    /// covers the state, recovery just replays more).
    pub checkpoint_failures: Counter,
    /// Bytes written into checkpoint files.
    pub checkpoint_bytes: Counter,
    /// Wall time per checkpoint write, ns.
    pub checkpoint_duration: Histogram,
    /// Journal record index the newest checkpoint covers.
    pub last_checkpoint_tag: Gauge,
    /// Group commits performed (one per committer fsync batch).
    pub group_commits: Counter,
    /// Journal records made durable by group commits (batch sizes sum).
    pub group_commit_records: Counter,
    /// Wall time per group-commit flush (all dirty streams), ns.
    pub group_commit_flush: Histogram,
    /// Fence records appended to the journal.
    pub journal_fences: Counter,
}

impl DurabilityMetrics {
    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> DurabilityStats {
        DurabilityStats {
            journal_appends: self.journal_appends.get(),
            journal_bytes: self.journal_bytes.get(),
            journal_fsyncs: self.journal_fsyncs.get(),
            journal_rotations: self.journal_rotations.get(),
            catalog_appends: self.catalog_appends.get(),
            checkpoints: self.checkpoints.get(),
            checkpoint_failures: self.checkpoint_failures.get(),
            checkpoint_bytes: self.checkpoint_bytes.get(),
            checkpoint_duration: self.checkpoint_duration.snapshot(),
            last_checkpoint_tag: self.last_checkpoint_tag.get(),
            group_commits: self.group_commits.get(),
            group_commit_records: self.group_commit_records.get(),
            group_commit_flush: self.group_commit_flush.snapshot(),
            journal_fences: self.journal_fences.get(),
        }
    }
}

/// Plain-data snapshot of [`DurabilityMetrics`] (the `durability` stats
/// section).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Events appended to the journal.
    pub journal_appends: u64,
    /// Payload bytes appended to the journal.
    pub journal_bytes: u64,
    /// `fsync` calls issued for the event journal.
    pub journal_fsyncs: u64,
    /// Journal segment rotations.
    pub journal_rotations: u64,
    /// DDL operations appended to the catalog.
    pub catalog_appends: u64,
    /// Checkpoints written successfully.
    pub checkpoints: u64,
    /// Checkpoint attempts that failed.
    pub checkpoint_failures: u64,
    /// Bytes written into checkpoint files.
    pub checkpoint_bytes: u64,
    /// Wall time per checkpoint write.
    pub checkpoint_duration: HistogramSnapshot,
    /// Journal record index the newest checkpoint covers.
    pub last_checkpoint_tag: u64,
    /// Group commits performed.
    pub group_commits: u64,
    /// Journal records made durable by group commits.
    pub group_commit_records: u64,
    /// Wall time per group-commit flush.
    pub group_commit_flush: HistogramSnapshot,
    /// Fence records appended to the journal.
    pub journal_fences: u64,
}

impl DurabilityStats {
    /// Renders as a JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> json::Value {
        json::Value::obj([
            ("journal_appends", json::Value::UInt(self.journal_appends)),
            ("journal_bytes", json::Value::UInt(self.journal_bytes)),
            ("journal_fsyncs", json::Value::UInt(self.journal_fsyncs)),
            ("journal_rotations", json::Value::UInt(self.journal_rotations)),
            ("catalog_appends", json::Value::UInt(self.catalog_appends)),
            ("checkpoints", json::Value::UInt(self.checkpoints)),
            ("checkpoint_failures", json::Value::UInt(self.checkpoint_failures)),
            ("checkpoint_bytes", json::Value::UInt(self.checkpoint_bytes)),
            ("checkpoint_duration", self.checkpoint_duration.to_json()),
            ("last_checkpoint_tag", json::Value::UInt(self.last_checkpoint_tag)),
            ("group_commits", json::Value::UInt(self.group_commits)),
            ("group_commit_records", json::Value::UInt(self.group_commit_records)),
            ("group_commit_flush", self.group_commit_flush.to_json()),
            ("journal_fences", json::Value::UInt(self.journal_fences)),
        ])
    }
}

/// Wall time spent in each phase of a recovery pass, microseconds.
/// Rendered into `recovery-report.json` and the server's `recovered...`
/// readiness line so slow restarts are attributable to a phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryPhases {
    /// Repairing the fence log (truncating torn/epoch-hole tails).
    pub fence_repair_us: u64,
    /// Scanning per-shard streams and merging them by `(epoch, ts,
    /// shard)` into replay order.
    pub stream_merge_us: u64,
    /// Restoring the newest valid graph snapshot checkpoint.
    pub snapshot_restore_us: u64,
    /// Replaying catalog DDL interleaved at its recorded journal
    /// positions.
    pub catalog_interleave_us: u64,
    /// Replaying the journal suffix through the detector.
    pub replay_us: u64,
    /// End-to-end `open_durable` wall time.
    pub total_us: u64,
}

impl RecoveryPhases {
    /// Renders as a JSON object.
    pub fn to_json(&self) -> json::Value {
        json::Value::obj([
            ("fence_repair_us", json::Value::UInt(self.fence_repair_us)),
            ("stream_merge_us", json::Value::UInt(self.stream_merge_us)),
            ("snapshot_restore_us", json::Value::UInt(self.snapshot_restore_us)),
            ("catalog_interleave_us", json::Value::UInt(self.catalog_interleave_us)),
            ("replay_us", json::Value::UInt(self.replay_us)),
            ("total_us", json::Value::UInt(self.total_us)),
        ])
    }
}

/// What one recovery pass found in a data directory — written to
/// `recovery-report.json` and surfaced through the server logs and the CI
/// crash-restart smoke artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Catalog operations replayed.
    pub catalog_ops: u64,
    /// Journal record index covered by the checkpoint that was restored
    /// (`None` when recovery started from an empty graph).
    pub checkpoint_tag: Option<u64>,
    /// Checkpoint files found on disk.
    pub checkpoints_scanned: u64,
    /// Checkpoint files rejected (bad checksum, undecodable, or refusing
    /// to validate against the rebuilt graph).
    pub checkpoints_rejected: u64,
    /// Journal segment files scanned.
    pub journal_segments: u64,
    /// Well-formed journal records found across all segments.
    pub journal_records: u64,
    /// Journal records replayed through the detector (the suffix after the
    /// restored checkpoint).
    pub replayed_records: u64,
    /// Bytes discarded from torn/corrupt tails (journal + catalog).
    pub truncated_bytes: u64,
    /// Fence records recovered from the fence log (epoch boundaries).
    pub journal_fences: u64,
    /// Per-phase wall times of this recovery pass.
    pub phases: RecoveryPhases,
    /// The previous incarnation's flight-recorder dump (parsed from
    /// `flight-recorder.json` in the data directory), so a SIGKILL
    /// post-mortem shows the process's final seconds. `None` when no
    /// dump existed.
    pub flight_recorder: Option<json::Value>,
}

impl RecoveryReport {
    /// Renders as a JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> json::Value {
        json::Value::obj([
            ("catalog_ops", json::Value::UInt(self.catalog_ops)),
            (
                "checkpoint_tag",
                match self.checkpoint_tag {
                    Some(t) => json::Value::UInt(t),
                    None => json::Value::Null,
                },
            ),
            ("checkpoints_scanned", json::Value::UInt(self.checkpoints_scanned)),
            ("checkpoints_rejected", json::Value::UInt(self.checkpoints_rejected)),
            ("journal_segments", json::Value::UInt(self.journal_segments)),
            ("journal_records", json::Value::UInt(self.journal_records)),
            ("replayed_records", json::Value::UInt(self.replayed_records)),
            ("truncated_bytes", json::Value::UInt(self.truncated_bytes)),
            ("journal_fences", json::Value::UInt(self.journal_fences)),
            ("phases", self.phases.to_json()),
            (
                "flight_recorder",
                match &self.flight_recorder {
                    Some(dump) => dump.clone(),
                    None => json::Value::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = DurabilityMetrics::default();
        m.journal_appends.add(7);
        m.journal_bytes.add(512);
        m.checkpoints.inc();
        m.last_checkpoint_tag.set(5);
        m.checkpoint_duration.record(1_000);
        m.group_commits.inc();
        m.group_commit_records.add(3);
        m.group_commit_flush.record(2_000);
        m.journal_fences.add(2);
        let s = m.snapshot();
        assert_eq!(s.journal_appends, 7);
        assert_eq!(s.journal_bytes, 512);
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.last_checkpoint_tag, 5);
        assert_eq!(s.checkpoint_duration.count, 1);
        assert_eq!(s.group_commits, 1);
        assert_eq!(s.group_commit_records, 3);
        assert_eq!(s.group_commit_flush.count, 1);
        assert_eq!(s.journal_fences, 2);
    }

    #[test]
    fn json_shape_is_stable() {
        let s = DurabilityStats { journal_appends: 3, ..DurabilityStats::default() };
        let j = s.to_json();
        assert_eq!(j.get("journal_appends").and_then(json::Value::as_u64), Some(3));
        assert_eq!(j.get("checkpoints").and_then(json::Value::as_u64), Some(0));
        assert!(j.get("checkpoint_duration").is_some());
        assert_eq!(j.get("group_commits").and_then(json::Value::as_u64), Some(0));
        assert!(j.get("group_commit_flush").is_some());
    }

    #[test]
    fn recovery_report_json_handles_missing_checkpoint() {
        let r = RecoveryReport { journal_records: 4, ..RecoveryReport::default() };
        let j = r.to_json();
        assert!(matches!(j.get("checkpoint_tag"), Some(json::Value::Null)));
        assert_eq!(j.get("journal_records").and_then(json::Value::as_u64), Some(4));
        let r = RecoveryReport { checkpoint_tag: Some(9), ..r };
        assert_eq!(r.to_json().get("checkpoint_tag").and_then(json::Value::as_u64), Some(9));
    }

    #[test]
    fn recovery_report_carries_phases_and_flight_section() {
        let mut r = RecoveryReport::default();
        r.phases.stream_merge_us = 120;
        r.phases.total_us = 450;
        let j = r.to_json();
        let phases = j.get("phases").unwrap();
        assert_eq!(phases.get("stream_merge_us").and_then(json::Value::as_u64), Some(120));
        assert_eq!(phases.get("fence_repair_us").and_then(json::Value::as_u64), Some(0));
        assert!(matches!(j.get("flight_recorder"), Some(json::Value::Null)));

        r.flight_recorder = Some(json::Value::obj([("events", json::Value::Arr(vec![]))]));
        let j = r.to_json();
        assert!(j.get("flight_recorder").unwrap().get("events").is_some());
    }
}
