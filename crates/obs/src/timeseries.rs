//! A lock-cheap time-series registry: fixed-interval ring buffers over
//! the live counters and gauges of every subsystem.
//!
//! The hot paths never touch this module — instrumentation sites keep
//! bumping their relaxed-atomic [`crate::Counter`]s and [`crate::Gauge`]s
//! exactly as before. A single sampler thread (see
//! [`TimeSeriesRegistry::start_sampler`]) wakes once per resolution
//! interval, asks every registered [`SampleSource`] for a batch of
//! `(series, kind, value)` samples, and folds them into per-series ring
//! buffers: counters are stored as **deltas** against the previous raw
//! reading (so a point is "events in this interval"), gauges are stored
//! as levels. The registry mutex is therefore taken once per second by
//! the sampler plus once per scrape, never by signalling threads.
//!
//! Retention defaults to 1 s resolution × 15 min (900 slots); both are
//! configurable. Snapshots render as JSON —
//! `{"resolution_ms":1000,"capacity":900,"series":{name:{"kind":..,
//! "points":[[unix_s,value],..]}}}` — which is the scrape schema the
//! `MetricsScrape` opcode, the `/metrics.json` HTTP path and the
//! `sentinel-top` dashboard all share.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

use parking_lot::Mutex;

use crate::json;

/// Default sampling interval.
pub const DEFAULT_RESOLUTION: Duration = Duration::from_secs(1);
/// Default ring capacity: 15 minutes at 1 s resolution.
pub const DEFAULT_CAPACITY: usize = 900;

/// How a sampled value folds into its series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// A monotone raw reading; the ring stores per-interval deltas.
    Counter,
    /// An instantaneous level; the ring stores it as-is.
    Gauge,
}

impl SampleKind {
    fn as_str(self) -> &'static str {
        match self {
            SampleKind::Counter => "counter",
            SampleKind::Gauge => "gauge",
        }
    }
}

/// One raw reading handed to the registry by a [`SampleSource`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Series name, e.g. `detector.shard.3.queue_depth`.
    pub series: String,
    /// Counter (delta-folded) or gauge (level).
    pub kind: SampleKind,
    /// The raw reading.
    pub value: u64,
}

impl Sample {
    /// Builds a counter sample.
    pub fn counter(series: impl Into<String>, value: u64) -> Sample {
        Sample { series: series.into(), kind: SampleKind::Counter, value }
    }

    /// Builds a gauge sample.
    pub fn gauge(series: impl Into<String>, value: u64) -> Sample {
        Sample { series: series.into(), kind: SampleKind::Gauge, value }
    }
}

/// A provider of raw readings, polled once per tick. Sources batch all
/// their series into one call so expensive snapshots (e.g. a full
/// detector stats pass) happen once per interval, not once per series.
pub trait SampleSource: Send + Sync {
    /// Appends this source's current readings to `out`.
    fn collect(&self, out: &mut Vec<Sample>);
}

impl<F: Fn(&mut Vec<Sample>) + Send + Sync> SampleSource for F {
    fn collect(&self, out: &mut Vec<Sample>) {
        self(out)
    }
}

/// One series' ring: recent `(unix_s, value)` points plus the last raw
/// counter reading for delta folding.
#[derive(Debug)]
struct Series {
    kind: SampleKind,
    last_raw: u64,
    /// Oldest-first ring of points; bounded at the registry capacity.
    points: std::collections::VecDeque<(u64, u64)>,
}

#[derive(Default)]
struct Inner {
    sources: Vec<Arc<dyn SampleSource>>,
    series: BTreeMap<String, Series>,
}

/// The registry: sources on one side, ring buffers on the other.
pub struct TimeSeriesRegistry {
    resolution: Duration,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for TimeSeriesRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeriesRegistry")
            .field("resolution", &self.resolution)
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl TimeSeriesRegistry {
    /// Creates a registry with the given sampling interval and per-series
    /// ring capacity.
    pub fn new(resolution: Duration, capacity: usize) -> Arc<TimeSeriesRegistry> {
        Arc::new(TimeSeriesRegistry {
            resolution: resolution.max(Duration::from_millis(1)),
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        })
    }

    /// Creates a registry with the default 1 s × 15 min retention.
    pub fn with_defaults() -> Arc<TimeSeriesRegistry> {
        Self::new(DEFAULT_RESOLUTION, DEFAULT_CAPACITY)
    }

    /// The sampling interval.
    pub fn resolution(&self) -> Duration {
        self.resolution
    }

    /// Registers a source; it is polled on every subsequent tick.
    pub fn register(&self, source: Arc<dyn SampleSource>) {
        self.inner.lock().sources.push(source);
    }

    /// Registers a closure source.
    pub fn register_fn(&self, f: impl Fn(&mut Vec<Sample>) + Send + Sync + 'static) {
        self.register(Arc::new(f));
    }

    /// Polls every source and folds the readings in, stamped "now".
    pub fn sample_now(&self) {
        let unix_s = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        self.sample_at(unix_s);
    }

    /// Polls every source and folds the readings in at timestamp
    /// `unix_s` (tests drive this directly for determinism).
    pub fn sample_at(&self, unix_s: u64) {
        let sources: Vec<_> = self.inner.lock().sources.clone();
        let mut batch = Vec::new();
        for source in &sources {
            source.collect(&mut batch);
        }
        let mut inner = self.inner.lock();
        for sample in batch {
            let series = inner.series.entry(sample.series).or_insert_with(|| Series {
                kind: sample.kind,
                last_raw: if sample.kind == SampleKind::Counter { sample.value } else { 0 },
                points: std::collections::VecDeque::new(),
            });
            let point = match series.kind {
                SampleKind::Counter => {
                    let delta = sample.value.saturating_sub(series.last_raw);
                    series.last_raw = sample.value;
                    delta
                }
                SampleKind::Gauge => sample.value,
            };
            if series.points.len() == self.capacity {
                series.points.pop_front();
            }
            series.points.push_back((unix_s, point));
        }
    }

    /// The ring of one series, oldest first (empty when unknown).
    pub fn series_points(&self, name: &str) -> Vec<(u64, u64)> {
        self.inner
            .lock()
            .series
            .get(name)
            .map(|s| s.points.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Approximate `q`-quantile over the retained points of one series
    /// (`None` when the series is unknown or empty). For gauge series
    /// this is the quantile of the level across the retention window —
    /// e.g. "queue-depth p99 over the last 15 minutes".
    pub fn series_quantile(&self, name: &str, q: f64) -> Option<u64> {
        let mut values: Vec<u64> = {
            let inner = self.inner.lock();
            inner.series.get(name)?.points.iter().map(|&(_, v)| v).collect()
        };
        if values.is_empty() {
            return None;
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        Some(values[rank - 1])
    }

    /// Names of every known series.
    pub fn series_names(&self) -> Vec<String> {
        self.inner.lock().series.keys().cloned().collect()
    }

    /// Renders the whole registry as the scrape-schema JSON object.
    pub fn to_json(&self) -> json::Value {
        let inner = self.inner.lock();
        let series = inner
            .series
            .iter()
            .map(|(name, s)| {
                let points = s
                    .points
                    .iter()
                    .map(|&(t, v)| {
                        json::Value::Arr(vec![json::Value::UInt(t), json::Value::UInt(v)])
                    })
                    .collect();
                (
                    name.clone(),
                    json::Value::obj([
                        ("kind", json::Value::str(s.kind.as_str())),
                        ("points", json::Value::Arr(points)),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        json::Value::obj([
            ("resolution_ms", json::Value::UInt(self.resolution.as_millis() as u64)),
            ("capacity", json::Value::UInt(self.capacity as u64)),
            ("series", json::Value::Obj(series)),
        ])
    }

    /// Spawns the sampler thread, ticking every resolution interval until
    /// the returned handle drops.
    pub fn start_sampler(self: &Arc<Self>) -> SamplerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let registry = self.clone();
        let flag = stop.clone();
        let join = std::thread::Builder::new()
            .name("sentinel-telemetry".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    registry.sample_now();
                    // Sleep in small slices so drop doesn't block a full
                    // interval.
                    let mut left = registry.resolution;
                    while !left.is_zero() && !flag.load(Ordering::Relaxed) {
                        let slice = left.min(Duration::from_millis(50));
                        std::thread::sleep(slice);
                        left = left.saturating_sub(slice);
                    }
                }
            })
            .ok();
        SamplerHandle { stop, join }
    }
}

/// Stops the sampler thread when dropped.
#[derive(Debug)]
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            if join.thread().id() != std::thread::current().id() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counter;

    #[test]
    fn counters_fold_to_deltas_and_gauges_to_levels() {
        let reg = TimeSeriesRegistry::new(Duration::from_secs(1), 8);
        let hits = Arc::new(Counter::new());
        let c = hits.clone();
        reg.register_fn(move |out| {
            out.push(Sample::counter("hits", c.get()));
            out.push(Sample::gauge("depth", 5));
        });
        hits.add(10);
        reg.sample_at(100);
        hits.add(3);
        reg.sample_at(101);
        reg.sample_at(102);
        // First tick establishes the baseline (delta 0), then per-tick
        // deltas.
        assert_eq!(reg.series_points("hits"), vec![(100, 0), (101, 3), (102, 0)]);
        assert_eq!(reg.series_points("depth"), vec![(100, 5), (101, 5), (102, 5)]);
        assert_eq!(reg.series_points("unknown"), vec![]);
    }

    #[test]
    fn ring_is_bounded_at_capacity() {
        let reg = TimeSeriesRegistry::new(Duration::from_secs(1), 3);
        reg.register_fn(|out| out.push(Sample::gauge("g", 1)));
        for t in 0..10 {
            reg.sample_at(t);
        }
        let points = reg.series_points("g");
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].0, 7, "oldest retained tick");
    }

    #[test]
    fn quantiles_over_the_retention_window() {
        let reg = TimeSeriesRegistry::new(Duration::from_secs(1), 100);
        let level = Arc::new(crate::Gauge::new());
        let g = level.clone();
        reg.register_fn(move |out| out.push(Sample::gauge("q", g.get())));
        for t in 0..100u64 {
            level.set(t + 1);
            reg.sample_at(t);
        }
        assert_eq!(reg.series_quantile("q", 0.50), Some(50));
        assert_eq!(reg.series_quantile("q", 0.99), Some(99));
        assert_eq!(reg.series_quantile("q", 1.0), Some(100));
        assert_eq!(reg.series_quantile("missing", 0.5), None);
    }

    #[test]
    fn json_snapshot_has_the_scrape_schema() {
        let reg = TimeSeriesRegistry::new(Duration::from_secs(1), 4);
        reg.register_fn(|out| out.push(Sample::counter("c", 7)));
        reg.sample_at(42);
        let j = reg.to_json();
        assert_eq!(j.get("capacity").and_then(json::Value::as_u64), Some(4));
        let series = j.get("series").unwrap();
        let c = series.get("c").unwrap();
        assert_eq!(c.get("kind").and_then(json::Value::as_str), Some("counter"));
        let points = c.get("points").and_then(json::Value::as_arr).unwrap();
        assert_eq!(points.len(), 1);
        // Round-trips through the parser.
        assert_eq!(json::Value::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn sampler_thread_ticks_and_stops() {
        let reg = TimeSeriesRegistry::new(Duration::from_millis(5), 64);
        reg.register_fn(|out| out.push(Sample::gauge("tick", 1)));
        let handle = reg.start_sampler();
        for _ in 0..200 {
            if reg.series_points("tick").len() >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(reg.series_points("tick").len() >= 2, "sampler must tick");
        drop(handle);
    }
}
