//! Replication observability: the plain-data `replication` stats section
//! a clustered node merges into its `SentinelStats` JSON.
//!
//! A **primary** fills the `followers` list from its replication log's
//! per-follower ack watermarks; a **replica** fills `applied` / `primary`
//! / `last_contact_secs` from its apply loop. Either side's `tip` is its
//! local replication-log length, so `tip - applied` is lag in log entries
//! and the sampled delta of `applied` is the follower apply rate.

use crate::json;

/// One follower's lag as seen by the primary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FollowerLag {
    /// Follower name (from its subscribe).
    pub name: String,
    /// Log sequence the follower has applied (entries `< applied`).
    pub applied: u64,
    /// `tip - applied` at snapshot time.
    pub lag: u64,
    /// Seconds since the follower's last ack.
    pub age_secs: f64,
}

/// Plain-data snapshot of a node's replication state (the `replication`
/// stats section).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicationStats {
    /// `"primary"` or `"replica"`.
    pub role: String,
    /// Local replication-log tip (entries pushed so far).
    pub tip: u64,
    /// Per-follower ack state (primary side; empty on a replica).
    pub followers: Vec<FollowerLag>,
    /// Apply watermark (replica side: entries of the primary's log
    /// applied locally; 0 on a primary).
    pub applied: u64,
    /// Total entries applied by the local apply loop (replica side).
    pub applied_entries: u64,
    /// The primary this replica follows (replica side).
    pub primary: Option<String>,
    /// Seconds since the replica last heard from its primary.
    pub last_contact_secs: Option<f64>,
    /// Wire codec version the replica negotiated with its primary at
    /// `Hello` (replica side; `None` on a primary).
    pub wire_version: Option<u8>,
}

impl ReplicationStats {
    /// Replication lag in log entries of the furthest-behind follower.
    pub fn max_lag(&self) -> u64 {
        self.followers.iter().map(|f| f.lag).max().unwrap_or(0)
    }

    /// Renders as a JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> json::Value {
        json::Value::obj([
            ("role", json::Value::str(&self.role)),
            ("tip", json::Value::UInt(self.tip)),
            (
                "followers",
                json::Value::Arr(
                    self.followers
                        .iter()
                        .map(|f| {
                            json::Value::obj([
                                ("name", json::Value::str(&f.name)),
                                ("applied", json::Value::UInt(f.applied)),
                                ("lag", json::Value::UInt(f.lag)),
                                ("age_secs", json::Value::Float(f.age_secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("applied", json::Value::UInt(self.applied)),
            ("applied_entries", json::Value::UInt(self.applied_entries)),
            (
                "primary",
                match &self.primary {
                    Some(p) => json::Value::str(p),
                    None => json::Value::Null,
                },
            ),
            (
                "last_contact_secs",
                match self.last_contact_secs {
                    Some(s) => json::Value::Float(s),
                    None => json::Value::Null,
                },
            ),
            (
                "wire_version",
                match self.wire_version {
                    Some(v) => json::Value::UInt(u64::from(v)),
                    None => json::Value::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let s = ReplicationStats {
            role: "primary".into(),
            tip: 10,
            followers: vec![FollowerLag { name: "f1".into(), applied: 7, lag: 3, age_secs: 0.5 }],
            ..ReplicationStats::default()
        };
        assert_eq!(s.max_lag(), 3);
        let j = s.to_json();
        assert_eq!(j.get("role").and_then(json::Value::as_str), Some("primary"));
        assert_eq!(j.get("tip").and_then(json::Value::as_u64), Some(10));
        let followers = j.get("followers").and_then(json::Value::as_arr).unwrap();
        assert_eq!(followers[0].get("lag").and_then(json::Value::as_u64), Some(3));
        assert!(matches!(j.get("primary"), Some(json::Value::Null)));
        // Round-trips through the parser (what the wire does).
        assert_eq!(json::Value::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn replica_side_fields() {
        let s = ReplicationStats {
            role: "replica".into(),
            tip: 4,
            applied: 9,
            applied_entries: 9,
            primary: Some("127.0.0.1:7878".into()),
            last_contact_secs: Some(0.1),
            ..ReplicationStats::default()
        };
        assert_eq!(s.max_lag(), 0);
        let j = s.to_json();
        assert_eq!(j.get("applied").and_then(json::Value::as_u64), Some(9));
        assert_eq!(j.get("primary").and_then(json::Value::as_str), Some("127.0.0.1:7878"));
    }
}
