//! Method invocation with wrapper hooks — the seam Sentinel's
//! post-processor uses.
//!
//! In the Open OODB, the pre-processor renames the user method to
//! `user_<name>` and generates a wrapper that collects parameters and calls
//! `Notify(...)` before and/or after invoking the original (§3.2.1). Here
//! [`Database::invoke`] *is* that wrapper: method bodies are registered
//! closures (the `user_` methods), and installed [`InvocationHooks`]
//! receive the begin/end notifications with the collected parameter list.
//! The database stays passive — it calls whatever hooks are installed and
//! `sentinel-core` installs the event bridge.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use sentinel_storage::{StorageEngine, StorageError, TxnId};

use crate::names::NameManager;
use crate::object::{AttrValue, ObjectState, Oid};
use crate::schema::{ClassRegistry, SchemaError};
use crate::store::ObjectStore;

/// Errors from database operations.
#[derive(Debug)]
pub enum DbError {
    /// Storage-layer failure.
    Storage(StorageError),
    /// Schema violation.
    Schema(SchemaError),
    /// Method not declared on the object's class chain.
    NoSuchMethod {
        /// The object's class.
        class: String,
        /// Requested signature.
        sig: String,
    },
    /// Method declared but no body registered.
    NoBody {
        /// Declaring class.
        class: String,
        /// Signature.
        sig: String,
    },
    /// Application-level failure raised by a method body.
    App(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::Schema(e) => write!(f, "schema error: {e}"),
            DbError::NoSuchMethod { class, sig } => {
                write!(f, "no method `{sig}` on class `{class}`")
            }
            DbError::NoBody { class, sig } => {
                write!(f, "no body registered for `{class}::{sig}`")
            }
            DbError::App(msg) => write!(f, "application error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

impl From<SchemaError> for DbError {
    fn from(e: SchemaError) -> Self {
        DbError::Schema(e)
    }
}

/// Result alias for database operations.
pub type DbResult<T> = Result<T, DbError>;

/// Everything a wrapper notification carries — the paper's
/// `Notify(current_obj, class_name, method_name, event_modifier, para_list)`.
#[derive(Debug, Clone)]
pub struct MethodCall {
    /// The receiver object.
    pub oid: Oid,
    /// The receiver's concrete class.
    pub class: String,
    /// The class chain (concrete class first, then ancestors) — class-level
    /// events declared on an ancestor must fire for descendants.
    pub chain: Vec<String>,
    /// The class that declares the method.
    pub declaring_class: String,
    /// Canonical method signature.
    pub sig: String,
    /// Collected parameters (`PARA_LIST`).
    pub args: Vec<(String, AttrValue)>,
    /// Enclosing transaction.
    pub txn: TxnId,
}

/// Before/after invocation hooks (the Sentinel post-processor's insertion
/// point). `before` runs before the user method body, `after` runs after it
/// returns successfully.
pub trait InvocationHooks: Send + Sync {
    /// Called before the method body.
    fn before(&self, call: &MethodCall);
    /// Called after the method body.
    fn after(&self, call: &MethodCall);
}

/// Execution context handed to a method body (the `user_…` function).
pub struct MethodCtx<'a> {
    /// The database (bodies may read/write objects, invoke other methods…).
    pub db: &'a Database,
    /// Enclosing transaction.
    pub txn: TxnId,
    /// Receiver object.
    pub oid: Oid,
    /// Actual arguments.
    pub args: Vec<(String, AttrValue)>,
}

impl MethodCtx<'_> {
    /// Positional/named argument lookup.
    pub fn arg(&self, name: &str) -> Option<&AttrValue> {
        self.args.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Reads an attribute of the receiver.
    pub fn get_attr(&self, name: &str) -> DbResult<AttrValue> {
        let state = self.db.store().get(self.txn, self.oid)?;
        Ok(state.get(name).cloned().unwrap_or(AttrValue::Null))
    }

    /// Writes an attribute of the receiver.
    pub fn set_attr(&self, name: &str, value: impl Into<AttrValue>) -> DbResult<()> {
        let mut state = self.db.store().get(self.txn, self.oid)?;
        state.set(name, value);
        self.db.registry().validate(&state)?;
        self.db.store().update(self.txn, self.oid, &state)?;
        Ok(())
    }
}

/// A registered method body.
pub type MethodBody = Arc<dyn for<'a> Fn(&MethodCtx<'a>) -> DbResult<AttrValue> + Send + Sync>;

/// The passive object database: schema + store + names + method dispatch.
pub struct Database {
    engine: Arc<StorageEngine>,
    store: Arc<ObjectStore>,
    names: NameManager,
    registry: RwLock<ClassRegistry>,
    methods: RwLock<HashMap<(String, String), MethodBody>>,
    hooks: RwLock<Vec<Arc<dyn InvocationHooks>>>,
}

impl Database {
    /// Opens a database over `engine`.
    pub fn open(engine: Arc<StorageEngine>) -> DbResult<Self> {
        let store = Arc::new(ObjectStore::open(engine.clone())?);
        Ok(Database {
            engine,
            names: NameManager::new(store.clone()),
            store,
            registry: RwLock::new(ClassRegistry::new()),
            methods: RwLock::new(HashMap::new()),
            hooks: RwLock::new(Vec::new()),
        })
    }

    /// An ephemeral in-memory database.
    pub fn in_memory() -> Self {
        Self::open(Arc::new(StorageEngine::in_memory())).expect("in-memory db")
    }

    /// The storage engine.
    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }

    /// The object store.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// The name manager.
    pub fn names(&self) -> &NameManager {
        &self.names
    }

    /// Read access to the class registry.
    pub fn registry(&self) -> parking_lot::RwLockReadGuard<'_, ClassRegistry> {
        self.registry.read()
    }

    /// Registers a class.
    pub fn register_class(&self, def: crate::schema::ClassDef) -> DbResult<()> {
        self.registry.write().register(def)?;
        Ok(())
    }

    /// Registers a method body on `(class, sig)`.
    pub fn register_method(&self, class: &str, sig: &str, body: MethodBody) {
        self.methods.write().insert((class.to_string(), sig.to_string()), body);
    }

    /// Installs invocation hooks (the Sentinel event bridge).
    pub fn add_hooks(&self, hooks: Arc<dyn InvocationHooks>) {
        self.hooks.write().push(hooks);
    }

    // --- transactions (delegated; the active layer wraps these) ---------

    /// Begins a top-level transaction.
    pub fn begin(&self) -> DbResult<TxnId> {
        Ok(self.engine.begin()?)
    }

    /// Commits a transaction.
    pub fn commit(&self, txn: TxnId) -> DbResult<()> {
        Ok(self.engine.commit(txn)?)
    }

    /// Aborts a transaction.
    pub fn abort(&self, txn: TxnId) -> DbResult<()> {
        Ok(self.engine.abort(txn)?)
    }

    // --- objects ---------------------------------------------------------

    /// Creates an object (validated against the schema).
    pub fn create_object(&self, txn: TxnId, state: &ObjectState) -> DbResult<Oid> {
        self.registry.read().validate(state)?;
        Ok(self.store.create(txn, state)?)
    }

    /// Reads an object.
    pub fn get_object(&self, txn: TxnId, oid: Oid) -> DbResult<ObjectState> {
        Ok(self.store.get(txn, oid)?)
    }

    /// Deletes an object.
    pub fn delete_object(&self, txn: TxnId, oid: Oid) -> DbResult<()> {
        Ok(self.store.delete(txn, oid)?)
    }

    /// Invokes `sig` on `oid` — the wrapper method. Fires `before` hooks,
    /// runs the registered body (resolved up the inheritance chain), fires
    /// `after` hooks, and returns the body's result.
    pub fn invoke(
        &self,
        txn: TxnId,
        oid: Oid,
        sig: &str,
        args: Vec<(String, AttrValue)>,
    ) -> DbResult<AttrValue> {
        let state = self.store.get(txn, oid)?;
        let (declaring, chain) = {
            let registry = self.registry.read();
            let declaring = registry
                .resolve_method(&state.class, sig)
                .ok_or_else(|| DbError::NoSuchMethod {
                    class: state.class.clone(),
                    sig: sig.to_string(),
                })?
                .to_string();
            let chain: Vec<String> =
                registry.chain(&state.class).into_iter().map(str::to_string).collect();
            (declaring, chain)
        };
        let body =
            self.methods.read().get(&(declaring.clone(), sig.to_string())).cloned().ok_or_else(
                || DbError::NoBody { class: declaring.clone(), sig: sig.to_string() },
            )?;
        let call = MethodCall {
            oid,
            class: state.class.clone(),
            chain,
            declaring_class: declaring,
            sig: sig.to_string(),
            args: args.clone(),
            txn,
        };
        for h in self.hooks.read().iter() {
            h.before(&call);
        }
        let ctx = MethodCtx { db: self, txn, oid, args };
        let result = body(&ctx)?;
        for h in self.hooks.read().iter() {
            h.after(&call);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, ClassDef};
    use parking_lot::Mutex;

    fn stock_db() -> Database {
        let db = Database::in_memory();
        db.register_class(ClassDef::new("REACTIVE")).unwrap();
        db.register_class(
            ClassDef::new("STOCK")
                .extends("REACTIVE")
                .attr("symbol", AttrType::Str)
                .attr("price", AttrType::Float)
                .attr("holdings", AttrType::Int)
                .method("void set_price(float price)")
                .method("int sell_stock(int qty)"),
        )
        .unwrap();
        db.register_method(
            "STOCK",
            "void set_price(float price)",
            Arc::new(|ctx| {
                let price = ctx.arg("price").and_then(AttrValue::as_float).unwrap_or(0.0);
                ctx.set_attr("price", price)?;
                Ok(AttrValue::Null)
            }),
        );
        db.register_method(
            "STOCK",
            "int sell_stock(int qty)",
            Arc::new(|ctx| {
                let qty = ctx.arg("qty").and_then(|v| v.as_int()).unwrap_or(0);
                let held = ctx.get_attr("holdings")?.as_int().unwrap_or(0);
                if qty > held {
                    return Err(DbError::App(format!("cannot sell {qty}, hold {held}")));
                }
                ctx.set_attr("holdings", held - qty)?;
                Ok(AttrValue::Int(held - qty))
            }),
        );
        db
    }

    fn ibm(db: &Database, txn: TxnId) -> Oid {
        db.create_object(
            txn,
            &ObjectState::new("STOCK")
                .with("symbol", "IBM")
                .with("price", 100.0)
                .with("holdings", 10),
        )
        .unwrap()
    }

    #[test]
    fn invoke_runs_body_and_mutates_state() {
        let db = stock_db();
        let t = db.begin().unwrap();
        let oid = ibm(&db, t);
        db.invoke(t, oid, "void set_price(float price)", vec![("price".into(), 123.5.into())])
            .unwrap();
        assert_eq!(db.get_object(t, oid).unwrap().get("price").unwrap().as_float(), Some(123.5));
        let left =
            db.invoke(t, oid, "int sell_stock(int qty)", vec![("qty".into(), 4.into())]).unwrap();
        assert_eq!(left.as_int(), Some(6));
        db.commit(t).unwrap();
    }

    #[test]
    fn app_errors_propagate() {
        let db = stock_db();
        let t = db.begin().unwrap();
        let oid = ibm(&db, t);
        let err = db.invoke(t, oid, "int sell_stock(int qty)", vec![("qty".into(), 99.into())]);
        assert!(matches!(err, Err(DbError::App(_))));
        db.abort(t).unwrap();
    }

    #[test]
    fn hooks_fire_before_and_after_with_parameters() {
        struct Recorder(Mutex<Vec<String>>);
        impl InvocationHooks for Recorder {
            fn before(&self, call: &MethodCall) {
                self.0.lock().push(format!("before {} args={}", call.sig, call.args.len()));
            }
            fn after(&self, call: &MethodCall) {
                self.0.lock().push(format!("after {}", call.sig));
            }
        }
        let db = stock_db();
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        db.add_hooks(rec.clone());
        let t = db.begin().unwrap();
        let oid = ibm(&db, t);
        db.invoke(t, oid, "void set_price(float price)", vec![("price".into(), 1.0.into())])
            .unwrap();
        db.commit(t).unwrap();
        let log = rec.0.lock();
        assert_eq!(
            *log,
            vec![
                "before void set_price(float price) args=1".to_string(),
                "after void set_price(float price)".to_string(),
            ]
        );
    }

    #[test]
    fn inherited_method_resolves_to_declaring_class() {
        let db = stock_db();
        db.register_class(
            ClassDef::new("TECH_STOCK").extends("STOCK").attr("sector", AttrType::Str),
        )
        .unwrap();
        struct ChainCheck(Mutex<Vec<String>>);
        impl InvocationHooks for ChainCheck {
            fn before(&self, call: &MethodCall) {
                assert_eq!(call.declaring_class, "STOCK");
                assert_eq!(call.class, "TECH_STOCK");
                self.0.lock().extend(call.chain.clone());
            }
            fn after(&self, _call: &MethodCall) {}
        }
        let check = Arc::new(ChainCheck(Mutex::new(Vec::new())));
        db.add_hooks(check.clone());
        let t = db.begin().unwrap();
        let oid = db
            .create_object(
                t,
                &ObjectState::new("TECH_STOCK")
                    .with("symbol", "MSFT")
                    .with("price", 50.0)
                    .with("holdings", 1)
                    .with("sector", "software"),
            )
            .unwrap();
        db.invoke(t, oid, "void set_price(float price)", vec![("price".into(), 2.0.into())])
            .unwrap();
        db.commit(t).unwrap();
        assert_eq!(*check.0.lock(), vec!["TECH_STOCK", "STOCK", "REACTIVE"]);
    }

    #[test]
    fn unknown_method_and_missing_body_errors() {
        let db = stock_db();
        db.register_class(ClassDef::new("BARE").extends("REACTIVE").method("void declared_only()"))
            .unwrap();
        let t = db.begin().unwrap();
        let oid = db.create_object(t, &ObjectState::new("BARE")).unwrap();
        assert!(matches!(
            db.invoke(t, oid, "void ghost()", vec![]),
            Err(DbError::NoSuchMethod { .. })
        ));
        assert!(matches!(
            db.invoke(t, oid, "void declared_only()", vec![]),
            Err(DbError::NoBody { .. })
        ));
        db.abort(t).unwrap();
    }

    #[test]
    fn schema_validation_on_create() {
        let db = stock_db();
        let t = db.begin().unwrap();
        let bad = ObjectState::new("STOCK").with("price", "not a float");
        assert!(matches!(db.create_object(t, &bad), Err(DbError::Schema(_))));
        db.abort(t).unwrap();
    }
}
