//! Name manager: the Figure 1 module that binds human-readable names to
//! persistent objects (`Stock IBM` in the paper's application syntax names
//! the instance the instance-level event is declared on).
//!
//! Thin transactional facade over the object store's persistent name table.

use std::sync::Arc;

use sentinel_storage::{StorageResult, TxnId};

use crate::object::Oid;
use crate::store::ObjectStore;

/// The name manager.
pub struct NameManager {
    store: Arc<ObjectStore>,
}

impl NameManager {
    /// A manager over `store`.
    pub fn new(store: Arc<ObjectStore>) -> Self {
        NameManager { store }
    }

    /// Binds `name` to `oid` (rebinding replaces).
    pub fn bind(&self, txn: TxnId, name: &str, oid: Oid) -> StorageResult<()> {
        self.store.bind_name(txn, name, oid)
    }

    /// Resolves `name` to an oid.
    pub fn resolve(&self, name: &str) -> Option<Oid> {
        self.store.resolve_name(name)
    }

    /// Drops a binding; returns whether it existed.
    pub fn unbind(&self, txn: TxnId, name: &str) -> StorageResult<bool> {
        self.store.unbind_name(txn, name)
    }

    /// All bound names, sorted.
    pub fn list(&self) -> Vec<String> {
        self.store.names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectState;
    use sentinel_storage::StorageEngine;

    #[test]
    fn bind_resolve_unbind() {
        let engine = Arc::new(StorageEngine::in_memory());
        let store = Arc::new(ObjectStore::open(engine.clone()).unwrap());
        let names = NameManager::new(store.clone());
        let t = engine.begin().unwrap();
        let oid = store.create(t, &ObjectState::new("STOCK")).unwrap();
        names.bind(t, "IBM", oid).unwrap();
        assert_eq!(names.resolve("IBM"), Some(oid));
        assert_eq!(names.list(), vec!["IBM".to_string()]);
        assert!(names.unbind(t, "IBM").unwrap());
        assert_eq!(names.resolve("IBM"), None);
        engine.commit(t).unwrap();
    }
}
