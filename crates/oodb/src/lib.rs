//! # sentinel-oodb
//!
//! A passive object-oriented database — the reproduction's stand-in for the
//! **Open OODB Toolkit** (Texas Instruments) that Sentinel extends.
//!
//! The paper relies on Open OODB for exactly the extension points Sentinel
//! hooks into, and this crate provides each of them:
//!
//! * a **class model** with single inheritance, typed attributes and
//!   methods ([`schema`]);
//! * **objects** with identity (OIDs) persisted through the Exodus-analogue
//!   storage engine ([`object`], [`store`] — the "object translation" and
//!   "persistence manager" boxes of Figure 1);
//! * a **name manager** binding names to objects ([`names`]);
//! * **wrapper methods**: every method invocation runs through
//!   [`invoke::Database::invoke`], which calls registered
//!   [`invoke::InvocationHooks`] *before and after* the user method body —
//!   the exact seam where the Sentinel post-processor inserts its
//!   `Notify(...)` calls and parameter collection (§3.2.1).
//!
//! The crate is deliberately *passive*: it knows nothing about events or
//! rules. `sentinel-core` makes it active by installing hooks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod invoke;
pub mod names;
pub mod object;
pub mod schema;
pub mod store;

pub use invoke::{Database, InvocationHooks, MethodBody, MethodCtx};
pub use object::{AttrValue, ObjectState, Oid};
pub use schema::{AttrType, ClassDef, ClassRegistry, MethodDef};
pub use store::ObjectStore;
