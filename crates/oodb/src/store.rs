//! Persistent object store over the storage engine.
//!
//! Records are self-describing: `[tag u8][oid u64][payload]`, where tag 0
//! is an object (payload = object-translation bytes) and tag 1 a name
//! binding (payload = name bytes; oid = target). The OID → record-id index
//! and the name table are rebuilt by scanning the heap at open — the
//! "address space manager" / "persistence manager" pair of Figure 1
//! collapsed into one module, which is all Sentinel needs from them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::RwLock;

use sentinel_storage::{Rid, StorageEngine, StorageError, StorageResult, TxnId};

use crate::object::{ObjectState, Oid};

const TAG_OBJECT: u8 = 0;
const TAG_NAME: u8 = 1;

/// Object store: OID allocation, object CRUD, and the persistent name map
/// used by the name manager.
pub struct ObjectStore {
    engine: Arc<StorageEngine>,
    next_oid: AtomicU64,
    index: RwLock<HashMap<Oid, Rid>>,
    names: RwLock<HashMap<String, (Oid, Rid)>>,
}

impl ObjectStore {
    /// Opens the store, rebuilding the OID index and name table from the
    /// engine's heap.
    pub fn open(engine: Arc<StorageEngine>) -> StorageResult<Self> {
        let mut index = HashMap::new();
        let mut names = HashMap::new();
        let mut max_oid = 0u64;
        for (rid, record) in engine.scan()? {
            let mut buf = Bytes::from(record);
            if buf.remaining() < 9 {
                continue; // not a store record
            }
            let tag = buf.get_u8();
            let oid = Oid(buf.get_u64_le());
            match tag {
                TAG_OBJECT => {
                    index.insert(oid, rid);
                    max_oid = max_oid.max(oid.0);
                }
                TAG_NAME => {
                    if let Ok(name) = String::from_utf8(buf.to_vec()) {
                        names.insert(name, (oid, rid));
                    }
                }
                _ => {}
            }
        }
        Ok(ObjectStore {
            engine,
            next_oid: AtomicU64::new(max_oid + 1),
            index: RwLock::new(index),
            names: RwLock::new(names),
        })
    }

    /// The underlying storage engine.
    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }

    fn encode_object(oid: Oid, state: &ObjectState) -> Bytes {
        let payload = state.encode();
        let mut out = BytesMut::with_capacity(payload.len() + 9);
        out.put_u8(TAG_OBJECT);
        out.put_u64_le(oid.0);
        out.put_slice(&payload);
        out.freeze()
    }

    /// Creates a new object inside `txn`, returning its identity.
    pub fn create(&self, txn: TxnId, state: &ObjectState) -> StorageResult<Oid> {
        let oid = Oid(self.next_oid.fetch_add(1, Ordering::Relaxed));
        let rid = self.engine.insert(txn, &Self::encode_object(oid, state))?;
        self.index.write().insert(oid, rid);
        Ok(oid)
    }

    /// Reads an object's state inside `txn`.
    pub fn get(&self, txn: TxnId, oid: Oid) -> StorageResult<ObjectState> {
        let rid = self.rid_of(oid)?;
        let record = self.engine.read(txn, rid)?;
        Self::decode_record(oid, &record)
    }

    fn decode_record(oid: Oid, record: &[u8]) -> StorageResult<ObjectState> {
        let mut buf = Bytes::copy_from_slice(record);
        if buf.remaining() < 9 || buf.get_u8() != TAG_OBJECT || Oid(buf.get_u64_le()) != oid {
            return Err(StorageError::Corrupt("object record header mismatch"));
        }
        ObjectState::decode(buf).ok_or(StorageError::Corrupt("undecodable object payload"))
    }

    /// Rewrites an object's state inside `txn`.
    pub fn update(&self, txn: TxnId, oid: Oid, state: &ObjectState) -> StorageResult<()> {
        let rid = self.rid_of(oid)?;
        self.engine.update(txn, rid, &Self::encode_object(oid, state))
    }

    /// Deletes an object inside `txn`.
    pub fn delete(&self, txn: TxnId, oid: Oid) -> StorageResult<()> {
        let rid = self.rid_of(oid)?;
        self.engine.delete(txn, rid)?;
        self.index.write().remove(&oid);
        Ok(())
    }

    fn rid_of(&self, oid: Oid) -> StorageResult<Rid> {
        self.index.read().get(&oid).copied().ok_or(StorageError::Corrupt("unknown oid"))
    }

    /// Whether the store currently knows `oid`.
    pub fn exists(&self, oid: Oid) -> bool {
        self.index.read().contains_key(&oid)
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.index.read().len()
    }

    /// True when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.index.read().is_empty()
    }

    /// All live oids (unordered).
    pub fn oids(&self) -> Vec<Oid> {
        self.index.read().keys().copied().collect()
    }

    /// The extent of a class: oids of all live objects whose stored class
    /// equals `class` (sorted). Reads through `txn` (shared locks), so the
    /// extent is transactionally consistent.
    pub fn extent(&self, txn: TxnId, class: &str) -> StorageResult<Vec<Oid>> {
        let mut out = Vec::new();
        let oids = self.oids();
        for oid in oids {
            match self.get(txn, oid) {
                Ok(state) if state.class == class => out.push(oid),
                Ok(_) => {}
                // Rolled-back creations can leave stale index entries.
                Err(StorageError::RecordNotFound(_)) | Err(StorageError::Corrupt(_)) => {}
                Err(e) => return Err(e),
            }
        }
        out.sort();
        Ok(out)
    }

    // --- name bindings (backing the name manager) -----------------------

    /// Binds `name` to `oid` persistently (replacing any prior binding).
    pub fn bind_name(&self, txn: TxnId, name: &str, oid: Oid) -> StorageResult<()> {
        let mut payload = BytesMut::with_capacity(name.len() + 9);
        payload.put_u8(TAG_NAME);
        payload.put_u64_le(oid.0);
        payload.put_slice(name.as_bytes());
        let payload = payload.freeze();
        let mut names = self.names.write();
        if let Some((_, rid)) = names.get(name).copied() {
            self.engine.update(txn, rid, &payload)?;
            names.insert(name.to_string(), (oid, rid));
        } else {
            let rid = self.engine.insert(txn, &payload)?;
            names.insert(name.to_string(), (oid, rid));
        }
        Ok(())
    }

    /// Resolves a name.
    pub fn resolve_name(&self, name: &str) -> Option<Oid> {
        self.names.read().get(name).map(|(oid, _)| *oid)
    }

    /// Removes a binding.
    pub fn unbind_name(&self, txn: TxnId, name: &str) -> StorageResult<bool> {
        let mut names = self.names.write();
        if let Some((_, rid)) = names.remove(name) {
            self.engine.delete(txn, rid)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// All bound names (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = self.names.read().keys().cloned().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_storage::disk::{DiskManager, MemDisk};
    use sentinel_storage::wal::{LogStore, MemLogStore};

    fn store_with_handles() -> (Arc<MemDisk>, Arc<MemLogStore>, ObjectStore) {
        let disk = Arc::new(MemDisk::new());
        let log = Arc::new(MemLogStore::new());
        let engine = Arc::new(
            StorageEngine::open(
                disk.clone() as Arc<dyn DiskManager>,
                log.clone() as Arc<dyn LogStore>,
            )
            .unwrap(),
        );
        (disk, log, ObjectStore::open(engine).unwrap())
    }

    fn stock(sym: &str, price: f64) -> ObjectState {
        ObjectState::new("STOCK").with("symbol", sym).with("price", price)
    }

    #[test]
    fn create_get_update_delete() {
        let (_, _, store) = store_with_handles();
        let t = store.engine().begin().unwrap();
        let oid = store.create(t, &stock("IBM", 140.0)).unwrap();
        assert_eq!(store.get(t, oid).unwrap().get("symbol").unwrap().as_str(), Some("IBM"));
        let mut s = store.get(t, oid).unwrap();
        s.set("price", 141.5);
        store.update(t, oid, &s).unwrap();
        assert_eq!(store.get(t, oid).unwrap().get("price").unwrap().as_float(), Some(141.5));
        store.delete(t, oid).unwrap();
        assert!(store.get(t, oid).is_err());
        store.engine().commit(t).unwrap();
    }

    #[test]
    fn oids_are_unique_and_monotone() {
        let (_, _, store) = store_with_handles();
        let t = store.engine().begin().unwrap();
        let a = store.create(t, &stock("A", 1.0)).unwrap();
        let b = store.create(t, &stock("B", 2.0)).unwrap();
        assert!(b.0 > a.0);
        store.engine().commit(t).unwrap();
    }

    #[test]
    fn reopen_rebuilds_index_names_and_oid_counter() {
        let (disk, log, store) = store_with_handles();
        let t = store.engine().begin().unwrap();
        let oid = store.create(t, &stock("IBM", 140.0)).unwrap();
        store.bind_name(t, "ibm", oid).unwrap();
        store.engine().commit(t).unwrap();
        store.engine().shutdown().unwrap();
        drop(store);

        let engine = Arc::new(
            StorageEngine::open(disk as Arc<dyn DiskManager>, log as Arc<dyn LogStore>).unwrap(),
        );
        let store2 = ObjectStore::open(engine).unwrap();
        assert_eq!(store2.resolve_name("ibm"), Some(oid));
        let t = store2.engine().begin().unwrap();
        assert_eq!(store2.get(t, oid).unwrap().get("symbol").unwrap().as_str(), Some("IBM"));
        let fresh = store2.create(t, &stock("NEW", 1.0)).unwrap();
        assert!(fresh.0 > oid.0, "oid counter must advance past recovered oids");
        store2.engine().commit(t).unwrap();
    }

    #[test]
    fn name_rebind_and_unbind() {
        let (_, _, store) = store_with_handles();
        let t = store.engine().begin().unwrap();
        let a = store.create(t, &stock("A", 1.0)).unwrap();
        let b = store.create(t, &stock("B", 2.0)).unwrap();
        store.bind_name(t, "fav", a).unwrap();
        store.bind_name(t, "fav", b).unwrap();
        assert_eq!(store.resolve_name("fav"), Some(b));
        assert!(store.unbind_name(t, "fav").unwrap());
        assert!(!store.unbind_name(t, "fav").unwrap());
        assert_eq!(store.resolve_name("fav"), None);
        store.engine().commit(t).unwrap();
    }

    #[test]
    fn extent_lists_class_members_only() {
        let (_, _, store) = store_with_handles();
        let t = store.engine().begin().unwrap();
        let a = store.create(t, &stock("A", 1.0)).unwrap();
        let b = store.create(t, &stock("B", 2.0)).unwrap();
        let other = store.create(t, &ObjectState::new("BOND").with("symbol", "T")).unwrap();
        assert_eq!(store.extent(t, "STOCK").unwrap(), vec![a, b]);
        assert_eq!(store.extent(t, "BOND").unwrap(), vec![other]);
        assert!(store.extent(t, "GHOST").unwrap().is_empty());
        store.delete(t, a).unwrap();
        assert_eq!(store.extent(t, "STOCK").unwrap(), vec![b]);
        store.engine().commit(t).unwrap();
    }

    #[test]
    fn aborted_create_leaves_stale_index_entry_detected_on_read() {
        let (_, _, store) = store_with_handles();
        let t = store.engine().begin().unwrap();
        let oid = store.create(t, &stock("GHOST", 0.0)).unwrap();
        store.engine().abort(t).unwrap();
        let t2 = store.engine().begin().unwrap();
        assert!(store.get(t2, oid).is_err(), "rolled-back object unreadable");
        store.engine().commit(t2).unwrap();
    }
}
