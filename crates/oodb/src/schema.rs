//! Class model: single inheritance, typed attributes, method declarations.
//!
//! The registry mirrors what a C++ compiler knows about the user's classes
//! in the Open OODB world: it lives in code, not in the database. Method
//! *bodies* are registered separately in [`crate::invoke`]; the schema only
//! holds declarations.

use std::collections::HashMap;
use std::fmt;

use crate::object::{AttrValue, ObjectState};

/// Declared attribute types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// Signed integer.
    Int,
    /// Double-precision float.
    Float,
    /// Boolean.
    Bool,
    /// String.
    Str,
    /// Reference to another object.
    Ref,
}

impl AttrType {
    /// Whether `value` conforms to this type (Null conforms to all).
    pub fn admits(self, value: &AttrValue) -> bool {
        matches!(
            (self, value),
            (AttrType::Int, AttrValue::Int(_))
                | (AttrType::Float, AttrValue::Float(_))
                | (AttrType::Float, AttrValue::Int(_))
                | (AttrType::Bool, AttrValue::Bool(_))
                | (AttrType::Str, AttrValue::Str(_))
                | (AttrType::Ref, AttrValue::Ref(_))
                | (_, AttrValue::Null)
        )
    }
}

/// A declared method (signature only; bodies live in the method table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDef {
    /// Canonical signature, e.g. `void set_price(float price)`.
    pub sig: String,
}

/// A class definition.
#[derive(Debug, Clone, Default)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Single-inheritance parent.
    pub parent: Option<String>,
    /// Own (non-inherited) attributes.
    pub attrs: Vec<(String, AttrType)>,
    /// Own (non-inherited) methods.
    pub methods: Vec<MethodDef>,
}

impl ClassDef {
    /// A class with no parent.
    pub fn new(name: &str) -> Self {
        ClassDef { name: name.to_string(), ..ClassDef::default() }
    }

    /// Sets the parent class.
    pub fn extends(mut self, parent: &str) -> Self {
        self.parent = Some(parent.to_string());
        self
    }

    /// Declares an attribute.
    pub fn attr(mut self, name: &str, ty: AttrType) -> Self {
        self.attrs.push((name.to_string(), ty));
        self
    }

    /// Declares a method by signature.
    pub fn method(mut self, sig: &str) -> Self {
        self.methods.push(MethodDef { sig: sig.to_string() });
        self
    }
}

/// Schema errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Class already registered.
    Duplicate(String),
    /// Parent class missing.
    UnknownParent(String),
    /// Class not registered.
    UnknownClass(String),
    /// Attribute value violates its declared type.
    TypeMismatch {
        /// Class name.
        class: String,
        /// Attribute name.
        attr: String,
    },
    /// Attribute not declared on the class (or its ancestors).
    UnknownAttr {
        /// Class name.
        class: String,
        /// Attribute name.
        attr: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Duplicate(c) => write!(f, "class `{c}` already registered"),
            SchemaError::UnknownParent(c) => write!(f, "unknown parent class `{c}`"),
            SchemaError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            SchemaError::TypeMismatch { class, attr } => {
                write!(f, "type mismatch for `{class}.{attr}`")
            }
            SchemaError::UnknownAttr { class, attr } => {
                write!(f, "attribute `{attr}` not declared on `{class}`")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// The class registry.
#[derive(Debug, Default)]
pub struct ClassRegistry {
    classes: HashMap<String, ClassDef>,
}

impl ClassRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a class (its parent must already be registered).
    pub fn register(&mut self, def: ClassDef) -> Result<(), SchemaError> {
        if self.classes.contains_key(&def.name) {
            return Err(SchemaError::Duplicate(def.name));
        }
        if let Some(p) = &def.parent {
            if !self.classes.contains_key(p) {
                return Err(SchemaError::UnknownParent(p.clone()));
            }
        }
        self.classes.insert(def.name.clone(), def);
        Ok(())
    }

    /// Looks a class up.
    pub fn get(&self, name: &str) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    /// `class` and its ancestors, nearest first (the paper's inheritance
    /// chain: class-level events on an ancestor fire for descendants).
    pub fn chain(&self, class: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cur = self.classes.get(class);
        while let Some(c) = cur {
            out.push(c.name.as_str());
            cur = c.parent.as_deref().and_then(|p| self.classes.get(p));
        }
        out
    }

    /// Whether `class` equals or descends from `ancestor`.
    pub fn is_subclass(&self, class: &str, ancestor: &str) -> bool {
        self.chain(class).contains(&ancestor)
    }

    /// All attributes of `class` including inherited ones
    /// (ancestor-first so overrides read naturally).
    pub fn all_attrs(&self, class: &str) -> Vec<(&str, AttrType)> {
        let mut out = Vec::new();
        for c in self.chain(class).iter().rev() {
            if let Some(def) = self.classes.get(*c) {
                for (n, t) in &def.attrs {
                    out.push((n.as_str(), *t));
                }
            }
        }
        out
    }

    /// Resolves a method: returns the *declaring class* (walking up the
    /// chain), or None.
    pub fn resolve_method(&self, class: &str, sig: &str) -> Option<&str> {
        self.chain(class).into_iter().find(|c| {
            self.classes.get(*c).is_some_and(|def| def.methods.iter().any(|m| m.sig == sig))
        })
    }

    /// Validates an object's attributes against the schema.
    pub fn validate(&self, obj: &ObjectState) -> Result<(), SchemaError> {
        if !self.classes.contains_key(&obj.class) {
            return Err(SchemaError::UnknownClass(obj.class.clone()));
        }
        let declared: HashMap<&str, AttrType> = self.all_attrs(&obj.class).into_iter().collect();
        for (name, value) in &obj.attrs {
            match declared.get(name.as_str()) {
                None => {
                    return Err(SchemaError::UnknownAttr {
                        class: obj.class.clone(),
                        attr: name.clone(),
                    })
                }
                Some(ty) if !ty.admits(value) => {
                    return Err(SchemaError::TypeMismatch {
                        class: obj.class.clone(),
                        attr: name.clone(),
                    })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Registered class count.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.register(ClassDef::new("REACTIVE")).unwrap();
        reg.register(
            ClassDef::new("STOCK")
                .extends("REACTIVE")
                .attr("symbol", AttrType::Str)
                .attr("price", AttrType::Float)
                .method("void set_price(float price)")
                .method("int sell_stock(int qty)"),
        )
        .unwrap();
        reg.register(ClassDef::new("TECH_STOCK").extends("STOCK").attr("sector", AttrType::Str))
            .unwrap();
        reg
    }

    #[test]
    fn chain_walks_inheritance() {
        let reg = registry();
        assert_eq!(reg.chain("TECH_STOCK"), vec!["TECH_STOCK", "STOCK", "REACTIVE"]);
        assert!(reg.is_subclass("TECH_STOCK", "REACTIVE"));
        assert!(!reg.is_subclass("STOCK", "TECH_STOCK"));
    }

    #[test]
    fn method_resolution_up_the_chain() {
        let reg = registry();
        assert_eq!(reg.resolve_method("TECH_STOCK", "void set_price(float price)"), Some("STOCK"));
        assert_eq!(reg.resolve_method("TECH_STOCK", "void nope()"), None);
    }

    #[test]
    fn inherited_attrs_visible() {
        let reg = registry();
        let attrs = reg.all_attrs("TECH_STOCK");
        assert!(attrs.iter().any(|(n, _)| *n == "price"));
        assert!(attrs.iter().any(|(n, _)| *n == "sector"));
    }

    #[test]
    fn validation_catches_type_and_name_errors() {
        let reg = registry();
        let ok = ObjectState::new("TECH_STOCK").with("price", 10.0).with("sector", "software");
        reg.validate(&ok).unwrap();
        // Int is admitted where Float is declared (widening).
        reg.validate(&ObjectState::new("STOCK").with("price", 10)).unwrap();
        let bad_type = ObjectState::new("STOCK").with("price", "ten");
        assert!(matches!(reg.validate(&bad_type), Err(SchemaError::TypeMismatch { .. })));
        let bad_attr = ObjectState::new("STOCK").with("volume", 3);
        assert!(matches!(reg.validate(&bad_attr), Err(SchemaError::UnknownAttr { .. })));
        let bad_class = ObjectState::new("BOND");
        assert!(matches!(reg.validate(&bad_class), Err(SchemaError::UnknownClass(_))));
    }

    #[test]
    fn duplicate_and_missing_parent_rejected() {
        let mut reg = registry();
        assert!(matches!(reg.register(ClassDef::new("STOCK")), Err(SchemaError::Duplicate(_))));
        assert!(matches!(
            reg.register(ClassDef::new("X").extends("GHOST")),
            Err(SchemaError::UnknownParent(_))
        ));
    }
}
