//! Objects: identity, state, and the binary object-translation format.
//!
//! Objects are serialized into storage records with a small self-describing
//! binary codec (the "object translation" of Figure 1). The format is
//! hand-rolled (length-prefixed fields, tag bytes) so it is stable,
//! inspectable and needs no external format crate.

use std::collections::BTreeMap;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Object identity. Allocated monotonically by the object store; stable
/// across restarts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid#{}", self.0)
    }
}

/// An attribute value (atomic types + object references, matching the
/// parameter restrictions of the paper's event system).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// IEEE-754 double.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Reference to another object.
    Ref(Oid),
    /// Null / absent.
    Null,
}

impl AttrValue {
    /// Type tag for the codec.
    fn tag(&self) -> u8 {
        match self {
            AttrValue::Int(_) => 0,
            AttrValue::Float(_) => 1,
            AttrValue::Bool(_) => 2,
            AttrValue::Str(_) => 3,
            AttrValue::Ref(_) => 4,
            AttrValue::Null => 5,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float view (ints widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Reference view.
    pub fn as_ref_oid(&self) -> Option<Oid> {
        match self {
            AttrValue::Ref(o) => Some(*o),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Str(s) => write!(f, "{s:?}"),
            AttrValue::Ref(o) => write!(f, "{o}"),
            AttrValue::Null => f.write_str("null"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(v.into())
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<f32> for AttrValue {
    fn from(v: f32) -> Self {
        AttrValue::Float(v.into())
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<Oid> for AttrValue {
    fn from(v: Oid) -> Self {
        AttrValue::Ref(v)
    }
}

/// The persistent state of an object: its class and attribute map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObjectState {
    /// Class name.
    pub class: String,
    /// Attribute values (sorted map so the encoding is canonical).
    pub attrs: BTreeMap<String, AttrValue>,
}

impl ObjectState {
    /// A fresh object of `class` with no attributes set.
    pub fn new(class: &str) -> Self {
        ObjectState { class: class.to_string(), attrs: BTreeMap::new() }
    }

    /// Builder-style attribute setter.
    pub fn with(mut self, name: &str, value: impl Into<AttrValue>) -> Self {
        self.attrs.insert(name.to_string(), value.into());
        self
    }

    /// Reads an attribute.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.get(name)
    }

    /// Sets an attribute.
    pub fn set(&mut self, name: &str, value: impl Into<AttrValue>) {
        self.attrs.insert(name.to_string(), value.into());
    }

    /// Encodes into the object-translation format.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        put_str(&mut out, &self.class);
        out.put_u32_le(self.attrs.len() as u32);
        for (name, value) in &self.attrs {
            put_str(&mut out, name);
            out.put_u8(value.tag());
            match value {
                AttrValue::Int(i) => out.put_i64_le(*i),
                AttrValue::Float(f) => out.put_f64_le(*f),
                AttrValue::Bool(b) => out.put_u8(u8::from(*b)),
                AttrValue::Str(s) => put_str(&mut out, s),
                AttrValue::Ref(o) => out.put_u64_le(o.0),
                AttrValue::Null => {}
            }
        }
        out.freeze()
    }

    /// Decodes from the object-translation format.
    pub fn decode(mut buf: Bytes) -> Option<Self> {
        let class = get_str(&mut buf)?;
        if buf.remaining() < 4 {
            return None;
        }
        let n = buf.get_u32_le() as usize;
        let mut attrs = BTreeMap::new();
        for _ in 0..n {
            let name = get_str(&mut buf)?;
            if buf.remaining() < 1 {
                return None;
            }
            let tag = buf.get_u8();
            let value = match tag {
                0 => {
                    if buf.remaining() < 8 {
                        return None;
                    }
                    AttrValue::Int(buf.get_i64_le())
                }
                1 => {
                    if buf.remaining() < 8 {
                        return None;
                    }
                    AttrValue::Float(buf.get_f64_le())
                }
                2 => {
                    if buf.remaining() < 1 {
                        return None;
                    }
                    AttrValue::Bool(buf.get_u8() != 0)
                }
                3 => AttrValue::Str(get_str(&mut buf)?),
                4 => {
                    if buf.remaining() < 8 {
                        return None;
                    }
                    AttrValue::Ref(Oid(buf.get_u64_le()))
                }
                5 => AttrValue::Null,
                _ => return None,
            };
            attrs.insert(name, value);
        }
        Some(ObjectState { class, attrs })
    }
}

fn put_str(out: &mut BytesMut, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Option<String> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObjectState {
        ObjectState::new("STOCK")
            .with("symbol", "IBM")
            .with("price", 142.25)
            .with("qty", 100)
            .with("active", true)
            .with("broker", Oid(7))
            .with("note", AttrValue::Null)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let obj = sample();
        let bytes = obj.encode();
        let back = ObjectState::decode(bytes).unwrap();
        assert_eq!(obj, back);
    }

    #[test]
    fn empty_object_roundtrip() {
        let obj = ObjectState::new("EMPTY");
        assert_eq!(ObjectState::decode(obj.encode()).unwrap(), obj);
    }

    #[test]
    fn truncated_bytes_fail_cleanly() {
        let bytes = sample().encode();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(
                ObjectState::decode(bytes.slice(0..cut)).is_none(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn accessors_and_conversions() {
        let obj = sample();
        assert_eq!(obj.get("qty").unwrap().as_int(), Some(100));
        assert_eq!(obj.get("qty").unwrap().as_float(), Some(100.0));
        assert_eq!(obj.get("price").unwrap().as_float(), Some(142.25));
        assert_eq!(obj.get("symbol").unwrap().as_str(), Some("IBM"));
        assert_eq!(obj.get("broker").unwrap().as_ref_oid(), Some(Oid(7)));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn set_overwrites() {
        let mut obj = sample();
        obj.set("qty", 50);
        assert_eq!(obj.get("qty").unwrap().as_int(), Some(50));
    }

    #[test]
    fn unicode_strings_survive() {
        let obj = ObjectState::new("Ünïcode").with("名前", "société €");
        assert_eq!(ObjectState::decode(obj.encode()).unwrap(), obj);
    }
}
