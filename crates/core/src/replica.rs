//! Replica role: a follower node that rebuilds a primary's state from
//! the shipped replication stream and can be promoted on primary loss.
//!
//! A replica is, by construction, a **valid recovery prefix** of its
//! primary: it bootstraps from the primary's DDL catalog plus a
//! checkpoint-grade [`GraphSnapshot`], then applies the live stream —
//! events, epoch fences, and catalog ops, in the one total order the
//! primary's replication log records — through *exactly* the code paths
//! crash recovery uses ([`Sentinel::open_durable`]'s interleaved
//! catalog/fence/event replay). Detections produced while applying are
//! dropped, as in recovery: the primary's rules already fired (or died
//! with the primary, in which case promotion re-arms the half-detected
//! composites with their pre-crash constituent parameters intact).
//!
//! Everything a replica applies is re-journaled into its **own** durable
//! engine, so a restarted replica recovers locally and resumes tailing
//! from its watermark instead of re-bootstrapping. Automatic checkpoints
//! are disabled on a replica (`checkpoint_every` is forced to 0): the
//! engine's checkpointer could otherwise cut a snapshot in the window
//! between an entry's journal append and its graph apply, producing a
//! tag that disagrees with the graph. The apply loop
//! (`sentinel-cluster`) calls [`Sentinel::checkpoint_now`] at entry
//! boundaries instead, where the two always agree.

use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use sentinel_detector::GraphSnapshot;
use sentinel_durable::repl::bytes_to_hex;
use sentinel_durable::{CatalogOp, DurableEngine, DurableOptions, ReplEntry};
use sentinel_obs::flight::{self, FlightKind};
use sentinel_obs::{json, RecoveryReport, ReplicationStats};

use crate::durable::JournalSink;
use crate::sentinel::{Sentinel, SentinelConfig, SentinelError, SentinelResult};

impl Sentinel {
    /// Opens a **replica**: a durable Sentinel in read-only follower
    /// mode. Recovery of whatever the directory already holds runs
    /// exactly as in [`Sentinel::open_durable`], but no live journal
    /// sink is installed (the apply loop journals shipped entries
    /// explicitly) and automatic checkpoints are off (see the module
    /// docs). [`Sentinel::promote`] turns the result into a primary.
    pub fn open_replica(
        dir: &Path,
        config: SentinelConfig,
        opts: DurableOptions,
    ) -> SentinelResult<(Arc<Sentinel>, RecoveryReport)> {
        let opts = DurableOptions { checkpoint_every: 0, ..opts };
        let (sentinel, report) = Sentinel::open_durable_inner(dir, config, opts, false)?;
        sentinel.replica.store(true, Ordering::SeqCst);
        Ok((sentinel, report))
    }

    /// Promotes this replica to primary: installs the live journal sink
    /// (from here on locally-signalled events journal and detect as on
    /// any durable primary) and clears the read-only flag, so in-flight
    /// composites whose earlier constituents arrived over the stream
    /// complete with those pre-crash parameters. Idempotent; returns
    /// `false` if the node was not a replica.
    pub fn promote(&self) -> bool {
        if !self.replica.swap(false, Ordering::SeqCst) {
            return false;
        }
        let applied = self.repl_status.lock().take().map(|st| st.applied).unwrap_or(0);
        if let Some(engine) = self.durable.lock().clone() {
            self.detector().set_event_sink(Arc::new(JournalSink::new(engine)));
        }
        flight::global().record_static(FlightKind::Promote, "promote", applied, 0);
        true
    }

    /// Publishes the replica-side replication status (shown in stats,
    /// telemetry, and Prometheus). Kept fresh by the apply loop.
    pub fn set_repl_status(&self, status: Option<ReplicationStats>) {
        *self.repl_status.lock() = status;
    }

    /// Bootstraps an **empty** replica from a primary's
    /// [`Sentinel::repl_snapshot_json`] payload: applies the DDL catalog
    /// prefix (journal-suppressed, then re-journaled locally so the
    /// local catalog records the same interleaving), restores the
    /// graph snapshot, resyncs the clock past every pinned rule tick,
    /// and cuts a local checkpoint so a restart recovers without
    /// re-bootstrapping.
    pub fn bootstrap_replica(
        &self,
        catalog: &[CatalogOp],
        snapshot: &GraphSnapshot,
    ) -> SentinelResult<()> {
        let engine = self.repl_engine()?;
        for op in catalog {
            self.suppress_journal.store(true, Ordering::SeqCst);
            let applied = self.apply_catalog_op(op);
            self.suppress_journal.store(false, Ordering::SeqCst);
            applied?;
            engine.append_catalog(op)?;
        }
        self.detector()
            .restore_snapshot(snapshot)
            .map_err(|e| SentinelError::Spec(format!("bootstrap snapshot rejected: {e}")))?;
        let max_tick = catalog
            .iter()
            .filter_map(|op| match op {
                CatalogOp::DefineRule { defined_at, .. }
                | CatalogOp::EnableRule { defined_at, .. } => Some(*defined_at),
                _ => None,
            })
            .max();
        if let Some(t) = max_tick {
            self.detector().clock().advance_to(t);
        }
        self.checkpoint_now()?;
        flight::global().record_static(
            FlightKind::CatchUp,
            "bootstrap",
            snapshot.clock,
            catalog.len() as u64,
        );
        Ok(())
    }

    /// Applies one shipped replication entry through the recovery code
    /// paths, re-journaling it into the local engine. Events and fences
    /// journal first (their graph application cannot fail, and a crash
    /// in between recovers from the local journal); catalog ops apply
    /// first (a rejected op must not poison the local catalog).
    pub fn apply_repl_entry(&self, entry: &ReplEntry) -> SentinelResult<()> {
        let engine = self.durable.lock().clone();
        match entry {
            ReplEntry::Event { shard, ev, .. } => {
                if let Some(engine) = &engine {
                    engine.append_event(*shard, ev)?;
                }
                // Detections are dropped — recovery discipline: the
                // primary's rules fired (or promotion will complete them).
                let _ = self.detector().replay(std::slice::from_ref(ev));
            }
            ReplEntry::Fence { kind, ts, .. } => {
                if let Some(engine) = &engine {
                    engine.append_fence(*kind, *ts)?;
                }
                self.apply_fence(*kind);
            }
            ReplEntry::Catalog { op, .. } => {
                self.suppress_journal.store(true, Ordering::SeqCst);
                let applied = self.apply_catalog_op(op);
                self.suppress_journal.store(false, Ordering::SeqCst);
                applied?;
                if let Some(engine) = &engine {
                    engine.append_catalog(op)?;
                }
                // Pinned definition ticks do not tick the local clock;
                // keep it in lockstep with the primary's.
                if let CatalogOp::DefineRule { defined_at, .. }
                | CatalogOp::EnableRule { defined_at, .. } = op
                {
                    self.detector().clock().advance_to(*defined_at);
                }
            }
        }
        Ok(())
    }

    // --- primary-side wire handlers -----------------------------------

    fn repl_engine(&self) -> SentinelResult<Arc<DurableEngine>> {
        self.durable.lock().clone().ok_or_else(|| {
            SentinelError::Spec(
                "replication requires a durable node (start with --data-dir)".to_string(),
            )
        })
    }

    /// Handles `ReplSubscribe`: registers `follower` (at watermark 0
    /// until its first ack) and returns the log tip plus this
    /// application's id, so the follower mirrors the app id.
    pub fn repl_subscribe_json(&self, follower: &str) -> SentinelResult<json::Value> {
        let engine = self.repl_engine()?;
        let repl = engine.replication();
        repl.ack(follower, 0);
        Ok(json::Value::obj([
            ("tip", json::Value::UInt(repl.tip())),
            ("app", json::Value::UInt(u64::from(self.app_id()))),
        ]))
    }

    /// Handles `ReplSnapshot`: cuts a bootstrap package with signalling
    /// paused, so the sequence number, catalog prefix, and graph
    /// snapshot agree — entries `>= seq` are exactly what the snapshot
    /// does not yet contain.
    pub fn repl_snapshot_json(&self) -> SentinelResult<json::Value> {
        let engine = self.repl_engine()?;
        let repl = engine.replication().clone();
        let det = self.detector();
        let (seq, snap) = det.with_signals_paused(|| (repl.tip(), det.snapshot_state()));
        let catalog = repl.catalog_prefix(seq);
        flight::global().record_static(FlightKind::CatchUp, "snapshot", seq, catalog.len() as u64);
        Ok(json::Value::obj([
            ("seq", json::Value::UInt(seq)),
            ("catalog", json::Value::Arr(catalog)),
            ("snapshot", json::Value::Str(bytes_to_hex(&snap.encode()))),
            ("clock", json::Value::UInt(snap.clock)),
        ]))
    }

    /// Handles `ReplFrames`: the wire encoding of log entries
    /// `[from, from+max)` plus the current tip.
    pub fn repl_frames_json(&self, from: u64, max: u64) -> SentinelResult<json::Value> {
        let engine = self.repl_engine()?;
        let (entries, tip) = engine.replication().range_json(from, max);
        Ok(json::Value::obj([
            ("entries", json::Value::Arr(entries)),
            ("tip", json::Value::UInt(tip)),
        ]))
    }

    /// Handles `ReplAck`: records `follower`'s apply watermark and
    /// returns the current tip (the follower's next poll hint).
    pub fn repl_ack_json(&self, follower: &str, applied: u64) -> SentinelResult<json::Value> {
        let engine = self.repl_engine()?;
        engine.replication().ack(follower, applied);
        Ok(json::Value::obj([("tip", json::Value::UInt(engine.replication().tip()))]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_durable::repl::bytes_from_hex;
    use sentinel_durable::FsyncPolicy;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sentinel-replica-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts() -> DurableOptions {
        DurableOptions { fsync: FsyncPolicy::Never, ..DurableOptions::default() }
    }

    /// A replica bootstrapped from a primary snapshot and fed the live
    /// stream detects nothing by itself, but after promotion completes a
    /// half-detected composite with the pre-crash constituent's params.
    #[test]
    fn replica_mirrors_primary_and_completes_composite_after_promote() {
        let pdir = tmpdir("primary");
        let rdir = tmpdir("replica");
        let (primary, _) =
            Sentinel::open_durable(&pdir, SentinelConfig::default(), opts()).unwrap();
        primary.declare_explicit("e_a").unwrap();
        primary.declare_explicit("e_b").unwrap();
        primary.define_event("pair", "e_a ; e_b").unwrap();
        primary
            .define_rule_spec(&json::Value::parse(
                r#"{"name":"R","event":"pair","context":"chronicle","action":{"action":"count"}}"#,
            ).unwrap())
            .unwrap();

        // First constituent lands on the primary and ships.
        primary.raise(None, "e_a", vec![("k".into(), sentinel_detector::Value::Int(7))]).unwrap();

        // Follower: bootstrap from the snapshot payload, then tail.
        let snap_json = primary.repl_snapshot_json().unwrap();
        let seq = snap_json.get("seq").and_then(json::Value::as_u64).unwrap();
        let catalog: Vec<CatalogOp> = snap_json
            .get("catalog")
            .and_then(json::Value::as_arr)
            .unwrap()
            .iter()
            .map(|v| CatalogOp::from_json(v).unwrap().1)
            .collect();
        let raw = bytes_from_hex(snap_json.get("snapshot").and_then(json::Value::as_str).unwrap())
            .unwrap();
        let snap = GraphSnapshot::decode(raw.into()).unwrap();

        let (replica, _) =
            Sentinel::open_replica(&rdir, SentinelConfig::default(), opts()).unwrap();
        assert!(replica.is_replica());
        replica.bootstrap_replica(&catalog, &snap).unwrap();

        // Stream whatever the primary appended after the snapshot cut.
        let frames = primary.repl_frames_json(seq, 1024).unwrap();
        for e in frames.get("entries").and_then(json::Value::as_arr).unwrap() {
            replica.apply_repl_entry(&ReplEntry::from_json(e).unwrap()).unwrap();
        }
        // Nothing fired on the replica: apply drops detections.
        assert_eq!(replica.stats().rule_hits.get("R"), None);

        // Primary is gone; promote and finish the composite locally.
        assert!(replica.promote());
        assert!(!replica.is_replica());
        assert!(!replica.promote(), "promote is idempotent");
        replica.raise(None, "e_b", vec![("m".into(), sentinel_detector::Value::Int(9))]).unwrap();
        let stats = replica.stats();
        assert_eq!(stats.rule_hits.get("R"), Some(&1));
        let last = stats.rule_last.get("R").expect("params recorded");
        assert!(last.contains("e_a(k=7)"), "pre-crash constituent params survive: {last}");
        assert!(last.contains("e_b(m=9)"), "post-promotion constituent: {last}");

        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&rdir);
    }

    /// A restarted replica recovers locally (catalog + checkpoint +
    /// journal) and reports the same graph as before the restart.
    #[test]
    fn replica_restart_recovers_from_local_journal() {
        let pdir = tmpdir("primary2");
        let rdir = tmpdir("replica2");
        let (primary, _) =
            Sentinel::open_durable(&pdir, SentinelConfig::default(), opts()).unwrap();
        primary.declare_explicit("tick").unwrap();
        primary
            .define_rule_spec(
                &json::Value::parse(r#"{"name":"T","event":"tick","action":{"action":"count"}}"#)
                    .unwrap(),
            )
            .unwrap();
        for _ in 0..5 {
            primary.raise(None, "tick", vec![]).unwrap();
        }

        let snap_json = primary.repl_snapshot_json().unwrap();
        let seq = snap_json.get("seq").and_then(json::Value::as_u64).unwrap();
        let catalog: Vec<CatalogOp> = snap_json
            .get("catalog")
            .and_then(json::Value::as_arr)
            .unwrap()
            .iter()
            .map(|v| CatalogOp::from_json(v).unwrap().1)
            .collect();
        let bootstrap_entries = catalog.len() as u64;
        let raw = bytes_from_hex(snap_json.get("snapshot").and_then(json::Value::as_str).unwrap())
            .unwrap();
        let snap = GraphSnapshot::decode(raw.into()).unwrap();

        {
            let (replica, _) =
                Sentinel::open_replica(&rdir, SentinelConfig::default(), opts()).unwrap();
            replica.bootstrap_replica(&catalog, &snap).unwrap();
            let frames = primary.repl_frames_json(seq, 1024).unwrap();
            for e in frames.get("entries").and_then(json::Value::as_arr).unwrap() {
                replica.apply_repl_entry(&ReplEntry::from_json(e).unwrap()).unwrap();
            }
            replica.flush_journal().unwrap();
            // Drop = crash (durable Sentinels never flush on drop).
        }

        let (replica, report) =
            Sentinel::open_replica(&rdir, SentinelConfig::default(), opts()).unwrap();
        assert!(report.checkpoint_tag.is_some(), "bootstrap checkpoint restored");
        // The local log re-seeds deterministically: its tip minus the
        // bootstrapped catalog prefix is the number of streamed entries
        // this replica had applied — the resume watermark offset.
        let local_tip = replica.durable_engine().unwrap().replication().tip();
        let frames = primary.repl_frames_json(seq, 1024).unwrap();
        let streamed = frames.get("entries").and_then(json::Value::as_arr).unwrap().len() as u64;
        assert_eq!(local_tip - bootstrap_entries, streamed);
        // And promotion still works after a local recovery.
        assert!(replica.promote());
        replica.raise(None, "tick", vec![]).unwrap();
        assert_eq!(replica.stats().rule_hits.get("T"), Some(&1));

        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&rdir);
    }
}
