//! The Sentinel facade: an active OODBMS.
//!
//! Construction assembles Figure 1: a passive object database over the
//! Exodus-analogue storage engine, a local composite event detector, a rule
//! manager + scheduler, the invocation/transaction bridges, and the two
//! deactivatable system rules that flush the event graph at transaction
//! boundaries ("we provide a flush operation … invoked as an action of a
//! rule on abort and commit events. However, these can be easily modified
//! by deactivating these rules if events across transaction boundaries need
//! to be detected", §3.2.2 item 3).

use std::collections::BTreeMap;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use sentinel_detector::graph::{GraphError, PrimTarget};
use sentinel_detector::{Detection, DetectorStats, EventId, LocalEventDetector, Value};
use sentinel_durable::{CatalogOp, DurableEngine, DurableError};
use sentinel_obs::span::{self, TraceStore};
use sentinel_obs::trace::Field;
use sentinel_obs::{export, json, TraceBus, TraceBusStats};
use sentinel_obs::{DurabilityStats, FollowerLag, ReplicationStats};
use sentinel_oodb::invoke::{Database, DbError};
use sentinel_oodb::{AttrValue, ObjectState, Oid};
use sentinel_rules::debugger::RuleDebugger;
use sentinel_rules::manager::RuleOptions;
use sentinel_rules::scheduler::DetachedRequest;
use sentinel_rules::{
    ActionFn, CondFn, ExecutionMode, RuleError, RuleId, RuleInvocation, RuleManager, RuleScheduler,
    SchedulerStats,
};
use sentinel_snoop::ast::EventModifier;
use sentinel_snoop::{parse_event_expr, ParseError, TriggerMode};
use sentinel_storage::{StorageEngine, StorageError, StorageStats, TxnId};

use crate::bridge::{EventBridge, TxnBridge};

/// Name of the deactivatable flush-on-commit system rule.
pub const FLUSH_ON_COMMIT_RULE: &str = "__flush_on_commit";
/// Name of the deactivatable flush-on-abort system rule.
pub const FLUSH_ON_ABORT_RULE: &str = "__flush_on_abort";

/// Errors surfaced by the Sentinel facade.
#[derive(Debug)]
pub enum SentinelError {
    /// Passive-database error.
    Db(DbError),
    /// Storage-engine error.
    Storage(StorageError),
    /// Event-graph error.
    Graph(GraphError),
    /// Rule-management error.
    Rule(RuleError),
    /// Event/rule specification parse error.
    Parse(ParseError),
    /// Name resolution failure.
    Unknown(String),
    /// Malformed declarative spec (wire-protocol class/rule JSON).
    Spec(String),
    /// Durability-layer failure (journal, catalog, or checkpoint I/O).
    Durable(DurableError),
}

impl fmt::Display for SentinelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SentinelError::Db(e) => write!(f, "{e}"),
            SentinelError::Storage(e) => write!(f, "{e}"),
            SentinelError::Graph(e) => write!(f, "{e}"),
            SentinelError::Rule(e) => write!(f, "{e}"),
            SentinelError::Parse(e) => write!(f, "{e}"),
            SentinelError::Unknown(n) => write!(f, "unknown name `{n}`"),
            SentinelError::Spec(msg) => write!(f, "{msg}"),
            SentinelError::Durable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SentinelError {}

impl From<DurableError> for SentinelError {
    fn from(e: DurableError) -> Self {
        SentinelError::Durable(e)
    }
}

impl From<DbError> for SentinelError {
    fn from(e: DbError) -> Self {
        SentinelError::Db(e)
    }
}
impl From<StorageError> for SentinelError {
    fn from(e: StorageError) -> Self {
        SentinelError::Storage(e)
    }
}
impl From<GraphError> for SentinelError {
    fn from(e: GraphError) -> Self {
        SentinelError::Graph(e)
    }
}
impl From<RuleError> for SentinelError {
    fn from(e: RuleError) -> Self {
        SentinelError::Rule(e)
    }
}
impl From<ParseError> for SentinelError {
    fn from(e: ParseError) -> Self {
        SentinelError::Parse(e)
    }
}

/// Result alias.
pub type SentinelResult<T> = Result<T, SentinelError>;

/// Construction options.
#[derive(Debug, Clone)]
pub struct SentinelConfig {
    /// Application id (distinguishes clients at the global detector).
    pub app_id: u32,
    /// Rule execution mode. `Inline` is deterministic (tests, batch);
    /// `Threaded` is the paper's lightweight-process model.
    pub mode: ExecutionMode,
    /// Start the detached-rule executor thread.
    pub detached_executor: bool,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig { app_id: 0, mode: ExecutionMode::Inline, detached_executor: true }
    }
}

/// Combined observability snapshot across every Sentinel subsystem: the
/// event detector, the rule scheduler and the storage engine. Obtained from
/// [`Sentinel::stats`]; serialize with [`SentinelStats::to_json`] or
/// `Display` (which prints the same compact JSON).
#[derive(Debug, Clone, Default)]
pub struct SentinelStats {
    /// Event-detector counters (signals, per-node emission/consumption,
    /// flush activity).
    pub detector: DetectorStats,
    /// Rule-scheduler counters (fired per coupling mode, priority classes,
    /// condition/action wall-time, panics).
    pub scheduler: SchedulerStats,
    /// Storage counters (WAL appends/forces, buffer hit ratio, page I/O).
    pub storage: StorageStats,
    /// Trace-bus counters (records emitted, deliveries dropped to slow
    /// subscribers, live subscribers).
    pub trace_bus: TraceBusStats,
    /// Durability counters (journal/catalog/checkpoint activity); `None`
    /// when the system was not opened durably.
    pub durability: Option<DurabilityStats>,
    /// Replication state (log tip, follower lag, or a replica's apply
    /// watermark); `None` when this node neither ships nor follows.
    pub replication: Option<ReplicationStats>,
    /// Fire counts of catalog (`{"action": "count"}`) rules, by rule name.
    pub rule_hits: BTreeMap<String, u64>,
    /// Rendered parameters of each catalog rule's most recent firing.
    pub rule_last: BTreeMap<String, String>,
}

impl SentinelStats {
    /// Serializes the snapshot as a JSON value.
    pub fn to_json(&self) -> json::Value {
        let mut pairs = vec![
            ("detector".to_string(), self.detector.to_json()),
            ("scheduler".to_string(), self.scheduler.to_json()),
            ("storage".to_string(), self.storage.to_json()),
            ("trace_bus".to_string(), self.trace_bus.to_json()),
            (
                "rule_hits".to_string(),
                json::Value::Obj(
                    self.rule_hits
                        .iter()
                        .map(|(k, v)| (k.clone(), json::Value::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "rule_last".to_string(),
                json::Value::Obj(
                    self.rule_last.iter().map(|(k, v)| (k.clone(), json::Value::str(v))).collect(),
                ),
            ),
        ];
        if let Some(d) = &self.durability {
            pairs.push(("durability".to_string(), d.to_json()));
        }
        if let Some(r) = &self.replication {
            pairs.push(("replication".to_string(), r.to_json()));
        }
        json::Value::Obj(pairs)
    }
}

impl fmt::Display for SentinelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

/// An active object-oriented database (one application/client).
pub struct Sentinel {
    db: Arc<Database>,
    detector: Arc<LocalEventDetector>,
    scheduler: Arc<RuleScheduler>,
    trace: Arc<TraceBus>,
    spans: Arc<TraceStore>,
    config: SentinelConfig,
    detached_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// The durability engine, present only for systems opened with
    /// [`Sentinel::open_durable`]. Installed *after* recovery replay so
    /// replayed DDL and events are never re-journaled.
    pub(crate) durable: Mutex<Option<Arc<DurableEngine>>>,
    /// Fire counts of catalog (`{"action": "count"}`) rules.
    pub(crate) rule_hits: Arc<Mutex<BTreeMap<String, u64>>>,
    /// Rendered parameters of each catalog rule's most recent firing.
    pub(crate) rule_last: Arc<Mutex<BTreeMap<String, String>>>,
    /// Live time-series registry plus its sampler thread, when
    /// [`Sentinel::start_telemetry`] is on.
    pub(crate) telemetry: Mutex<crate::telemetry::TelemetrySlot>,
    /// `true` while this node is a read-only follower; cleared by
    /// [`Sentinel::promote`].
    pub(crate) replica: AtomicBool,
    /// While set, [`journal_op`](Sentinel::define_rule_spec) suppression:
    /// catalog ops applied from a shipped replication stream must not be
    /// re-journaled through the DDL wrappers (the apply path journals them
    /// explicitly, preserving the primary's `at_index` interleaving).
    pub(crate) suppress_journal: AtomicBool,
    /// Replica-side replication status, kept fresh by the follower apply
    /// loop (`sentinel-cluster`); `None` on a primary.
    pub(crate) repl_status: Mutex<Option<ReplicationStats>>,
    /// The actually-bound listen address, set by the network server once
    /// its listener exists — the resolved port even when asked for port 0.
    pub(crate) bound_addr: Mutex<Option<SocketAddr>>,
}

impl Sentinel {
    /// An in-memory Sentinel with default configuration.
    pub fn in_memory() -> Arc<Self> {
        Self::open(Arc::new(StorageEngine::in_memory()), SentinelConfig::default())
            .expect("in-memory sentinel")
    }

    /// An in-memory Sentinel with an explicit configuration.
    pub fn in_memory_with(config: SentinelConfig) -> Arc<Self> {
        Self::open(Arc::new(StorageEngine::in_memory()), config).expect("in-memory sentinel")
    }

    /// Opens Sentinel over a storage engine.
    pub fn open(engine: Arc<StorageEngine>, config: SentinelConfig) -> SentinelResult<Arc<Self>> {
        let db = Arc::new(Database::open(engine.clone())?);
        // The global REACTIVE base class of §3.2.
        db.register_class(sentinel_oodb::ClassDef::new("REACTIVE"))?;

        let detector = Arc::new(LocalEventDetector::new(config.app_id));
        let manager = Arc::new(RuleManager::new(detector.clone()));
        let scheduler = RuleScheduler::new(manager.clone(), config.mode);

        // One trace bus spans detector + scheduler; it stays silent (a
        // single atomic load per emission site) until someone subscribes.
        let trace = Arc::new(TraceBus::new());
        detector.set_trace_bus(trace.clone());
        scheduler.set_trace_bus(trace.clone());

        // One span store spans the whole causal chain — primitive signal,
        // composite detection, condition/action, WAL force, page I/O. It is
        // disabled until [`Sentinel::set_tracing`] turns it on.
        let spans = Arc::new(TraceStore::new());
        detector.set_trace_store(spans.clone());
        scheduler.set_trace_store(spans.clone());
        engine.set_trace_store(spans.clone());

        // Post-processor seam: wrapper methods notify the detector.
        db.add_hooks(Arc::new(EventBridge::new(detector.clone(), scheduler.clone())));
        // Reactive system class: transaction events.
        engine.add_txn_observer(Arc::new(TxnBridge::new(detector.clone(), scheduler.clone())));
        // Subtransaction-level recovery (the paper's §4 extension): a
        // failing rule body rolls its own writes back to the savepoint
        // taken when it started, leaving the rest of the transaction intact.
        {
            let mark_engine = engine.clone();
            let rollback_engine = engine.clone();
            scheduler.set_savepoint_hooks(sentinel_rules::SavepointHooks {
                mark: Box::new(move |txn| mark_engine.savepoint(TxnId(txn)).ok()),
                rollback: Box::new(move |txn, mark| {
                    let _ = rollback_engine.rollback_to(TxnId(txn), mark);
                }),
            });
        }

        // Deactivatable flush rules (priority class 0 = after user rules).
        let commit_ev = detector.lookup("commit-transaction").expect("predeclared");
        let abort_ev = detector.lookup("abort-transaction").expect("predeclared");
        for (rule_name, event) in
            [(FLUSH_ON_COMMIT_RULE, commit_ev), (FLUSH_ON_ABORT_RULE, abort_ev)]
        {
            let det = detector.clone();
            manager.define_rule(
                rule_name,
                event,
                Arc::new(|_| true),
                Arc::new(move |inv: &RuleInvocation| {
                    if let Some(txn) = inv.occurrence.txn {
                        det.flush_txn(txn);
                    }
                }),
                RuleOptions::default().priority(0).trigger(TriggerMode::Previous),
            )?;
        }

        let sentinel = Arc::new(Sentinel {
            db,
            detector,
            scheduler,
            trace,
            spans,
            config: config.clone(),
            detached_thread: Mutex::new(None),
            durable: Mutex::new(None),
            rule_hits: Arc::new(Mutex::new(BTreeMap::new())),
            rule_last: Arc::new(Mutex::new(BTreeMap::new())),
            telemetry: Mutex::new(None),
            replica: AtomicBool::new(false),
            suppress_journal: AtomicBool::new(false),
            repl_status: Mutex::new(None),
            bound_addr: Mutex::new(None),
        });
        if config.detached_executor {
            sentinel.spawn_detached_executor();
        }
        Ok(sentinel)
    }

    /// Starts the detached-rule executor: detached rules run here in their
    /// own top-level transactions, decoupled from the triggering one.
    fn spawn_detached_executor(self: &Arc<Self>) {
        let rx = self.scheduler.detached_requests();
        let weak = Arc::downgrade(self);
        let handle = std::thread::Builder::new()
            .name(format!("sentinel-detached-{}", self.config.app_id))
            .spawn(move || {
                while let Ok(DetachedRequest { rule, occurrence }) = rx.recv() {
                    let Some(s) = weak.upgrade() else { break };
                    let Ok(txn) = s.db.begin() else { continue };
                    let body = s.scheduler.manager().with_rule(rule, |r| {
                        (r.name.clone(), r.condition.clone(), r.action.clone())
                    });
                    let Ok((name, cond, action)) = body else {
                        let _ = s.db.abort(txn);
                        continue;
                    };
                    let inv = RuleInvocation {
                        rule,
                        rule_name: name,
                        occurrence,
                        depth: 0,
                        txn: Some(txn.0),
                        subtxn: None,
                    };
                    let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if (cond)(&inv) {
                            (action)(&inv);
                        }
                    }))
                    .is_ok();
                    if ok {
                        let _ = s.db.commit(txn);
                    } else {
                        let _ = s.db.abort(txn);
                    }
                }
            })
            .expect("spawn detached executor");
        *self.detached_thread.lock() = Some(handle);
    }

    // --- accessors ---------------------------------------------------

    /// The passive object database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The local composite event detector.
    pub fn detector(&self) -> &Arc<LocalEventDetector> {
        &self.detector
    }

    /// The rule scheduler.
    pub fn scheduler(&self) -> &Arc<RuleScheduler> {
        &self.scheduler
    }

    /// The rule manager.
    pub fn rules(&self) -> &Arc<RuleManager> {
        self.scheduler.manager()
    }

    /// The rule debugger.
    pub fn debugger(&self) -> &Arc<RuleDebugger> {
        self.scheduler.debugger()
    }

    /// This application's id.
    pub fn app_id(&self) -> u32 {
        self.config.app_id
    }

    /// The shared trace bus. Subscribe (e.g. via
    /// [`RuleDebugger::attach_stream`]) to receive structured trace records
    /// from the detector and the scheduler; with no subscribers the bus
    /// costs one atomic load per would-be emission.
    pub fn trace(&self) -> &Arc<TraceBus> {
        &self.trace
    }

    /// The provenance span store. Query it (by trace, by rule, by event,
    /// slowest-N) after enabling tracing with [`Sentinel::set_tracing`].
    pub fn trace_store(&self) -> &Arc<TraceStore> {
        &self.spans
    }

    /// Turns causal provenance tracing on or off. Off (the default) every
    /// instrumentation site short-circuits on one relaxed atomic load.
    pub fn set_tracing(&self, on: bool) {
        self.spans.set_enabled(on);
    }

    /// Renders every recorded span as Chrome trace-event JSON — load the
    /// string into Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    pub fn export_chrome_trace(&self) -> String {
        export::to_chrome_trace_json(&self.spans.snapshot())
    }

    /// Snapshot of the observability counters across all subsystems.
    pub fn stats(&self) -> SentinelStats {
        // Taken before the struct literal: a guard temporary inside it
        // would live across the `replication_stats` call below, which
        // locks `self.durable` again.
        let durability = self.durable.lock().as_ref().map(|e| e.stats());
        SentinelStats {
            detector: self.detector.stats(),
            scheduler: self.scheduler.stats(),
            storage: self.db.engine().stats(),
            trace_bus: self.trace.stats(),
            durability,
            replication: self.replication_stats(),
            rule_hits: self.rule_hits.lock().clone(),
            rule_last: self.rule_last.lock().clone(),
        }
    }

    /// This node's replication state: the apply-loop snapshot on a replica,
    /// tip + follower lag on a primary with subscribers, `None` for a
    /// plain single-node system.
    pub fn replication_stats(&self) -> Option<ReplicationStats> {
        if let Some(status) = self.repl_status.lock().clone() {
            return Some(status);
        }
        let durable = self.durable.lock();
        let engine = durable.as_ref()?;
        let repl = engine.replication();
        let followers = repl.followers();
        if followers.is_empty() {
            return None;
        }
        let tip = repl.tip();
        Some(ReplicationStats {
            role: "primary".into(),
            tip,
            followers: followers
                .into_iter()
                .map(|f| FollowerLag {
                    lag: tip.saturating_sub(f.applied),
                    name: f.name,
                    applied: f.applied,
                    age_secs: f.age_secs,
                })
                .collect(),
            ..ReplicationStats::default()
        })
    }

    /// `true` while this node is a read-only follower (writes are refused
    /// over the wire; the apply loop is the only mutator).
    pub fn is_replica(&self) -> bool {
        self.replica.load(Ordering::SeqCst)
    }

    /// The address the network server actually bound (resolved even when
    /// the listen address requested port 0), once a server is running.
    pub fn bound_addr(&self) -> Option<SocketAddr> {
        *self.bound_addr.lock()
    }

    /// Records the server's actually-bound listen address. Called by the
    /// network layer right after `bind()` succeeds.
    pub fn set_bound_addr(&self, addr: SocketAddr) {
        *self.bound_addr.lock() = Some(addr);
    }

    // --- transactions ------------------------------------------------

    /// Begins a top-level transaction (fires `begin-transaction`).
    pub fn begin(&self) -> SentinelResult<TxnId> {
        Ok(self.db.begin()?)
    }

    /// Commits (fires `pre-commit-transaction`, deferred rules run, then
    /// `commit-transaction` and the flush rule).
    pub fn commit(&self, txn: TxnId) -> SentinelResult<()> {
        Ok(self.db.commit(txn)?)
    }

    /// Aborts (fires `abort-transaction` and the flush rule).
    pub fn abort(&self, txn: TxnId) -> SentinelResult<()> {
        Ok(self.db.abort(txn)?)
    }

    // --- objects -------------------------------------------------------

    /// Creates an object.
    pub fn create_object(&self, txn: TxnId, state: &ObjectState) -> SentinelResult<Oid> {
        Ok(self.db.create_object(txn, state)?)
    }

    /// Reads an object.
    pub fn get_object(&self, txn: TxnId, oid: Oid) -> SentinelResult<ObjectState> {
        Ok(self.db.get_object(txn, oid)?)
    }

    /// Invokes a method through the active wrapper: primitive events are
    /// signalled before/after the body and immediate rules execute before
    /// this returns.
    pub fn invoke(
        &self,
        txn: TxnId,
        oid: Oid,
        sig: &str,
        args: Vec<(String, AttrValue)>,
    ) -> SentinelResult<AttrValue> {
        Ok(self.db.invoke(txn, oid, sig, args)?)
    }

    // --- events -----------------------------------------------------

    /// Declares a method-event primitive (class- or instance-level).
    pub fn declare_event(
        &self,
        name: &str,
        class: &str,
        modifier: EventModifier,
        sig: &str,
        target: PrimTarget,
    ) -> SentinelResult<EventId> {
        let id = self.detector.declare_primitive(name, class, modifier, sig, target)?;
        self.journal_op(&CatalogOp::DeclarePrimitive {
            name: name.to_string(),
            class: class.to_string(),
            edge: crate::durable::edge_name(modifier).to_string(),
            sig: sig.to_string(),
            oid: match target {
                PrimTarget::AnyInstance => None,
                PrimTarget::Instance(o) => Some(o),
            },
        })?;
        Ok(id)
    }

    /// Declares a name-matched explicit (abstract) event.
    pub fn declare_explicit(&self, name: &str) -> SentinelResult<EventId> {
        let id = self.detector.declare_explicit(name);
        self.journal_op(&CatalogOp::DeclareExplicit { name: name.to_string() })?;
        Ok(id)
    }

    /// Defines a named composite event from Snoop source text
    /// (`"e1 ^ e2"`, `"A*(begin-transaction, e, pre-commit-transaction)"`…).
    pub fn define_event(&self, name: &str, expr_src: &str) -> SentinelResult<EventId> {
        let expr = parse_event_expr(expr_src)?;
        let id = self.detector.define_named(name, &expr)?;
        self.journal_op(&CatalogOp::DefineEvent {
            name: name.to_string(),
            expr: expr_src.to_string(),
        })?;
        Ok(id)
    }

    /// Looks up a named event.
    pub fn event(&self, name: &str) -> SentinelResult<EventId> {
        self.detector.lookup(name).ok_or_else(|| SentinelError::Unknown(name.to_string()))
    }

    /// Raises an explicit (abstract) event from application code; immediate
    /// rules execute before this returns.
    pub fn raise(
        &self,
        txn: Option<TxnId>,
        name: &str,
        params: Vec<(Arc<str>, Value)>,
    ) -> SentinelResult<()> {
        let dets = self.detector.signal_explicit(name, params, txn.map(|t| t.0));
        self.scheduler.dispatch(dets);
        Ok(())
    }

    // --- rules -----------------------------------------------------------

    /// Defines a rule on a named event.
    pub fn define_rule(
        &self,
        name: &str,
        event: &str,
        condition: CondFn,
        action: ActionFn,
        opts: RuleOptions,
    ) -> SentinelResult<RuleId> {
        let ev = self.event(event)?;
        Ok(self.rules().define_rule(name, ev, condition, action, opts)?)
    }

    /// Parses and applies a §3.1 specification (classes, events, rules)
    /// against this system — convenience wrapper over
    /// [`crate::preprocessor::Preprocessor`].
    pub fn load_spec(
        &self,
        txn: TxnId,
        src: &str,
        table: &crate::preprocessor::FunctionTable,
    ) -> SentinelResult<crate::preprocessor::AppliedSpec> {
        crate::preprocessor::Preprocessor::new(self).apply(txn, src, table)
    }

    /// Enables a rule by name.
    pub fn enable_rule(&self, name: &str) -> SentinelResult<()> {
        let id =
            self.rules().lookup(name).ok_or_else(|| SentinelError::Unknown(name.to_string()))?;
        self.rules().enable(id)?;
        let defined_at = self.rules().with_rule(id, |r| r.defined_at)?;
        self.journal_op(&CatalogOp::EnableRule { name: name.to_string(), defined_at })?;
        Ok(())
    }

    /// Disables a rule by name (e.g. the flush rules, to let events cross
    /// transaction boundaries).
    pub fn disable_rule(&self, name: &str) -> SentinelResult<()> {
        let id =
            self.rules().lookup(name).ok_or_else(|| SentinelError::Unknown(name.to_string()))?;
        self.rules().disable(id)?;
        self.journal_op(&CatalogOp::DisableRule { name: name.to_string() })?;
        Ok(())
    }

    /// Drops (deletes) a rule by name.
    pub fn drop_rule(&self, name: &str) -> SentinelResult<()> {
        let id =
            self.rules().lookup(name).ok_or_else(|| SentinelError::Unknown(name.to_string()))?;
        self.rules().delete(id)?;
        self.journal_op(&CatalogOp::DropRule { name: name.to_string() })?;
        Ok(())
    }

    // --- serving ------------------------------------------------------

    /// A cheaply clonable handle for exposing this system over a network
    /// boundary (the `sentinel-net` server). Connection threads clone it
    /// freely; every method is safe to call concurrently.
    pub fn serve_handle(self: &Arc<Self>) -> ServeHandle {
        ServeHandle { inner: self.clone() }
    }
}

/// Serving facade over a shared [`Sentinel`]: the slice of the API a
/// network server needs, in server-shaped signatures (detection counts
/// instead of `()`, JSON snapshots instead of structs, remote trace-id
/// adoption). Obtained from [`Sentinel::serve_handle`]; `Clone` is one
/// `Arc` bump.
#[derive(Clone)]
pub struct ServeHandle {
    inner: Arc<Sentinel>,
}

impl ServeHandle {
    /// The wrapped system, for definition-time calls (classes, events,
    /// rules) that have no server-specific shape.
    pub fn sentinel(&self) -> &Arc<Sentinel> {
        &self.inner
    }

    /// Raises the explicit event `name` and runs immediate rules before
    /// returning (like [`Sentinel::raise`]), reporting how many event
    /// detections the signal produced — the number a client needs to
    /// account for fired rules.
    pub fn signal(&self, name: &str, params: Vec<(Arc<str>, Value)>, txn: Option<u64>) -> usize {
        let dets = self.inner.detector.signal_explicit(name, params, txn);
        let n = dets.len();
        self.inner.scheduler.dispatch(dets);
        n
    }

    /// Like [`ServeHandle::signal`], but stitches server-side spans into a
    /// trace the *client* initiated: with `remote_trace` set and tracing
    /// enabled, the raw id is adopted via
    /// [`TraceStore::adopt_remote`] and a `net_signal` span under it is
    /// installed as the thread's ambient span, so the detector's signal
    /// span (and everything below it) joins the client's trace.
    pub fn signal_traced(
        &self,
        name: &str,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        remote_trace: Option<u64>,
    ) -> usize {
        let spans = &self.inner.spans;
        let Some(raw) = remote_trace.filter(|_| spans.is_enabled()) else {
            return self.signal(name, params, txn);
        };
        let trace = spans.adopt_remote(raw);
        let handle = spans.start(trace, None, "net_signal", Arc::from(name));
        let n = {
            let _guard = span::push_current(handle.ctx);
            self.signal(name, params, txn)
        };
        let mut fields = vec![("remote_trace", Field::U64(raw))];
        if let Some(t) = txn {
            fields.push(("txn", Field::U64(t)));
        }
        spans.finish(handle, 0, fields);
        n
    }

    /// Dispatches externally produced detections (e.g. drained from a
    /// [`sentinel_detector::DetectorService`]) to the rule scheduler.
    pub fn dispatch(&self, detections: Vec<Detection>) {
        self.inner.scheduler.dispatch(detections);
    }

    /// [`Sentinel::stats`] rendered as JSON, ready to frame.
    pub fn stats_json(&self) -> json::Value {
        self.inner.stats().to_json()
    }

    /// The `MetricsScrape` payload: the Prometheus exposition text plus
    /// the time-series ring snapshot (`Null` when telemetry is off).
    pub fn metrics_json(&self) -> json::Value {
        json::Value::obj([
            ("prom", json::Value::str(self.inner.prom_text())),
            ("telemetry", self.inner.telemetry_json()),
        ])
    }

    /// The Prometheus exposition text alone (the HTTP `/metrics` body).
    pub fn prom_text(&self) -> String {
        self.inner.prom_text()
    }

    /// Per-trace roll-ups ([`TraceStore::trace_summaries`]) as a JSON
    /// array of `{trace, spans, root, wall_ns}` objects.
    pub fn trace_summaries_json(&self) -> json::Value {
        json::Value::Arr(
            self.inner
                .spans
                .trace_summaries()
                .into_iter()
                .map(|s| {
                    json::Value::obj([
                        ("trace", json::Value::UInt(s.trace.0)),
                        ("spans", json::Value::UInt(s.spans as u64)),
                        ("root", json::Value::str(s.root.as_ref())),
                        ("wall_ns", json::Value::UInt(s.wall_ns)),
                    ])
                })
                .collect(),
        )
    }

    /// Chrome trace-event JSON of every recorded span
    /// ([`Sentinel::export_chrome_trace`]).
    pub fn export_chrome_trace(&self) -> String {
        self.inner.export_chrome_trace()
    }
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        // The detached thread exits when the scheduler's sender drops; we
        // cannot join here (it holds a Weak to us), just detach.
        let _ = self.detached_thread.lock().take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_oodb::schema::{AttrType, ClassDef};
    use sentinel_snoop::CouplingMode;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const SET_PRICE: &str = "void set_price(float price)";
    const SELL: &str = "int sell_stock(int qty)";

    /// Builds the paper's STOCK class with real method bodies.
    fn stock_sentinel() -> Arc<Sentinel> {
        let s = Sentinel::in_memory();
        s.db()
            .register_class(
                ClassDef::new("STOCK")
                    .extends("REACTIVE")
                    .attr("symbol", AttrType::Str)
                    .attr("price", AttrType::Float)
                    .attr("holdings", AttrType::Int)
                    .method(SET_PRICE)
                    .method(SELL),
            )
            .unwrap();
        s.db().register_method(
            "STOCK",
            SET_PRICE,
            Arc::new(|ctx| {
                let p = ctx.arg("price").and_then(AttrValue::as_float).unwrap_or(0.0);
                ctx.set_attr("price", p)?;
                Ok(AttrValue::Null)
            }),
        );
        s.db().register_method(
            "STOCK",
            SELL,
            Arc::new(|ctx| {
                let qty = ctx.arg("qty").and_then(|v| v.as_int()).unwrap_or(0);
                let held = ctx.get_attr("holdings")?.as_int().unwrap_or(0);
                ctx.set_attr("holdings", held - qty)?;
                Ok(AttrValue::Int(held - qty))
            }),
        );
        // Event interface: end(e1) sell_stock, begin(e2) && end(e3) set_price.
        s.declare_event("e1", "STOCK", EventModifier::End, SELL, PrimTarget::AnyInstance).unwrap();
        s.declare_event("e2", "STOCK", EventModifier::Begin, SET_PRICE, PrimTarget::AnyInstance)
            .unwrap();
        s.declare_event("e3", "STOCK", EventModifier::End, SET_PRICE, PrimTarget::AnyInstance)
            .unwrap();
        s.define_event("e4", "e1 ^ e2").unwrap();
        s
    }

    fn ibm(s: &Sentinel, txn: TxnId) -> Oid {
        s.create_object(
            txn,
            &ObjectState::new("STOCK")
                .with("symbol", "IBM")
                .with("price", 100.0)
                .with("holdings", 1000),
        )
        .unwrap()
    }

    #[test]
    fn immediate_rule_runs_during_invoke() {
        let s = stock_sentinel();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        s.define_rule(
            "R_e3",
            "e3",
            Arc::new(|_| true),
            Arc::new(move |_| {
                f.fetch_add(1, Ordering::SeqCst);
            }),
            RuleOptions::default(),
        )
        .unwrap();
        let t = s.begin().unwrap();
        let oid = ibm(&s, t);
        s.invoke(t, oid, SET_PRICE, vec![("price".into(), 120.0.into())]).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1, "rule ran before invoke returned");
        s.commit(t).unwrap();
    }

    #[test]
    fn rule_action_can_write_the_database() {
        let s = stock_sentinel();
        let s2 = s.clone();
        // When any stock price is set, stamp holdings to 7 via the DB.
        s.define_rule(
            "writer",
            "e3",
            Arc::new(|_| true),
            Arc::new(move |inv| {
                let txn = TxnId(inv.txn.expect("in txn"));
                let oid = Oid(inv.occurrence.param_list()[0].source.expect("source"));
                let mut state = s2.get_object(txn, oid).unwrap();
                state.set("holdings", 7);
                s2.db().store().update(txn, oid, &state).unwrap();
            }),
            RuleOptions::default(),
        )
        .unwrap();
        let t = s.begin().unwrap();
        let oid = ibm(&s, t);
        s.invoke(t, oid, SET_PRICE, vec![("price".into(), 1.0.into())]).unwrap();
        assert_eq!(s.get_object(t, oid).unwrap().get("holdings").unwrap().as_int(), Some(7));
        s.commit(t).unwrap();
    }

    #[test]
    fn paper_e4_and_rule_fires_with_cumulative_params() {
        let s = stock_sentinel();
        let seen = Arc::new(AtomicUsize::new(0));
        let c = seen.clone();
        s.define_rule(
            "R1",
            "e4",
            Arc::new(|_| true),
            Arc::new(move |inv| {
                c.store(inv.occurrence.param_list().len(), Ordering::SeqCst);
            }),
            RuleOptions::default().context(sentinel_snoop::ParamContext::Cumulative),
        )
        .unwrap();
        let t = s.begin().unwrap();
        let oid = ibm(&s, t);
        s.invoke(t, oid, SELL, vec![("qty".into(), 5.into())]).unwrap(); // e1
        s.invoke(t, oid, SET_PRICE, vec![("price".into(), 9.0.into())]).unwrap(); // e2 -> e4
        assert_eq!(seen.load(Ordering::SeqCst), 2);
        s.commit(t).unwrap();
    }

    #[test]
    fn deferred_rule_runs_once_at_pre_commit_inside_txn() {
        let s = stock_sentinel();
        let runs = Arc::new(AtomicUsize::new(0));
        let prices_seen = Arc::new(AtomicUsize::new(0));
        let (r, p) = (runs.clone(), prices_seen.clone());
        s.define_rule(
            "RD",
            "e3",
            Arc::new(|_| true),
            Arc::new(move |inv| {
                r.fetch_add(1, Ordering::SeqCst);
                let n =
                    inv.occurrence.param_list().iter().filter(|o| &*o.event_name == "e3").count();
                p.store(n, Ordering::SeqCst);
            }),
            RuleOptions::default().coupling(CouplingMode::Deferred),
        )
        .unwrap();
        let t = s.begin().unwrap();
        let oid = ibm(&s, t);
        for i in 0..3 {
            s.invoke(t, oid, SET_PRICE, vec![("price".into(), f64::from(i).into())]).unwrap();
        }
        assert_eq!(runs.load(Ordering::SeqCst), 0, "not yet: deferred");
        s.commit(t).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly once at pre-commit");
        assert_eq!(prices_seen.load(Ordering::SeqCst), 3, "net effect of all triggerings");
        // A transaction without set_price does not fire it.
        let t2 = s.begin().unwrap();
        s.commit(t2).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn events_do_not_cross_transactions_by_default_but_do_when_flush_disabled() {
        let s = stock_sentinel();
        s.define_event("seq13", "(e1 ; e3)").unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        s.define_rule(
            "RS",
            "seq13",
            Arc::new(|_| true),
            Arc::new(move |_| {
                f.fetch_add(1, Ordering::SeqCst);
            }),
            RuleOptions::default().context(sentinel_snoop::ParamContext::Chronicle),
        )
        .unwrap();

        // Initiator in T1, terminator in T2: flushed at commit, no firing.
        let t1 = s.begin().unwrap();
        let oid = ibm(&s, t1);
        s.invoke(t1, oid, SELL, vec![("qty".into(), 1.into())]).unwrap();
        s.commit(t1).unwrap();
        let t2 = s.begin().unwrap();
        s.invoke(t2, oid, SET_PRICE, vec![("price".into(), 1.0.into())]).unwrap();
        s.commit(t2).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 0, "flush prevented cross-txn pairing");

        // Deactivate the flush rule (the paper's escape hatch) and repeat.
        s.disable_rule(FLUSH_ON_COMMIT_RULE).unwrap();
        let t3 = s.begin().unwrap();
        s.invoke(t3, oid, SELL, vec![("qty".into(), 1.into())]).unwrap();
        s.commit(t3).unwrap();
        let t4 = s.begin().unwrap();
        s.invoke(t4, oid, SET_PRICE, vec![("price".into(), 2.0.into())]).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1, "events crossed txn boundary");
        s.commit(t4).unwrap();
    }

    #[test]
    fn abort_flushes_partial_composites() {
        let s = stock_sentinel();
        s.define_event("seq13b", "(e1 ; e3)").unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        s.define_rule(
            "RA",
            "seq13b",
            Arc::new(|_| true),
            Arc::new(move |_| {
                f.fetch_add(1, Ordering::SeqCst);
            }),
            RuleOptions::default(),
        )
        .unwrap();
        let t0 = s.begin().unwrap();
        let oid = ibm(&s, t0);
        s.commit(t0).unwrap();
        let t1 = s.begin().unwrap();
        s.invoke(t1, oid, SELL, vec![("qty".into(), 1.into())]).unwrap();
        s.abort(t1).unwrap();
        let t2 = s.begin().unwrap();
        s.invoke(t2, oid, SET_PRICE, vec![("price".into(), 1.0.into())]).unwrap();
        s.commit(t2).unwrap();
        assert_eq!(
            fired.load(Ordering::SeqCst),
            0,
            "aborted transaction's initiator must not participate"
        );
    }

    #[test]
    fn detached_rule_runs_in_its_own_transaction() {
        let s = stock_sentinel();
        let (tx, rx) = crossbeam::channel::bounded(1);
        let s2 = s.clone();
        s.define_rule(
            "R_detached",
            "e3",
            Arc::new(|_| true),
            Arc::new(move |inv| {
                // Runs on the detached executor in a fresh transaction.
                let txn = TxnId(inv.txn.expect("detached txn"));
                let log = s2.create_object(txn, &ObjectState::new("REACTIVE")).unwrap();
                let _ = tx.send((inv.txn, log));
            }),
            RuleOptions::default().coupling(CouplingMode::Detached),
        )
        .unwrap();
        let t = s.begin().unwrap();
        let oid = ibm(&s, t);
        s.invoke(t, oid, SET_PRICE, vec![("price".into(), 3.0.into())]).unwrap();
        s.commit(t).unwrap();
        let (det_txn, logged) = rx.recv_timeout(std::time::Duration::from_secs(3)).unwrap();
        assert_ne!(det_txn, Some(t.0), "detached rule uses a different transaction");
        // Its write committed independently.
        let t2 = s.begin().unwrap();
        assert!(s.get_object(t2, logged).is_ok());
        s.commit(t2).unwrap();
    }

    #[test]
    fn explicit_events_via_raise() {
        let s = stock_sentinel();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        s.detector().declare_explicit("alarm");
        s.define_rule(
            "R_alarm",
            "alarm",
            Arc::new(|inv| inv.occurrence.param("level").and_then(|v| v.as_i64()) > Some(2)),
            Arc::new(move |_| {
                f.fetch_add(1, Ordering::SeqCst);
            }),
            RuleOptions::default(),
        )
        .unwrap();
        let t = s.begin().unwrap();
        s.raise(Some(t), "alarm", vec![(Arc::from("level"), Value::Int(1))]).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 0, "condition false");
        s.raise(Some(t), "alarm", vec![(Arc::from("level"), Value::Int(5))]).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        s.commit(t).unwrap();
    }

    #[test]
    fn nested_rules_through_database_methods() {
        // R1 on e3 (set_price end) sells stock in its action; R2 on e1
        // (sell end) observes the nested depth.
        let s = stock_sentinel();
        let s2 = s.clone();
        let depth_seen = Arc::new(AtomicUsize::new(999));
        s.define_rule(
            "R1",
            "e3",
            Arc::new(|_| true),
            Arc::new(move |inv| {
                let txn = TxnId(inv.txn.unwrap());
                let oid = Oid(inv.occurrence.param_list()[0].source.unwrap());
                s2.invoke(txn, oid, SELL, vec![("qty".into(), 1.into())]).unwrap();
            }),
            RuleOptions::default(),
        )
        .unwrap();
        let d = depth_seen.clone();
        s.define_rule(
            "R2",
            "e1",
            Arc::new(|_| true),
            Arc::new(move |inv| {
                d.store(inv.depth as usize, Ordering::SeqCst);
            }),
            RuleOptions::default(),
        )
        .unwrap();
        let t = s.begin().unwrap();
        let oid = ibm(&s, t);
        s.invoke(t, oid, SET_PRICE, vec![("price".into(), 10.0.into())]).unwrap();
        s.commit(t).unwrap();
        assert_eq!(depth_seen.load(Ordering::SeqCst), 1, "nested rule at depth 1");
    }
}
