//! The global event detector (Figure 2).
//!
//! "In addition to rules based on events from within an application, it is
//! useful to allow composite events whose constituent events come from
//! different applications" (§2.1). The global detector runs on its own
//! thread; applications *forward* selected local events to it (step 5 of
//! Figure 2), it detects inter-application composite events over leaves
//! named `app<N>.<event>`, and executes global rules — each in a fresh
//! top-level transaction of a designated application, which is how the
//! paper's conclusion proposes realizing detached execution.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use sentinel_detector::{LocalEventDetector, Value};
use sentinel_rules::manager::RuleOptions;
use sentinel_rules::{ActionFn, CondFn, ExecutionMode, RuleId, RuleManager, RuleScheduler};
use sentinel_snoop::parse_event_expr;

use crate::sentinel::{Sentinel, SentinelError, SentinelResult};

/// An event forwarded from an application to the global detector.
#[derive(Debug)]
pub struct GlobalSignal {
    /// Originating application.
    pub app: u32,
    /// Global leaf name (`app1.price_drop`).
    pub name: String,
    /// Flattened parameters of the local occurrence.
    pub params: Vec<(Arc<str>, Value)>,
}

/// Cloneable handle applications use to forward events.
#[derive(Clone)]
pub struct GlobalHandle {
    tx: Sender<GlobalSignal>,
}

impl GlobalHandle {
    /// Sends one signal (ignored if the global detector is gone).
    pub fn send(&self, sig: GlobalSignal) {
        let _ = self.tx.send(sig);
    }
}

/// The global event detector + global rule executor.
pub struct GlobalEventDetector {
    detector: Arc<LocalEventDetector>,
    manager: Arc<RuleManager>,
    tx: Sender<GlobalSignal>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl GlobalEventDetector {
    /// Spawns the global detector thread.
    pub fn spawn() -> Arc<Self> {
        let detector = Arc::new(LocalEventDetector::new(u32::MAX));
        let manager = Arc::new(RuleManager::new(detector.clone()));
        // Global rules run inline on the detector thread, each already
        // decoupled from the triggering applications.
        let scheduler = RuleScheduler::new(manager.clone(), ExecutionMode::Inline);
        let (tx, rx): (Sender<GlobalSignal>, Receiver<GlobalSignal>) = unbounded();
        let g = Arc::new(GlobalEventDetector {
            detector: detector.clone(),
            manager,
            tx,
            thread: Mutex::new(None),
        });
        let det = detector;
        let sched = scheduler;
        let handle = std::thread::Builder::new()
            .name("sentinel-global-detector".into())
            .spawn(move || {
                while let Ok(sig) = rx.recv() {
                    // Global events are outside any transaction: they span
                    // transactions and applications by design.
                    let dets = det.signal_explicit(&sig.name, sig.params, None);
                    sched.dispatch(dets);
                }
            })
            .expect("spawn global detector");
        *g.thread.lock() = Some(handle);
        g
    }

    /// Handle for applications.
    pub fn handle(&self) -> GlobalHandle {
        GlobalHandle { tx: self.tx.clone() }
    }

    /// The global detector's event graph.
    pub fn detector(&self) -> &Arc<LocalEventDetector> {
        &self.detector
    }

    /// Defines a named global composite event over forwarded leaves
    /// (e.g. `"app1.deposit ^ app2.deposit"`).
    pub fn define_event(&self, name: &str, expr_src: &str) -> SentinelResult<()> {
        let expr = parse_event_expr(expr_src)?;
        // Forwarded leaves are explicit events: auto-declare them.
        let mut graph_names: Vec<String> = Vec::new();
        for r in expr.refs() {
            graph_names.push(r.to_string());
        }
        for n in graph_names {
            self.detector.declare_explicit(&n);
        }
        self.detector.define_named(name, &expr)?;
        Ok(())
    }

    /// Defines a global rule on a (global) named event. The condition and
    /// action run on the global detector thread; actions typically open
    /// their own transactions on some application (detached execution).
    pub fn define_rule(
        &self,
        name: &str,
        event: &str,
        condition: CondFn,
        action: ActionFn,
    ) -> SentinelResult<RuleId> {
        let ev =
            self.detector.lookup(event).ok_or_else(|| SentinelError::Unknown(event.to_string()))?;
        Ok(self.manager.define_rule(name, ev, condition, action, RuleOptions::default())?)
    }
}

/// The canonical global leaf name for a local event of an application.
pub fn global_leaf_name(app: u32, event: &str) -> String {
    format!("app{app}.{event}")
}

impl Sentinel {
    /// Forwards every occurrence of local event `event` to the global
    /// detector (Figure 2 step 5), under the leaf name
    /// [`global_leaf_name`]`(self.app_id(), event)`.
    ///
    /// Implemented, like everything active in Sentinel, as a rule: a system
    /// rule on the event whose action ships the occurrence's flattened
    /// parameters over the channel.
    pub fn forward_to_global(&self, event: &str, handle: &GlobalHandle) -> SentinelResult<()> {
        let ev = self.event(event)?;
        let app = self.app_id();
        let name = global_leaf_name(app, event);
        let h = handle.clone();
        self.rules().define_rule(
            &format!("__forward_{name}"),
            ev,
            Arc::new(|_| true),
            Arc::new(move |inv| {
                let mut params: Vec<(Arc<str>, Value)> = Vec::new();
                for prim in inv.occurrence.param_list() {
                    if let Some(oid) = prim.source {
                        params.push((Arc::from("oid"), Value::Oid(oid)));
                    }
                    params.extend(prim.params.iter().cloned());
                }
                h.send(GlobalSignal { app, name: name.clone(), params });
            }),
            RuleOptions::default().priority(1),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sentinel::SentinelConfig;
    use sentinel_detector::graph::PrimTarget;
    use sentinel_oodb::schema::{AttrType, ClassDef};
    use sentinel_oodb::{AttrValue, ObjectState};
    use sentinel_snoop::ast::EventModifier;
    use std::time::Duration;

    fn app(app_id: u32) -> Arc<Sentinel> {
        let s = Sentinel::in_memory_with(SentinelConfig { app_id, ..SentinelConfig::default() });
        s.db()
            .register_class(
                ClassDef::new("ACCT")
                    .extends("REACTIVE")
                    .attr("balance", AttrType::Float)
                    .method("void deposit(float amt)"),
            )
            .unwrap();
        s.db().register_method(
            "ACCT",
            "void deposit(float amt)",
            Arc::new(|ctx| {
                let amt = ctx.arg("amt").and_then(AttrValue::as_float).unwrap_or(0.0);
                let bal = ctx.get_attr("balance")?.as_float().unwrap_or(0.0);
                ctx.set_attr("balance", bal + amt)?;
                Ok(AttrValue::Null)
            }),
        );
        s.declare_event(
            "dep",
            "ACCT",
            EventModifier::End,
            "void deposit(float amt)",
            PrimTarget::AnyInstance,
        )
        .unwrap();
        s
    }

    #[test]
    fn leaf_names_are_stable() {
        assert_eq!(global_leaf_name(1, "dep"), "app1.dep");
        assert_eq!(global_leaf_name(42, "order_placed"), "app42.order_placed");
    }

    #[test]
    fn inter_application_composite_detected() {
        let global = GlobalEventDetector::spawn();
        let app1 = app(1);
        let app2 = app(2);
        app1.forward_to_global("dep", &global.handle()).unwrap();
        app2.forward_to_global("dep", &global.handle()).unwrap();
        global.define_event("both_deposit", "app1.dep ^ app2.dep").unwrap();

        let (tx, rx) = crossbeam::channel::bounded(1);
        global
            .define_rule(
                "G1",
                "both_deposit",
                Arc::new(|_| true),
                Arc::new(move |inv| {
                    let _ = tx.send(inv.occurrence.param_list().len());
                }),
            )
            .unwrap();

        // App 1 deposits.
        let t1 = app1.begin().unwrap();
        let a1 = app1.create_object(t1, &ObjectState::new("ACCT").with("balance", 0.0)).unwrap();
        app1.invoke(t1, a1, "void deposit(float amt)", vec![("amt".into(), 10.0.into())]).unwrap();
        app1.commit(t1).unwrap();
        assert!(
            rx.recv_timeout(Duration::from_millis(300)).is_err(),
            "only one constituent so far"
        );

        // App 2 deposits -> global AND completes.
        let t2 = app2.begin().unwrap();
        let a2 = app2.create_object(t2, &ObjectState::new("ACCT").with("balance", 0.0)).unwrap();
        app2.invoke(t2, a2, "void deposit(float amt)", vec![("amt".into(), 20.0.into())]).unwrap();
        app2.commit(t2).unwrap();
        let prims = rx.recv_timeout(Duration::from_secs(3)).expect("global detection");
        assert_eq!(prims, 2, "one leaf occurrence per application");
    }

    #[test]
    fn global_rule_can_run_detached_transaction_on_an_app() {
        let global = GlobalEventDetector::spawn();
        let app1 = app(1);
        app1.forward_to_global("dep", &global.handle()).unwrap();
        global.define_event("any_dep", "app1.dep").unwrap();

        let target = app1.clone();
        let (tx, rx) = crossbeam::channel::bounded(1);
        global
            .define_rule(
                "audit",
                "any_dep",
                Arc::new(|_| true),
                Arc::new(move |inv| {
                    // Detached execution: a fresh top-level transaction on app1.
                    let t = target.begin().unwrap();
                    let amt = inv.occurrence.param("amt").and_then(|v| v.as_f64()).unwrap_or(0.0);
                    let log = target
                        .create_object(t, &ObjectState::new("ACCT").with("balance", amt))
                        .unwrap();
                    target.commit(t).unwrap();
                    let _ = tx.send(log);
                }),
            )
            .unwrap();

        let t = app1.begin().unwrap();
        let acct = app1.create_object(t, &ObjectState::new("ACCT").with("balance", 0.0)).unwrap();
        app1.invoke(t, acct, "void deposit(float amt)", vec![("amt".into(), 42.0.into())]).unwrap();
        app1.commit(t).unwrap();

        let log = rx.recv_timeout(Duration::from_secs(3)).expect("detached audit ran");
        let t2 = app1.begin().unwrap();
        assert_eq!(
            app1.get_object(t2, log).unwrap().get("balance").unwrap().as_float(),
            Some(42.0)
        );
        app1.commit(t2).unwrap();
    }
}
