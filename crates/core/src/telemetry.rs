//! Live telemetry: wires every subsystem's counters into a
//! [`TimeSeriesRegistry`] and renders the combined state as a
//! Prometheus-style exposition document.
//!
//! [`Sentinel::start_telemetry`] registers one [`SampleSource`] closure
//! that snapshots [`Sentinel::stats`] once per tick and fans the reading
//! out into named series (see [`collect_samples`] for the schema). The
//! hot paths are untouched — signalling threads keep bumping their
//! relaxed atomics; the sampler thread pays for the stats pass once per
//! resolution interval, and a scrape pays for it once per request.
//!
//! Series naming (the scrape schema, also documented in DESIGN.md):
//!
//! | series                              | kind    | meaning |
//! |-------------------------------------|---------|---------|
//! | `detector.signals`                  | counter | primitive signals accepted |
//! | `detector.shard.<i>.signals`        | counter | signals processed by shard *i* |
//! | `detector.shard.<i>.contention`     | counter | order-lock contention on shard *i* |
//! | `detector.shard.<i>.queue_depth`    | gauge   | queued, undrained signals for shard *i* |
//! | `scheduler.fired`                   | counter | rules dispatched (all couplings) |
//! | `scheduler.condition_p99_ns`        | gauge   | condition wall-time p99 |
//! | `scheduler.action_p99_ns`           | gauge   | action wall-time p99 |
//! | `rule.<name>.hits`                  | counter | dispatches of one named rule |
//! | `durability.journal_appends`        | counter | journal records appended |
//! | `durability.fsyncs`                 | counter | journal fsyncs issued |
//! | `durability.group_commits`          | counter | group commits performed |
//! | `durability.checkpoints`            | counter | checkpoints written |
//! | `durability.fsync_p99_ns`           | gauge   | group-commit flush p99 |
//! | `repl.tip`                          | gauge   | replication log tip (entries) |
//! | `repl.lag_frames`                   | gauge   | furthest-behind follower lag / replica own lag |
//! | `repl.applied`                      | counter | entries applied by the local apply loop (rate = follower apply rate) |
//! | `repl.applied_seq`                  | gauge   | replica apply watermark |
//! | `repl.last_contact_ms`              | gauge   | ms since the replica heard from its primary |
//! | `repl.follower.<name>.lag`          | gauge   | per-follower lag in log entries |
//! | `repl.follower.<name>.ack_age_ms`   | gauge   | ms since that follower's last ack (lag in seconds) |

use std::sync::Arc;
use std::time::Duration;

use sentinel_obs::timeseries::{
    Sample, SampleSource, SamplerHandle, TimeSeriesRegistry, DEFAULT_CAPACITY, DEFAULT_RESOLUTION,
};
use sentinel_obs::{json, PromText};

use crate::sentinel::{Sentinel, SentinelStats};

/// Fans one [`SentinelStats`] snapshot out into the named series listed
/// in the module docs. Public so the load generator can drive a local
/// registry at its own (finer) resolution.
pub fn collect_samples(stats: &SentinelStats, out: &mut Vec<Sample>) {
    out.push(Sample::counter("detector.signals", stats.detector.signals));
    for s in &stats.detector.shards {
        let base = format!("detector.shard.{}", s.shard);
        out.push(Sample::counter(format!("{base}.signals"), s.signals));
        out.push(Sample::counter(format!("{base}.contention"), s.contention));
        out.push(Sample::gauge(format!("{base}.queue_depth"), s.queue_depth));
    }
    let fired = stats.scheduler.fired_immediate
        + stats.scheduler.fired_deferred
        + stats.scheduler.queued_detached;
    out.push(Sample::counter("scheduler.fired", fired));
    out.push(Sample::gauge("scheduler.condition_p99_ns", stats.scheduler.condition.p99_ns()));
    out.push(Sample::gauge("scheduler.action_p99_ns", stats.scheduler.action.p99_ns()));
    for (rule, hits) in &stats.scheduler.per_rule {
        out.push(Sample::counter(format!("rule.{rule}.hits"), *hits));
    }
    if let Some(d) = &stats.durability {
        out.push(Sample::counter("durability.journal_appends", d.journal_appends));
        out.push(Sample::counter("durability.fsyncs", d.journal_fsyncs));
        out.push(Sample::counter("durability.group_commits", d.group_commits));
        out.push(Sample::counter("durability.checkpoints", d.checkpoints));
        out.push(Sample::gauge("durability.fsync_p99_ns", d.group_commit_flush.p99_ns()));
    }
    if let Some(r) = &stats.replication {
        out.push(Sample::gauge("repl.tip", r.tip));
        out.push(Sample::gauge("repl.lag_frames", r.max_lag()));
        // Counter: the sampled delta is the follower apply rate.
        out.push(Sample::counter("repl.applied", r.applied_entries));
        out.push(Sample::gauge("repl.applied_seq", r.applied));
        if let Some(s) = r.last_contact_secs {
            out.push(Sample::gauge("repl.last_contact_ms", (s * 1000.0) as u64));
        }
        for f in &r.followers {
            out.push(Sample::gauge(format!("repl.follower.{}.lag", f.name), f.lag));
            out.push(Sample::gauge(
                format!("repl.follower.{}.ack_age_ms", f.name),
                (f.age_secs * 1000.0) as u64,
            ));
        }
    }
}

/// Renders one [`SentinelStats`] snapshot as a Prometheus exposition
/// document (text format 0.0.4, ns units).
pub fn render_prom(stats: &SentinelStats) -> String {
    let mut w = PromText::new();
    w.counter(
        "sentinel_signals_total",
        "Primitive event signals accepted",
        &[],
        stats.detector.signals,
    );
    for s in &stats.detector.shards {
        let shard = s.shard.to_string();
        let labels = [("shard", shard.as_str())];
        w.counter(
            "sentinel_detector_shard_signals_total",
            "Signals processed per detector shard",
            &labels,
            s.signals,
        );
        w.counter(
            "sentinel_detector_shard_contention_total",
            "Order-lock contention per detector shard",
            &labels,
            s.contention,
        );
        w.gauge(
            "sentinel_detector_shard_queue_depth",
            "Queued, undrained signals per detector shard",
            &labels,
            s.queue_depth,
        );
    }
    for (coupling, n) in [
        ("immediate", stats.scheduler.fired_immediate),
        ("deferred", stats.scheduler.fired_deferred),
        ("detached", stats.scheduler.queued_detached),
    ] {
        w.counter(
            "sentinel_rules_fired_total",
            "Rules dispatched by coupling mode",
            &[("coupling", coupling)],
            n,
        );
    }
    for (rule, hits) in &stats.scheduler.per_rule {
        w.counter(
            "sentinel_rule_fired_total",
            "Dispatches per rule",
            &[("rule", rule.as_ref())],
            *hits,
        );
    }
    w.histogram(
        "sentinel_rule_condition_ns",
        "Rule condition wall time",
        &[],
        &stats.scheduler.condition,
    );
    w.histogram("sentinel_rule_action_ns", "Rule action wall time", &[], &stats.scheduler.action);
    if let Some(d) = &stats.durability {
        w.counter(
            "sentinel_journal_appends_total",
            "Journal records appended",
            &[],
            d.journal_appends,
        );
        w.counter("sentinel_journal_fsyncs_total", "Journal fsyncs issued", &[], d.journal_fsyncs);
        w.counter("sentinel_group_commits_total", "Group commits performed", &[], d.group_commits);
        w.counter("sentinel_checkpoints_total", "Checkpoints written", &[], d.checkpoints);
        w.histogram(
            "sentinel_group_commit_flush_ns",
            "Group-commit flush wall time",
            &[],
            &d.group_commit_flush,
        );
        w.histogram(
            "sentinel_checkpoint_duration_ns",
            "Checkpoint write wall time",
            &[],
            &d.checkpoint_duration,
        );
    }
    if let Some(r) = &stats.replication {
        w.gauge("sentinel_repl_tip", "Replication log tip (entries)", &[], r.tip);
        w.counter(
            "sentinel_repl_applied_total",
            "Replication entries applied by the local apply loop",
            &[],
            r.applied_entries,
        );
        w.gauge("sentinel_repl_applied_seq", "Replica apply watermark", &[], r.applied);
        if let Some(s) = r.last_contact_secs {
            w.gauge(
                "sentinel_repl_last_contact_ms",
                "Milliseconds since this replica heard from its primary",
                &[],
                (s * 1000.0) as u64,
            );
        }
        for f in &r.followers {
            let labels = [("follower", f.name.as_str())];
            w.gauge(
                "sentinel_repl_lag_frames",
                "Per-follower replication lag in log entries",
                &labels,
                f.lag,
            );
            w.gauge(
                "sentinel_repl_ack_age_ms",
                "Milliseconds since the follower's last ack",
                &labels,
                (f.age_secs * 1000.0) as u64,
            );
        }
    }
    w.finish()
}

impl Sentinel {
    /// Starts the telemetry sampler over this system: a
    /// [`TimeSeriesRegistry`] fed by a once-per-tick [`Sentinel::stats`]
    /// pass (see [`collect_samples`] for the series schema). Idempotent —
    /// a second call returns the existing registry. The sampler holds
    /// only a weak reference, so telemetry never keeps a dropped system
    /// alive.
    pub fn start_telemetry(
        self: &Arc<Self>,
        resolution: Duration,
        capacity: usize,
    ) -> Arc<TimeSeriesRegistry> {
        let mut slot = self.telemetry.lock();
        if let Some((registry, _)) = slot.as_ref() {
            return registry.clone();
        }
        let registry = TimeSeriesRegistry::new(resolution, capacity);
        let weak = Arc::downgrade(self);
        let source: Arc<dyn SampleSource> = Arc::new(move |out: &mut Vec<Sample>| {
            if let Some(s) = weak.upgrade() {
                collect_samples(&s.stats(), out);
            }
        });
        registry.register(source);
        let sampler = registry.start_sampler();
        *slot = Some((registry.clone(), sampler));
        registry
    }

    /// [`Sentinel::start_telemetry`] with the default 1 s × 15 min
    /// retention.
    pub fn start_telemetry_default(self: &Arc<Self>) -> Arc<TimeSeriesRegistry> {
        self.start_telemetry(DEFAULT_RESOLUTION, DEFAULT_CAPACITY)
    }

    /// The telemetry registry, when the sampler is running.
    pub fn telemetry(&self) -> Option<Arc<TimeSeriesRegistry>> {
        self.telemetry.lock().as_ref().map(|(r, _)| r.clone())
    }

    /// Stops the sampler thread and drops the registry.
    pub fn stop_telemetry(&self) {
        *self.telemetry.lock() = None;
    }

    /// The registry's ring buffers in the scrape JSON schema (`Null`
    /// when telemetry is off).
    pub fn telemetry_json(&self) -> json::Value {
        self.telemetry().map_or(json::Value::Null, |r| r.to_json())
    }

    /// The current stats snapshot as Prometheus exposition text.
    pub fn prom_text(&self) -> String {
        render_prom(&self.stats())
    }
}

/// Keeps `Sentinel`'s private field type out of the struct definition's
/// way: the registry plus its sampler handle (dropping the pair stops
/// the thread).
pub(crate) type TelemetrySlot = Option<(Arc<TimeSeriesRegistry>, SamplerHandle)>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_names(stats: &SentinelStats) -> Vec<String> {
        let mut out = Vec::new();
        collect_samples(stats, &mut out);
        out.into_iter().map(|s| s.series).collect()
    }

    #[test]
    fn samples_cover_detector_scheduler_and_rules() {
        let s = Sentinel::in_memory();
        s.declare_explicit("tick").unwrap();
        s.define_rule("r1", "tick", Arc::new(|_| true), Arc::new(|_| {}), Default::default())
            .unwrap();
        s.raise(None, "tick", vec![]).unwrap();
        let names = sample_names(&s.stats());
        assert!(names.iter().any(|n| n == "detector.signals"));
        assert!(names.iter().any(|n| n == "scheduler.fired"));
        assert!(names.iter().any(|n| n == "rule.r1.hits"));
        assert!(names.iter().any(|n| n.starts_with("detector.shard.")));
    }

    #[test]
    fn start_telemetry_is_idempotent_and_samples_series() {
        let s = Sentinel::in_memory();
        let reg = s.start_telemetry(Duration::from_secs(3600), 16);
        let again = s.start_telemetry(Duration::from_secs(1), 8);
        assert!(Arc::ptr_eq(&reg, &again), "second start returns the same registry");
        s.declare_explicit("tick").unwrap();
        s.raise(None, "tick", vec![]).unwrap();
        reg.sample_at(100);
        reg.sample_at(101);
        let points = reg.series_points("detector.signals");
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].1, 0, "no signals between ticks 100 and 101");
        s.stop_telemetry();
        assert!(s.telemetry().is_none());
    }

    #[test]
    fn prom_text_has_the_core_families() {
        let s = Sentinel::in_memory();
        s.declare_explicit("tick").unwrap();
        s.raise(None, "tick", vec![]).unwrap();
        let text = s.prom_text();
        assert!(text.contains("# TYPE sentinel_signals_total counter"));
        assert!(text.contains("sentinel_signals_total 1"));
        assert!(text.contains("# TYPE sentinel_rule_condition_ns histogram"));
        assert!(text.contains("sentinel_rules_fired_total{coupling=\"immediate\"}"));
    }
}
