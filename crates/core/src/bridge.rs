//! The event bridges: where the passive DBMS becomes active.
//!
//! [`EventBridge`] implements the OODB's invocation hooks — it is the
//! runtime equivalent of the code the Sentinel post-processor inserts into
//! wrapper methods: collect the parameter list, `Notify` the local
//! composite event detector (begin edge before the body, end edge after),
//! and hand the resulting detections to the rule scheduler, suspending the
//! caller until immediate rules finish (§3.2.1, Figure 2 steps 1–2, 6).
//!
//! [`TxnBridge`] observes the storage engine's transaction lifecycle and
//! signals the `begin-transaction` / `pre-commit-transaction` /
//! `commit-transaction` / `abort-transaction` system events (§3.2's
//! reactive system class), then finishes the rule-subtransaction tree.

use std::sync::Arc;

use sentinel_detector::{LocalEventDetector, Value};
use sentinel_oodb::invoke::{InvocationHooks, MethodCall};
use sentinel_oodb::AttrValue;
use sentinel_rules::RuleScheduler;
use sentinel_snoop::ast::EventModifier;
use sentinel_storage::txn::{TxnEvent, TxnObserver};
use sentinel_storage::TxnId;

/// Converts an OODB attribute value into a detector parameter value.
pub fn attr_to_value(v: &AttrValue) -> Value {
    match v {
        AttrValue::Int(i) => Value::Int(*i),
        AttrValue::Float(f) => Value::Float(*f),
        AttrValue::Bool(b) => Value::Bool(*b),
        AttrValue::Str(s) => Value::str(s),
        AttrValue::Ref(o) => Value::Oid(o.0),
        AttrValue::Null => Value::Null,
    }
}

/// Converts a detector parameter value back into an OODB attribute value.
pub fn value_to_attr(v: &Value) -> AttrValue {
    match v {
        Value::Int(i) => AttrValue::Int(*i),
        Value::Float(f) => AttrValue::Float(*f),
        Value::Bool(b) => AttrValue::Bool(*b),
        Value::Str(s) => AttrValue::Str(s.to_string()),
        Value::Oid(o) => AttrValue::Ref(sentinel_oodb::Oid(*o)),
        Value::Null => AttrValue::Null,
    }
}

/// Method-invocation → primitive-event bridge.
pub struct EventBridge {
    detector: Arc<LocalEventDetector>,
    scheduler: Arc<RuleScheduler>,
}

impl EventBridge {
    /// A bridge feeding `detector` and dispatching through `scheduler`.
    pub fn new(detector: Arc<LocalEventDetector>, scheduler: Arc<RuleScheduler>) -> Self {
        EventBridge { detector, scheduler }
    }

    fn notify(&self, call: &MethodCall, edge: EventModifier) {
        // Parameter collection (the wrapper's PARA_LIST): method arguments
        // plus the receiver's identity.
        let params: Vec<(Arc<str>, Value)> =
            call.args.iter().map(|(n, v)| (Arc::from(n.as_str()), attr_to_value(v))).collect();
        // Class-level events declared on an ancestor fire for descendants:
        // notify once per class in the inheritance chain. Each class's
        // primitive-event list filters by signature/edge/instance.
        let mut detections = Vec::new();
        for class in &call.chain {
            detections.extend(self.detector.notify_method(
                class,
                &call.sig,
                edge,
                call.oid.0,
                params.clone(),
                Some(call.txn.0),
            ));
        }
        // Immediate rules execute now; the invoking application waits.
        self.scheduler.dispatch(detections);
    }
}

impl InvocationHooks for EventBridge {
    fn before(&self, call: &MethodCall) {
        self.notify(call, EventModifier::Begin);
    }

    fn after(&self, call: &MethodCall) {
        self.notify(call, EventModifier::End);
    }
}

/// Transaction-event bridge.
pub struct TxnBridge {
    detector: Arc<LocalEventDetector>,
    scheduler: Arc<RuleScheduler>,
}

impl TxnBridge {
    /// A bridge feeding `detector` and dispatching through `scheduler`.
    pub fn new(detector: Arc<LocalEventDetector>, scheduler: Arc<RuleScheduler>) -> Self {
        TxnBridge { detector, scheduler }
    }
}

impl TxnObserver for TxnBridge {
    fn on_txn_event(&self, txn: TxnId, event: TxnEvent) {
        let detections = self.detector.signal_explicit(event.event_name(), Vec::new(), Some(txn.0));
        self.scheduler.dispatch(detections);
        match event {
            TxnEvent::Commit => self.scheduler.on_txn_end(txn.0, true),
            TxnEvent::Abort => self.scheduler.on_txn_end(txn.0, false),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversion_roundtrip() {
        let values = [
            AttrValue::Int(3),
            AttrValue::Float(1.5),
            AttrValue::Bool(true),
            AttrValue::Str("x".into()),
            AttrValue::Ref(sentinel_oodb::Oid(9)),
            AttrValue::Null,
        ];
        for v in values {
            assert_eq!(value_to_attr(&attr_to_value(&v)), v);
        }
    }
}
