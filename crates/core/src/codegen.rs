//! Generated-code rendering: the §3.2 listings.
//!
//! The paper shows two artifacts of the pre-/post-processor pair: the
//! rewritten *wrapper method* (parameter collection + `Notify` calls around
//! the renamed `user_` method) and the *main-program* code that builds the
//! event graph and rule objects at run time. This module renders both from
//! a parsed specification so the reproduction can show exactly what the
//! C++ pre-processor would have emitted — and so tests can compare the
//! output against the paper's own listing.

use std::fmt::Write as _;

use sentinel_snoop::ast::{EventExpr, EventModifier, MethodSig};
use sentinel_snoop::spec::{RuleSpec, SpecItem};
use sentinel_snoop::{parse_spec, ParseError};

/// Renders all generated code for a specification: wrapper methods first,
/// then the main-program event-graph/rule construction.
pub fn generate(src: &str) -> Result<String, ParseError> {
    let items = parse_spec(src)?;
    let mut out = String::new();
    for item in &items {
        if let SpecItem::Class(c) = item {
            for me in &c.method_events {
                let begin = me.bindings.iter().any(|(m, _)| m.matches(EventModifier::Begin));
                let end = me.bindings.iter().any(|(m, _)| m.matches(EventModifier::End));
                out.push_str(&wrapper_method(&c.name, &me.sig, begin, end));
                out.push('\n');
            }
        }
    }
    out.push_str(&main_program(&items));
    Ok(out)
}

/// Renders one wrapper method after Sentinel post-processing — the §3.2.1
/// listing (`void STOCK::set_price(float price) { … }`).
pub fn wrapper_method(class: &str, sig: &MethodSig, begin: bool, end: bool) -> String {
    let mut out = String::new();
    let params: Vec<String> = sig.params.iter().map(|(t, n)| format!("{t} {n}")).collect();
    let _ = writeln!(out, "{} {}::{}({}) {{", sig.ret, class, sig.name, params.join(", "));
    let list = format!("{}_list", sig.name);
    let _ = writeln!(out, "    /* Parameters are collected in a linked list */");
    let _ = writeln!(out, "    PARA_LIST *{list} = new PARA_LIST();");
    for (ty, name) in &sig.params {
        let tag = match ty.as_str() {
            "int" | "long" | "short" => "INT",
            "float" | "double" => "FLOAT",
            "bool" => "BOOL",
            _ => "OID",
        };
        let _ = writeln!(out, "    {list}->insert(\"{name}\", {tag}, {name});");
    }
    if begin {
        let _ = writeln!(
            out,
            "    Notify(this, \"{class}\", \"{}\", \"begin\", {list});",
            sig.canonical()
        );
    }
    let _ = writeln!(out, "    /* The original {} method is invoked */", sig.name);
    let call_args: Vec<&str> = sig.params.iter().map(|(_, n)| n.as_str()).collect();
    if sig.ret == "void" {
        let _ = writeln!(out, "    user_{}({});", sig.name, call_args.join(", "));
    } else {
        let _ =
            writeln!(out, "    {} result = user_{}({});", sig.ret, sig.name, call_args.join(", "));
    }
    if end {
        let _ = writeln!(
            out,
            "    Notify(this, \"{class}\", \"{}\", \"end\", {list});",
            sig.canonical()
        );
    }
    if sig.ret != "void" {
        let _ = writeln!(out, "    return result;");
    }
    out.push_str("}\n");
    out
}

/// Renders the main-program construction code — the §3.2 listing
/// (`Event_detector = new LOCAL_EVENT_DETECTOR(); …`).
pub fn main_program(items: &[SpecItem]) -> String {
    let mut out = String::new();
    out.push_str("/* Main program (generated) */\n");
    out.push_str("LOCAL_EVENT_DETECTOR *Event_detector;\n\nmain() {\n");
    out.push_str("    /* Creating the local event detector */\n");
    out.push_str("    Event_detector = new LOCAL_EVENT_DETECTOR();\n\n");
    for item in items {
        match item {
            SpecItem::Class(c) => {
                out.push_str("    /* Creating primitive events */\n");
                for me in &c.method_events {
                    for (modifier, ev) in &me.bindings {
                        let var = format!("{}_{}", c.name, ev);
                        let _ = writeln!(
                            out,
                            "    EVENT *{var} = new PRIMITIVE(\"{var}\", \"{}\", \"{modifier}\", \"{}\");",
                            c.name,
                            me.sig.canonical()
                        );
                    }
                }
                for (name, expr) in &c.named_events {
                    let var = format!("{}_{}", c.name, name);
                    let _ = writeln!(
                        out,
                        "    /* Composite event {} */\n    EVENT *{var} = {};",
                        operator_name(expr),
                        event_ctor(expr, &c.name)
                    );
                }
                for rule in &c.rules {
                    out.push_str(&rule_ctor(rule, Some(&c.name)));
                }
            }
            SpecItem::AppEvent(decl) => {
                let target = match &decl.target {
                    sentinel_snoop::spec::EventTarget::Class(cl) => format!("\"{cl}\""),
                    sentinel_snoop::spec::EventTarget::Instance(i) => i.clone(),
                };
                let _ = writeln!(
                    out,
                    "    EVENT *{} = new PRIMITIVE(\"{}\", {target}, \"{}\", \"{}\");",
                    decl.name,
                    decl.event_name,
                    decl.modifier,
                    decl.sig.canonical()
                );
            }
            SpecItem::NamedEvent { name, expr } => {
                let _ = writeln!(out, "    EVENT *{name} = {};", event_ctor(expr, ""));
            }
            SpecItem::Rule(rule) => out.push_str(&rule_ctor(rule, None)),
            SpecItem::ReactiveDecl(name) => {
                let _ = writeln!(out, "    REACTIVE {name};");
            }
            SpecItem::InstanceDecl { class, name } => {
                let _ = writeln!(out, "    {class} {name};");
            }
        }
    }
    out.push_str("    ...\n}\n");
    out
}

fn operator_name(expr: &EventExpr) -> &'static str {
    match expr {
        EventExpr::Ref(_) => "REF",
        EventExpr::And(..) => "AND",
        EventExpr::Or(..) => "OR",
        EventExpr::Seq(..) => "SEQ",
        EventExpr::Any { .. } => "ANY",
        EventExpr::Not { .. } => "NOT",
        EventExpr::Aperiodic { .. } => "A",
        EventExpr::AperiodicStar { .. } => "A_STAR",
        EventExpr::Periodic { .. } => "P",
        EventExpr::PeriodicStar { .. } => "P_STAR",
        EventExpr::Plus { .. } => "PLUS",
    }
}

/// `new AND(STOCK_e1, STOCK_e2)`-style constructor text.
fn event_ctor(expr: &EventExpr, class: &str) -> String {
    let var = |e: &EventExpr| -> String {
        match e {
            EventExpr::Ref(n) if !class.is_empty() && !n.contains('.') => {
                format!("{class}_{n}")
            }
            EventExpr::Ref(n) => n.replace('.', "_"),
            nested => format!("({})", event_ctor(nested, class)),
        }
    };
    match expr {
        EventExpr::Ref(n) => var(&EventExpr::Ref(n.clone())),
        EventExpr::And(a, b) => format!("new AND({}, {})", var(a), var(b)),
        EventExpr::Or(a, b) => format!("new OR({}, {})", var(a), var(b)),
        EventExpr::Seq(a, b) => format!("new SEQ({}, {})", var(a), var(b)),
        EventExpr::Any { m, events } => {
            let list: Vec<String> = events.iter().map(var).collect();
            format!("new ANY({m}, {})", list.join(", "))
        }
        EventExpr::Not { inner, start, end } => {
            format!("new NOT({}, {}, {})", var(inner), var(start), var(end))
        }
        EventExpr::Aperiodic { start, inner, end } => {
            format!("new A({}, {}, {})", var(start), var(inner), var(end))
        }
        EventExpr::AperiodicStar { start, inner, end } => {
            format!("new A_STAR({}, {}, {})", var(start), var(inner), var(end))
        }
        EventExpr::Periodic { start, period, end } => {
            format!("new P({}, {period}, {})", var(start), var(end))
        }
        EventExpr::PeriodicStar { start, period, end } => {
            format!("new P_STAR({}, {period}, {})", var(start), var(end))
        }
        EventExpr::Plus { inner, delta } => format!("new PLUS({}, {delta})", var(inner)),
    }
}

/// `RULE *R1 = new RULE("R1", STOCK_e4, cond1, action1, CUMULATIVE);` plus
/// the setter calls of the §3.2 listing.
fn rule_ctor(rule: &RuleSpec, class: Option<&str>) -> String {
    let mut out = String::new();
    let event_var = match class {
        Some(c) => format!("{c}_{}", rule.event),
        None => rule.event.clone(),
    };
    let _ = writeln!(
        out,
        "    /* Creating Rule {} */\n    RULE *{} = new RULE(\"{}\", {event_var}, {}, {}, {});",
        rule.name,
        rule.name,
        rule.name,
        rule.condition,
        rule.action,
        rule.context.unwrap_or_default()
    );
    if let Some(cm) = rule.coupling {
        let _ = writeln!(out, "    {}->set_coupling_mode({cm});", rule.name);
    }
    if let Some(p) = rule.priority {
        let _ = writeln!(out, "    {}->set_priority({p});", rule.name);
    }
    if let Some(tm) = rule.trigger {
        let _ = writeln!(out, "    {}->set_trigger_mode({tm});", rule.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const STOCK: &str = r#"
        class STOCK : public REACTIVE {
        public:
            event end(e1) int sell_stock(int qty);
            event begin(e2) && end(e3) void set_price(float price);
            event e4 = e1 ^ e2;
            rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW);
        };
    "#;

    #[test]
    fn wrapper_matches_paper_listing_shape() {
        let gen = generate(STOCK).unwrap();
        // Key lines of the §3.2.1 wrapper listing.
        assert!(gen.contains("void STOCK::set_price(float price) {"));
        assert!(gen.contains("PARA_LIST *set_price_list = new PARA_LIST();"));
        assert!(gen.contains("set_price_list->insert(\"price\", FLOAT, price);"));
        assert!(gen.contains(
            "Notify(this, \"STOCK\", \"void set_price(float price)\", \"begin\", set_price_list);"
        ));
        assert!(gen.contains("user_set_price(price);"));
        assert!(gen.contains(
            "Notify(this, \"STOCK\", \"void set_price(float price)\", \"end\", set_price_list);"
        ));
        // sell_stock only notifies at end.
        assert!(gen.contains(
            "Notify(this, \"STOCK\", \"int sell_stock(int qty)\", \"end\", sell_stock_list);"
        ));
        assert!(!gen.contains("Notify(this, \"STOCK\", \"int sell_stock(int qty)\", \"begin\""));
    }

    #[test]
    fn main_program_matches_paper_listing_shape() {
        let gen = generate(STOCK).unwrap();
        assert!(gen.contains("Event_detector = new LOCAL_EVENT_DETECTOR();"));
        assert!(gen.contains(
            "EVENT *STOCK_e1 = new PRIMITIVE(\"STOCK_e1\", \"STOCK\", \"end\", \"int sell_stock(int qty)\");"
        ));
        assert!(gen.contains(
            "EVENT *STOCK_e2 = new PRIMITIVE(\"STOCK_e2\", \"STOCK\", \"begin\", \"void set_price(float price)\");"
        ));
        assert!(gen.contains("EVENT *STOCK_e4 = new AND(STOCK_e1, STOCK_e2);"));
        assert!(gen.contains("RULE *R1 = new RULE(\"R1\", STOCK_e4, cond1, action1, CUMULATIVE);"));
        assert!(gen.contains("R1->set_coupling_mode(DEFERRED);"));
        assert!(gen.contains("R1->set_priority(10);"));
        assert!(gen.contains("R1->set_trigger_mode(NOW);"));
    }

    #[test]
    fn app_level_items_render() {
        let gen = generate(
            r#"
            REACTIVE Stock;
            Stock IBM;
            event set_IBM_price("set_IBM_price", IBM, "begin", "void set_price(float price)");
            rule R2(set_IBM_price, c, a);
            "#,
        )
        .unwrap();
        assert!(gen.contains(
            "EVENT *set_IBM_price = new PRIMITIVE(\"set_IBM_price\", IBM, \"begin\", \"void set_price(float price)\");"
        ));
        assert!(gen.contains("RULE *R2 = new RULE(\"R2\", set_IBM_price, c, a, RECENT);"));
    }

    #[test]
    fn deferred_rewrite_listing_renders_a_star() {
        let gen = generate(
            "event def_rule_event = A*(begin-transaction, any_stk_price, pre-commit-transaction);",
        )
        .unwrap();
        assert!(gen.contains(
            "EVENT *def_rule_event = new A_STAR(begin-transaction, any_stk_price, pre-commit-transaction);"
        ));
    }
}
