//! The Sentinel pre-processor.
//!
//! In the paper a C++ pre-processor/post-processor pair converts "the
//! high-level user specification of ECA rules into appropriate code for
//! event detection, parameter computation, and rule execution" before
//! compilation. In this reproduction the same surface syntax (§3.1) is
//! parsed by `sentinel-snoop` and *applied at run time*: classes are
//! registered in the schema, event interfaces become primitive-event
//! declarations, named events build the event graph, rules subscribe. The
//! observable outcome — which events exist, which wrappers notify, which
//! rules fire — is identical to the compile-time rewrite.
//!
//! Condition and action *functions* are C++ globals in the paper; here the
//! host registers closures in a [`FunctionTable`] under the names the
//! specification uses (`cond1`, `action1`, …).

use std::collections::HashMap;
use std::sync::Arc;

use sentinel_detector::graph::PrimTarget;
use sentinel_detector::EventId;
use sentinel_oodb::schema::{AttrType, ClassDef};
use sentinel_oodb::{ObjectState, Oid};
use sentinel_rules::manager::RuleOptions;
use sentinel_rules::{ActionFn, CondFn, RuleId};
use sentinel_snoop::ast::EventExpr;
use sentinel_snoop::parse_spec;
use sentinel_snoop::spec::{ClassSpec, EventTarget, RuleSpec, SpecItem};
use sentinel_storage::TxnId;

use crate::sentinel::{Sentinel, SentinelError, SentinelResult};

/// Host-registered condition/action functions, looked up by the names used
/// in rule specifications.
#[derive(Default)]
pub struct FunctionTable {
    conds: HashMap<String, CondFn>,
    actions: HashMap<String, ActionFn>,
}

impl FunctionTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a condition function.
    pub fn condition(
        mut self,
        name: &str,
        f: impl Fn(&sentinel_rules::RuleInvocation) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.conds.insert(name.to_string(), Arc::new(f));
        self
    }

    /// Registers an action function.
    pub fn action(
        mut self,
        name: &str,
        f: impl Fn(&sentinel_rules::RuleInvocation) + Send + Sync + 'static,
    ) -> Self {
        self.actions.insert(name.to_string(), Arc::new(f));
        self
    }

    fn cond(&self, name: &str) -> SentinelResult<CondFn> {
        self.conds
            .get(name)
            .cloned()
            .ok_or_else(|| SentinelError::Unknown(format!("condition function `{name}`")))
    }

    fn act(&self, name: &str) -> SentinelResult<ActionFn> {
        self.actions
            .get(name)
            .cloned()
            .ok_or_else(|| SentinelError::Unknown(format!("action function `{name}`")))
    }
}

/// What a specification registered (for tooling/tests).
#[derive(Debug, Default)]
pub struct AppliedSpec {
    /// Classes registered.
    pub classes: Vec<String>,
    /// Events declared or defined, `(name, id)`.
    pub events: Vec<(String, EventId)>,
    /// Rules defined.
    pub rules: Vec<RuleId>,
    /// Named instances created, `(name, oid)`.
    pub instances: Vec<(String, Oid)>,
}

/// The pre-processor.
pub struct Preprocessor<'s> {
    sentinel: &'s Sentinel,
}

impl<'s> Preprocessor<'s> {
    /// A pre-processor bound to a running system.
    pub fn new(sentinel: &'s Sentinel) -> Self {
        Preprocessor { sentinel }
    }

    /// Parses and applies a specification. `txn` is used for instance
    /// creation and name binding (`Stock IBM;`).
    pub fn apply(
        &self,
        txn: TxnId,
        src: &str,
        table: &FunctionTable,
    ) -> SentinelResult<AppliedSpec> {
        let items = parse_spec(src)?;
        let mut applied = AppliedSpec::default();
        for item in items {
            match item {
                SpecItem::Class(spec) => self.apply_class(&spec, table, &mut applied)?,
                SpecItem::ReactiveDecl(name) => {
                    // `REACTIVE Stock;` — ensure the class exists and is
                    // reactive; declare a bare reactive class if unknown.
                    let known = self.sentinel.db().registry().get(&name).is_some();
                    if !known {
                        self.sentinel
                            .db()
                            .register_class(ClassDef::new(&name).extends("REACTIVE"))?;
                        applied.classes.push(name);
                    }
                }
                SpecItem::InstanceDecl { class, name } => {
                    let oid = self.sentinel.create_object(txn, &ObjectState::new(&class))?;
                    self.sentinel.db().names().bind(txn, &name, oid)?;
                    applied.instances.push((name, oid));
                }
                SpecItem::AppEvent(decl) => {
                    let target = match &decl.target {
                        EventTarget::Class(_) => PrimTarget::AnyInstance,
                        EventTarget::Instance(inst) => {
                            let oid = self
                                .sentinel
                                .db()
                                .names()
                                .resolve(inst)
                                .ok_or_else(|| SentinelError::Unknown(inst.clone()))?;
                            PrimTarget::Instance(oid.0)
                        }
                    };
                    let class = match &decl.target {
                        EventTarget::Class(c) => c.clone(),
                        EventTarget::Instance(inst) => {
                            // The instance's class.
                            let oid = self.sentinel.db().names().resolve(inst).expect("resolved");
                            self.sentinel.get_object(txn, oid)?.class
                        }
                    };
                    let id = self.sentinel.declare_event(
                        &decl.event_name,
                        &class,
                        decl.modifier,
                        &decl.sig.canonical(),
                        target,
                    )?;
                    if decl.name != decl.event_name {
                        self.sentinel.detector().alias(&decl.name, id)?;
                    }
                    applied.events.push((decl.name, id));
                }
                SpecItem::NamedEvent { name, expr } => {
                    let id = self.sentinel.detector().define_named(&name, &expr)?;
                    applied.events.push((name, id));
                }
                SpecItem::Rule(rule) => {
                    let id = self.apply_rule(&rule, None, table)?;
                    applied.rules.push(id);
                }
            }
        }
        Ok(applied)
    }

    fn apply_class(
        &self,
        spec: &ClassSpec,
        table: &FunctionTable,
        applied: &mut AppliedSpec,
    ) -> SentinelResult<()> {
        // 1. Schema.
        let mut def = ClassDef::new(&spec.name);
        if let Some(p) = &spec.parent {
            def = def.extends(p);
        }
        for (ty, name) in &spec.attrs {
            def = def.attr(name, cxx_type_to_attr(ty));
        }
        for m in &spec.methods {
            def = def.method(&m.canonical());
        }
        for me in &spec.method_events {
            def = def.method(&me.sig.canonical());
        }
        self.sentinel.db().register_class(def)?;
        applied.classes.push(spec.name.clone());

        // 2. Event interface: one primitive event per (modifier, name)
        //    binding, registered as CLASS.name with a bare alias when free.
        for me in &spec.method_events {
            for (modifier, ev_name) in &me.bindings {
                let qualified = format!("{}.{}", spec.name, ev_name);
                let id = self.sentinel.declare_event(
                    &qualified,
                    &spec.name,
                    *modifier,
                    &me.sig.canonical(),
                    PrimTarget::AnyInstance,
                )?;
                let _ = self.sentinel.detector().alias(ev_name, id); // best effort
                applied.events.push((qualified, id));
            }
        }

        // 3. Named composite events, with class-scoped reference
        //    qualification (`e1` in STOCK resolves to `STOCK.e1`).
        for (name, expr) in &spec.named_events {
            let expr = qualify(expr, &spec.name, |n| self.sentinel.detector().lookup(n).is_some());
            let qualified = format!("{}.{}", spec.name, name);
            let id = self.sentinel.detector().define_named(&qualified, &expr)?;
            let _ = self.sentinel.detector().alias(name, id);
            applied.events.push((qualified, id));
        }

        // 4. Class-level rules.
        for rule in &spec.rules {
            let id = self.apply_rule(rule, Some(&spec.name), table)?;
            applied.rules.push(id);
        }
        Ok(())
    }

    fn apply_rule(
        &self,
        rule: &RuleSpec,
        class: Option<&str>,
        table: &FunctionTable,
    ) -> SentinelResult<RuleId> {
        // Event resolution: class-qualified first (inside a class), then bare.
        let event = class
            .map(|c| format!("{c}.{}", rule.event))
            .and_then(|q| self.sentinel.detector().lookup(&q))
            .or_else(|| self.sentinel.detector().lookup(&rule.event))
            .ok_or_else(|| SentinelError::Unknown(rule.event.clone()))?;
        let opts = RuleOptions {
            context: rule.context,
            coupling: rule.coupling,
            priority: rule.priority,
            priority_class: rule.priority_class.clone(),
            trigger: rule.trigger,
            defined_at: None,
        };
        Ok(self.sentinel.rules().define_rule(
            &rule.name,
            event,
            table.cond(&rule.condition)?,
            table.act(&rule.action)?,
            opts,
        )?)
    }
}

/// Maps a C++ attribute type to the schema type.
fn cxx_type_to_attr(ty: &str) -> AttrType {
    match ty {
        "int" | "long" | "short" | "unsigned" => AttrType::Int,
        "float" | "double" => AttrType::Float,
        "bool" => AttrType::Bool,
        "char*" | "string" | "String" => AttrType::Str,
        _ => AttrType::Ref,
    }
}

/// Rewrites unqualified refs `e` to `CLASS.e` when the qualified name
/// exists — class-scoped event resolution.
fn qualify(expr: &EventExpr, class: &str, exists: impl Fn(&str) -> bool + Copy) -> EventExpr {
    match expr {
        EventExpr::Ref(n) if !n.contains('.') => {
            let q = format!("{class}.{n}");
            if exists(&q) {
                EventExpr::Ref(q)
            } else {
                expr.clone()
            }
        }
        EventExpr::Ref(_) => expr.clone(),
        EventExpr::And(a, b) => {
            EventExpr::And(Box::new(qualify(a, class, exists)), Box::new(qualify(b, class, exists)))
        }
        EventExpr::Or(a, b) => {
            EventExpr::Or(Box::new(qualify(a, class, exists)), Box::new(qualify(b, class, exists)))
        }
        EventExpr::Seq(a, b) => {
            EventExpr::Seq(Box::new(qualify(a, class, exists)), Box::new(qualify(b, class, exists)))
        }
        EventExpr::Any { m, events } => EventExpr::Any {
            m: *m,
            events: events.iter().map(|e| qualify(e, class, exists)).collect(),
        },
        EventExpr::Not { inner, start, end } => EventExpr::Not {
            inner: Box::new(qualify(inner, class, exists)),
            start: Box::new(qualify(start, class, exists)),
            end: Box::new(qualify(end, class, exists)),
        },
        EventExpr::Aperiodic { start, inner, end } => EventExpr::Aperiodic {
            start: Box::new(qualify(start, class, exists)),
            inner: Box::new(qualify(inner, class, exists)),
            end: Box::new(qualify(end, class, exists)),
        },
        EventExpr::AperiodicStar { start, inner, end } => EventExpr::AperiodicStar {
            start: Box::new(qualify(start, class, exists)),
            inner: Box::new(qualify(inner, class, exists)),
            end: Box::new(qualify(end, class, exists)),
        },
        EventExpr::Periodic { start, period, end } => EventExpr::Periodic {
            start: Box::new(qualify(start, class, exists)),
            period: *period,
            end: Box::new(qualify(end, class, exists)),
        },
        EventExpr::PeriodicStar { start, period, end } => EventExpr::PeriodicStar {
            start: Box::new(qualify(start, class, exists)),
            period: *period,
            end: Box::new(qualify(end, class, exists)),
        },
        EventExpr::Plus { inner, delta } => {
            EventExpr::Plus { inner: Box::new(qualify(inner, class, exists)), delta: *delta }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_oodb::AttrValue;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// The paper's §3.1 STOCK class, verbatim modulo `;`.
    const STOCK_SPEC: &str = r#"
        class STOCK : public REACTIVE {
        public:
            float price;
            int holdings;
            event end(e1) int sell_stock(int qty);
            event begin(e2) && end(e3) void set_price(float price);
            int get_price();
            event e4 = e1 ^ e2; /* AND operator */
            rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW);
        };
    "#;

    fn register_bodies(s: &Sentinel) {
        s.db().register_method(
            "STOCK",
            "void set_price(float price)",
            Arc::new(|ctx| {
                let p = ctx.arg("price").and_then(AttrValue::as_float).unwrap_or(0.0);
                ctx.set_attr("price", p)?;
                Ok(AttrValue::Null)
            }),
        );
        s.db().register_method(
            "STOCK",
            "int sell_stock(int qty)",
            Arc::new(|ctx| {
                let q = ctx.arg("qty").and_then(|v| v.as_int()).unwrap_or(0);
                let h = ctx.get_attr("holdings")?.as_int().unwrap_or(0);
                ctx.set_attr("holdings", h - q)?;
                Ok(AttrValue::Int(h - q))
            }),
        );
        s.db().register_method(
            "STOCK",
            "int get_price()",
            Arc::new(|ctx| {
                ctx.get_attr("price").map(|v| AttrValue::Int(v.as_float().unwrap_or(0.0) as i64))
            }),
        );
    }

    #[test]
    fn stock_spec_end_to_end() {
        let s = Sentinel::in_memory();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        let table =
            FunctionTable::new().condition("cond1", |_| true).action("action1", move |_| {
                f.fetch_add(1, Ordering::SeqCst);
            });
        let t = s.begin().unwrap();
        let applied = Preprocessor::new(&s).apply(t, STOCK_SPEC, &table).unwrap();
        s.commit(t).unwrap();
        assert_eq!(applied.classes, vec!["STOCK".to_string()]);
        assert_eq!(applied.rules.len(), 1);
        assert!(s.detector().lookup("STOCK.e1").is_some());
        assert!(s.detector().lookup("e4").is_some());
        register_bodies(&s);

        // Exercise: e1 (sell) then e2 (begin set_price) completes e4; the
        // rule is DEFERRED so it fires at commit, once.
        let t = s.begin().unwrap();
        let oid = s
            .create_object(t, &ObjectState::new("STOCK").with("price", 10.0).with("holdings", 100))
            .unwrap();
        s.invoke(t, oid, "int sell_stock(int qty)", vec![("qty".into(), 5.into())]).unwrap();
        s.invoke(t, oid, "void set_price(float price)", vec![("price".into(), 20.0.into())])
            .unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 0, "deferred until commit");
        s.commit(t).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn application_level_items_from_the_paper() {
        let s = Sentinel::in_memory();
        // First the class, so Stock exists.
        let t = s.begin().unwrap();
        let table =
            FunctionTable::new().condition("checksalary", |_| true).action("resetsalary", |_| {});
        Preprocessor::new(&s)
            .apply(
                t,
                r#"
                class Stock : public REACTIVE {
                    float price;
                    event end(anyset) void set_price(float price);
                };
                Stock IBM;
                event any_stk_price("any_stk_price", "Stock", "begin", "void set_price(float price)");
                event set_IBM_price("set_IBM_price", IBM, "begin", "void set_price(float price)");
                rule R1(any_stk_price, checksalary, resetsalary, CHRONICLE, DEFERRED);
                "#,
                &table,
            )
            .unwrap();
        s.commit(t).unwrap();
        assert!(s.db().names().resolve("IBM").is_some());
        assert!(s.detector().lookup("any_stk_price").is_some());
        assert!(s.detector().lookup("set_IBM_price").is_some());
        assert!(s.rules().lookup("R1").is_some());
    }

    #[test]
    fn instance_level_event_fires_only_for_named_instance() {
        let s = Sentinel::in_memory();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        let table = FunctionTable::new().condition("always", |_| true).action("count", move |_| {
            f.fetch_add(1, Ordering::SeqCst);
        });
        let t = s.begin().unwrap();
        Preprocessor::new(&s)
            .apply(
                t,
                r#"
                class Stock : public REACTIVE {
                    float price;
                    event end(pset) void set_price(float price);
                };
                Stock IBM;
                Stock DEC;
                event ibm_only("ibm_only", IBM, "end", "void set_price(float price)");
                rule RI(ibm_only, always, count);
                "#,
                &table,
            )
            .unwrap();
        s.db().register_method(
            "Stock",
            "void set_price(float price)",
            Arc::new(|ctx| {
                let p = ctx.arg("price").and_then(AttrValue::as_float).unwrap_or(0.0);
                ctx.set_attr("price", p)?;
                Ok(AttrValue::Null)
            }),
        );
        let ibm = s.db().names().resolve("IBM").unwrap();
        let dec = s.db().names().resolve("DEC").unwrap();
        s.invoke(t, dec, "void set_price(float price)", vec![("price".into(), 1.0.into())])
            .unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 0, "DEC must not fire IBM's event");
        s.invoke(t, ibm, "void set_price(float price)", vec![("price".into(), 1.0.into())])
            .unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        s.commit(t).unwrap();
    }

    #[test]
    fn missing_function_is_reported() {
        let s = Sentinel::in_memory();
        let t = s.begin().unwrap();
        let err = Preprocessor::new(&s).apply(
            t,
            r#"
            class C : public REACTIVE { event end(e) void m(); };
            rule R(e, nope, nada);
            "#,
            &FunctionTable::new(),
        );
        assert!(matches!(err, Err(SentinelError::Unknown(_))));
        s.abort(t).unwrap();
    }

    #[test]
    fn cxx_types_map_sensibly() {
        assert_eq!(cxx_type_to_attr("int"), AttrType::Int);
        assert_eq!(cxx_type_to_attr("double"), AttrType::Float);
        assert_eq!(cxx_type_to_attr("char*"), AttrType::Str);
        assert_eq!(cxx_type_to_attr("Account*"), AttrType::Ref);
    }
}
