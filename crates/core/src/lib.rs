//! # sentinel-core
//!
//! **Sentinel**: the integrated active object-oriented DBMS of
//! *"ECA Rule Integration into an OODBMS: Architecture and Implementation"*
//! (Chakravarthy, Krishnaprasad, Tamizuddin, Badani — ICDE 1995).
//!
//! This crate wires every substrate into the architecture of Figure 1:
//!
//! * the passive OODB (`sentinel-oodb`, the Open OODB analogue) gains
//!   **primitive event detection** through invocation hooks ([`bridge`]) —
//!   the same seam the Sentinel post-processor uses to insert `Notify(...)`
//!   calls into wrapper methods;
//! * the storage engine's transaction events (`begin`, `pre-commit`,
//!   `commit`, `abort`) are turned into system events, driving **deferred
//!   rule execution** and the **event-graph flush** at transaction
//!   boundaries (as deactivatable system rules, exactly as §3.2.2
//!   describes);
//! * the **pre-processor** ([`preprocessor`]) accepts the paper's §3.1
//!   surface syntax (reactive class definitions with event interfaces,
//!   named events, rules) and registers everything against a running
//!   system; [`codegen`] renders the §3.2-style generated-code listing;
//! * the **local composite event detector** and **rule scheduler** are
//!   driven from the hooks, giving immediate / deferred / detached coupling,
//!   priority scheduling and nested rule execution;
//! * the **global event detector** ([`global`]) consumes events forwarded
//!   from multiple applications and detects inter-application composite
//!   events (Figure 2), executing detached rules in their own top-level
//!   transactions.
//!
//! The entry point is [`sentinel::Sentinel`]; see `examples/quickstart.rs`
//! for the paper's STOCK walk-through.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bridge;
pub mod codegen;
pub mod durable;
pub mod global;
pub mod preprocessor;
pub mod replica;
pub mod sentinel;
pub mod telemetry;

pub use durable::{params_from_json, params_to_json, value_from_json, value_to_json, JournalSink};
pub use preprocessor::{FunctionTable, Preprocessor};
pub use sentinel::{Sentinel, SentinelConfig, SentinelError, SentinelStats, ServeHandle};
pub use telemetry::{collect_samples, render_prom};

// Re-export the subsystem crates so applications depend on one crate.
pub use sentinel_detector as detector;
pub use sentinel_durable as durable_store;
pub use sentinel_obs as obs;
pub use sentinel_oodb as oodb;
pub use sentinel_rules as rules;
pub use sentinel_snoop as snoop;
pub use sentinel_storage as storage;
pub use sentinel_txn as txn;
