//! Durable Sentinel: crash-recoverable catalog, event journal, and
//! event-graph state, built on `sentinel-durable`.
//!
//! [`Sentinel::open_durable`] opens a data directory and replays what it
//! finds, in three layers:
//!
//! 1. **Catalog** — DDL operations (class registrations, event
//!    declarations/definitions, rule define/enable/disable/drop) are
//!    re-applied in their original order, *interleaved* with journal
//!    records by the journal position each op recorded at definition
//!    time, and with every rule's `defined_at` tick pinned — so the
//!    rebuilt schema, Snoop event graph, and rule set match the
//!    pre-crash system byte-for-byte.
//! 2. **Checkpoint** — the newest checkpoint that passes its checksum
//!    *and* validates against the rebuilt graph is restored (per-node,
//!    per-context operator state plus the logical clock). A rejected
//!    checkpoint falls back to the previous one — a longer replay, never
//!    a panic.
//! 3. **Journal suffix** — every event after the restored checkpoint is
//!    replayed through the detector, reproducing half-detected
//!    composites exactly; detections produced by replay are dropped
//!    (their rules already fired before the crash) and transaction
//!    flushes are re-applied for replayed commit/abort events.
//!
//! Only after replay does the system go live: an [`EventSink`] is
//! installed so every signalled primitive appends to its shard's journal
//! stream and every whole-graph ordering point (transaction flush, time
//! advance, DDL barrier, checkpoint pause) cuts an epoch fence, and the
//! DDL wrappers on [`Sentinel`] start appending catalog ops. Replayed
//! history is therefore never re-journaled. Automatic checkpoints run on
//! the engine's checkpointer thread (installed here as a hook) so the
//! signalling threads never quiesce the graph themselves.
//!
//! Dropping a durable [`Sentinel`] deliberately does *not* flush — a
//! drop is indistinguishable from a crash, which is what the recovery
//! tests rely on. Graceful shutdown (e.g. `sentinel-net`'s server) calls
//! [`Sentinel::flush_journal`] and [`Sentinel::checkpoint_now`]
//! explicitly.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use sentinel_detector::clock::Timestamp;
use sentinel_detector::graph::PrimTarget;
use sentinel_detector::log::LoggedEvent;
use sentinel_detector::{
    EventSink, FenceKind, LocalEventDetector, Occurrence, Value as EventValue,
};
use sentinel_durable::{CatalogOp, DurableEngine, DurableOptions, Recovery};
use sentinel_obs::flight::{self, FlightKind};
use sentinel_obs::{json, RecoveryReport};
use sentinel_oodb::schema::{AttrType, ClassDef};
use sentinel_rules::manager::RuleOptions;
use sentinel_rules::{ActionFn, RuleId, RuleScheduler};
use sentinel_snoop::ast::EventModifier;
use sentinel_snoop::{CouplingMode, ParamContext};
use sentinel_storage::StorageEngine;

use crate::sentinel::{
    Sentinel, SentinelConfig, SentinelError, SentinelResult, FLUSH_ON_ABORT_RULE,
    FLUSH_ON_COMMIT_RULE,
};

// ---------------------------------------------------------------------------
// Event-parameter (de)serialization — shared by the wire protocol
// (`sentinel-net` re-exports these) and the catalog's rule specs.
// ---------------------------------------------------------------------------

/// Renders one occurrence [`EventValue`] as tagged JSON
/// (`{"int": 5}`, `{"str": "x"}`, … `null` for `Null`).
pub fn value_to_json(v: &EventValue) -> json::Value {
    match v {
        EventValue::Int(i) => json::Value::obj([("int", json::Value::Int(*i))]),
        EventValue::Float(x) => json::Value::obj([("float", json::Value::Float(*x))]),
        EventValue::Bool(b) => json::Value::obj([("bool", json::Value::Bool(*b))]),
        EventValue::Str(s) => json::Value::obj([("str", json::Value::str(s.as_ref()))]),
        EventValue::Oid(o) => json::Value::obj([("oid", json::Value::UInt(*o))]),
        EventValue::Null => json::Value::Null,
    }
}

/// Inverse of [`value_to_json`]; `None` for shapes it never produces.
pub fn value_from_json(v: &json::Value) -> Option<EventValue> {
    let json::Value::Obj(pairs) = v else {
        return matches!(v, json::Value::Null).then_some(EventValue::Null);
    };
    let [(tag, inner)] = pairs.as_slice() else { return None };
    match (tag.as_str(), inner) {
        ("int", json::Value::Int(i)) => Some(EventValue::Int(*i)),
        ("int", json::Value::UInt(u)) => i64::try_from(*u).ok().map(EventValue::Int),
        ("float", json::Value::Float(x)) => Some(EventValue::Float(*x)),
        ("float", json::Value::Int(i)) => Some(EventValue::Float(*i as f64)),
        ("float", json::Value::UInt(u)) => Some(EventValue::Float(*u as f64)),
        ("bool", json::Value::Bool(b)) => Some(EventValue::Bool(*b)),
        ("str", json::Value::Str(s)) => Some(EventValue::Str(Arc::from(s.as_str()))),
        ("oid", json::Value::UInt(o)) => Some(EventValue::Oid(*o)),
        ("oid", json::Value::Int(i)) => u64::try_from(*i).ok().map(EventValue::Oid),
        _ => None,
    }
}

/// Renders an event parameter list as a JSON object (order preserved).
pub fn params_to_json(params: &[(Arc<str>, EventValue)]) -> json::Value {
    json::Value::Obj(params.iter().map(|(k, v)| (k.to_string(), value_to_json(v))).collect())
}

/// Inverse of [`params_to_json`]. `Null` (an absent `params` field) is an
/// empty list; anything but an object of tagged values is `None`.
pub fn params_from_json(v: &json::Value) -> Option<Vec<(Arc<str>, EventValue)>> {
    match v {
        json::Value::Null => Some(Vec::new()),
        json::Value::Obj(pairs) => pairs
            .iter()
            .map(|(k, v)| value_from_json(v).map(|val| (Arc::from(k.as_str()), val)))
            .collect(),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Catalog-spec helpers
// ---------------------------------------------------------------------------

/// Catalog string for an invocation edge.
pub(crate) fn edge_name(m: EventModifier) -> &'static str {
    match m {
        EventModifier::Begin => "begin",
        EventModifier::End => "end",
        EventModifier::Both => "both",
    }
}

fn edge_from(s: &str) -> SentinelResult<EventModifier> {
    match s {
        "begin" => Ok(EventModifier::Begin),
        "end" => Ok(EventModifier::End),
        "both" => Ok(EventModifier::Both),
        other => Err(SentinelError::Spec(format!("unknown event edge `{other}`"))),
    }
}

fn attr_type(name: &str) -> SentinelResult<AttrType> {
    match name {
        "int" => Ok(AttrType::Int),
        "float" => Ok(AttrType::Float),
        "bool" => Ok(AttrType::Bool),
        "str" => Ok(AttrType::Str),
        "ref" => Ok(AttrType::Ref),
        other => Err(SentinelError::Spec(format!("unknown attribute type `{other}`"))),
    }
}

fn require_str<'a>(v: &'a json::Value, key: &str) -> SentinelResult<&'a str> {
    v.get(key)
        .and_then(json::Value::as_str)
        .ok_or_else(|| SentinelError::Spec(format!("missing `{key}`")))
}

/// Renders an occurrence's flattened constituent parameters —
/// `e1(qty=5); e2(price=9)` — the `rule_last` stats entry, which lets a
/// client (or a crash-restart test) see *which* constituents a composite
/// fired with.
fn render_params(occ: &Occurrence) -> String {
    let mut out = String::new();
    for (i, p) in occ.param_list().iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        out.push_str(&p.event_name);
        out.push('(');
        for (j, (k, v)) in p.params.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{k}={v}"));
        }
        out.push(')');
    }
    out
}

/// The live journal hook: installed as the detector's [`EventSink`] once
/// recovery completes. `record` runs under only the signalling shard's
/// order lock — disjoint shards append to their streams concurrently —
/// so it must never re-enter the detector; under
/// [`sentinel_durable::FsyncPolicy::Always`] it blocks until the
/// engine's next group commit covers the record. `fence` runs at every
/// whole-graph ordering point and appends (always fsynced) to the epoch
/// fence log, which is what lets recovery merge the per-shard streams
/// back into happened-before order.
pub struct JournalSink {
    engine: Arc<DurableEngine>,
}

impl JournalSink {
    /// A sink journaling into `engine`.
    pub fn new(engine: Arc<DurableEngine>) -> Self {
        JournalSink { engine }
    }
}

impl EventSink for JournalSink {
    fn record(&self, _detector: &LocalEventDetector, shard: u32, ev: &LoggedEvent) {
        let _ = self.engine.append_event(shard, ev);
    }

    fn fence(&self, _detector: &LocalEventDetector, kind: FenceKind, ts: Timestamp) {
        let _ = self.engine.append_fence(kind, ts);
    }
}

impl Sentinel {
    /// Opens a durable Sentinel over the data directory `dir`, recovering
    /// whatever a previous incarnation persisted there: the DDL catalog is
    /// replayed (interleaved with the event journal at the positions the
    /// ops originally executed), the newest valid checkpoint is restored,
    /// and the journal suffix is replayed so half-detected composites
    /// resume exactly where the crash left them.
    ///
    /// Returns the recovered system plus a [`RecoveryReport`] describing
    /// what was found (also written to `recovery-report.json` in `dir`).
    pub fn open_durable(
        dir: &Path,
        config: SentinelConfig,
        opts: DurableOptions,
    ) -> SentinelResult<(Arc<Sentinel>, RecoveryReport)> {
        Self::open_durable_inner(dir, config, opts, true)
    }

    /// [`Sentinel::open_durable`] body, with the live-journal sink made
    /// optional: a **replica** ([`Sentinel::open_replica`]) recovers
    /// identically but must not install the sink — its graph mutations
    /// come from the shipped replication stream, and the apply loop
    /// journals each entry explicitly (installing the sink too would
    /// double-journal every applied event). Promotion installs the sink
    /// at that point ([`Sentinel::promote`]).
    pub(crate) fn open_durable_inner(
        dir: &Path,
        config: SentinelConfig,
        opts: DurableOptions,
        install_sink: bool,
    ) -> SentinelResult<(Arc<Sentinel>, RecoveryReport)> {
        let t_total = Instant::now();
        // Capture the previous incarnation's flight-recorder dump *before*
        // anything in this process can overwrite it: merged into the
        // recovery report, it is the post-mortem of the crash's final
        // seconds (what the ring held when the committer last refreshed
        // the dump).
        let prior_flight = std::fs::read_to_string(dir.join(flight::FLIGHT_RECORDER_FILE))
            .ok()
            .and_then(|s| json::Value::parse(&s).ok());
        let (engine, recovery) = DurableEngine::open(dir, opts)?;
        let Recovery { catalog_ops, checkpoints, events, fences, v1_records, mut report } =
            recovery;
        report.flight_recorder = prior_flight;

        // Pick the newest checkpoint that (a) is covered by the surviving
        // journal, (b) whose catalog prefix applies cleanly, and (c) that
        // validates against the rebuilt graph. Each failure falls back to
        // the next older checkpoint — a longer replay, never a panic.
        let t_restore = Instant::now();
        let mut restored: Option<(Arc<Sentinel>, u64, usize)> = None;
        for (tag, snap) in &checkpoints {
            if *tag > events.len() as u64 {
                // The journal lost records this checkpoint claims to cover;
                // restoring it would desynchronize indices.
                report.checkpoints_rejected += 1;
                continue;
            }
            let s = Sentinel::open(Arc::new(StorageEngine::in_memory()), config.clone())?;
            let mut cursor = 0;
            let mut ok = true;
            while cursor < catalog_ops.len() && catalog_ops[cursor].0 <= *tag {
                if s.apply_catalog_op(&catalog_ops[cursor].1).is_err() {
                    ok = false;
                    break;
                }
                cursor += 1;
            }
            if ok && s.detector().restore_snapshot(snap).is_ok() {
                report.checkpoint_tag = Some(*tag);
                restored = Some((s, *tag, cursor));
                break;
            }
            report.checkpoints_rejected += 1;
        }
        let (sentinel, start, mut cursor) = match restored {
            Some(r) => r,
            None => (Sentinel::open(Arc::new(StorageEngine::in_memory()), config.clone())?, 0, 0),
        };
        report.phases.snapshot_restore_us = t_restore.elapsed().as_micros() as u64;

        // Replay the suffix, interleaving catalog ops and fences at their
        // recorded positions: an op stamped `at_index = i` (or a fence at
        // position `i`) executed before journal record `i` did. Fences at
        // exactly the checkpoint position are re-applied — their actions
        // (flush a txn with no occurrences buffered after the snapshot,
        // advance an already-advanced clock) are idempotent, and skipping
        // one that ran *after* the snapshot would diverge.
        let t_replay = Instant::now();
        let mut catalog_us = 0u64;
        let mut fcursor = 0usize;
        while fcursor < fences.len() && fences[fcursor].0 < start {
            fcursor += 1;
        }
        for (i, ev) in events.iter().enumerate().skip(start as usize) {
            while cursor < catalog_ops.len() && catalog_ops[cursor].0 <= i as u64 {
                let t_op = Instant::now();
                sentinel.apply_catalog_op(&catalog_ops[cursor].1)?;
                catalog_us += t_op.elapsed().as_micros() as u64;
                cursor += 1;
            }
            while fcursor < fences.len() && fences[fcursor].0 <= i as u64 {
                sentinel.apply_fence(fences[fcursor].1);
                fcursor += 1;
            }
            // Detections are dropped: the rules they notified already ran
            // before the crash (or were lost with the crash — either way
            // re-firing actions on restart would double their effects).
            let _ = sentinel.detector().replay(std::slice::from_ref(ev));
            report.replayed_records += 1;
            // Legacy v1 records carry no fences: infer transaction flushes
            // from replayed commit/abort events as the v1 engine did.
            if (i as u64) < v1_records {
                sentinel.replay_flush(ev);
            }
        }
        while cursor < catalog_ops.len() {
            let t_op = Instant::now();
            sentinel.apply_catalog_op(&catalog_ops[cursor].1)?;
            catalog_us += t_op.elapsed().as_micros() as u64;
            cursor += 1;
        }
        while fcursor < fences.len() {
            sentinel.apply_fence(fences[fcursor].1);
            fcursor += 1;
        }
        report.phases.catalog_interleave_us = catalog_us;
        report.phases.replay_us =
            (t_replay.elapsed().as_micros() as u64).saturating_sub(catalog_us);

        // Resync the logical clock past every tick the pre-crash system
        // issued. Replay advances it past replayed event timestamps, but
        // pinned rule definitions do not tick — so with a short (or empty)
        // journal suffix the clock would lag behind the recovered rules'
        // `defined_at` cutoffs and fresh events would look *older* than
        // the rules watching for them.
        let max_tick = catalog_ops
            .iter()
            .filter_map(|(_, op)| match op {
                CatalogOp::DefineRule { defined_at, .. }
                | CatalogOp::EnableRule { defined_at, .. } => Some(*defined_at),
                _ => None,
            })
            .chain(events.iter().map(LoggedEvent::ts))
            .chain(fences.iter().filter_map(|(_, kind)| match kind {
                FenceKind::AdvanceTime(to) => Some(*to),
                _ => None,
            }))
            .max();
        if let Some(t) = max_tick {
            sentinel.detector().clock().advance_to(t);
        }

        // Go live: from here on, signalled events journal through the
        // sink (per shard, fences at ordering points) and the DDL
        // wrappers append catalog ops. Automatic checkpoints run on the
        // engine's checkpointer thread; the hook holds only weak
        // references so the cycle engine → hook → sentinel never forms.
        if install_sink {
            sentinel.detector().set_event_sink(Arc::new(JournalSink::new(engine.clone())));
        }
        let det_weak = Arc::downgrade(sentinel.detector());
        let eng_weak = Arc::downgrade(&engine);
        engine.set_checkpoint_hook(Arc::new(move || {
            if let (Some(det), Some(eng)) = (det_weak.upgrade(), eng_weak.upgrade()) {
                det.with_signals_paused(|| {
                    let tag = eng.next_index();
                    let snap = det.snapshot_state();
                    let _ = eng.write_checkpoint(tag, &snap);
                });
            }
        }));
        *sentinel.durable.lock() = Some(engine.clone());
        report.phases.total_us = t_total.elapsed().as_micros() as u64;
        flight::global().record_static(
            FlightKind::Recovery,
            "open_durable",
            report.replayed_records,
            report.checkpoint_tag.unwrap_or(0),
        );
        let _ = engine.write_report(&report);
        Ok((sentinel, report))
    }

    /// Re-applies one recovered fence's graph action. Barriers order, but
    /// carry no action; flush/advance re-run their (idempotent) effects.
    /// Also the replica apply path for shipped [`FenceKind`] entries.
    pub(crate) fn apply_fence(&self, kind: FenceKind) {
        match kind {
            FenceKind::FlushTxn(txn) => self.detector().flush_txn(txn),
            FenceKind::AdvanceTime(to) => {
                let _ = self.detector().advance_time(to);
            }
            FenceKind::Barrier => {}
        }
    }

    /// Reproduces the flush side effect of the deactivatable system rules
    /// for a replayed commit/abort event **from a legacy v1 journal**,
    /// which recorded no fences. During replay rule actions do not run,
    /// but the flush is graph state, not application effect — it must
    /// happen (iff the flush rule was enabled at that point) for the
    /// replayed graph to match the live one. v2 records don't need the
    /// inference: their flushes replay from [`FenceKind::FlushTxn`]
    /// fences.
    fn replay_flush(&self, ev: &LoggedEvent) {
        let LoggedEvent::Explicit { name, txn: Some(txn), .. } = ev else { return };
        let rule = match name.as_str() {
            "commit-transaction" => FLUSH_ON_COMMIT_RULE,
            "abort-transaction" => FLUSH_ON_ABORT_RULE,
            _ => return,
        };
        if self.rules().lookup(rule).is_some_and(|id| self.rules().is_enabled(id)) {
            self.detector().flush_txn(*txn);
        }
    }

    /// Re-applies one recovered catalog operation. Rule `defined_at`
    /// ticks are pinned to their recorded values so `NOW` cutoffs land
    /// exactly where they did in the live run. Also the replica apply
    /// path for shipped DDL (under journal suppression — see
    /// [`Sentinel::journal_op`]).
    pub(crate) fn apply_catalog_op(&self, op: &CatalogOp) -> SentinelResult<()> {
        match op {
            CatalogOp::DefineClass { name, parent, attrs, methods } => {
                let mut def = ClassDef::new(name).extends(parent);
                for (an, at) in attrs {
                    def = def.attr(an, attr_type(at)?);
                }
                for m in methods {
                    def = def.method(m);
                }
                self.db().register_class(def)?;
            }
            CatalogOp::DeclareExplicit { name } => {
                self.detector().declare_explicit(name);
            }
            CatalogOp::DeclarePrimitive { name, class, edge, sig, oid } => {
                let target = oid.map_or(PrimTarget::AnyInstance, PrimTarget::Instance);
                self.detector().declare_primitive(name, class, edge_from(edge)?, sig, target)?;
            }
            CatalogOp::DefineEvent { name, expr } => {
                let parsed = sentinel_snoop::parse_event_expr(expr)?;
                self.detector().define_named(name, &parsed)?;
            }
            CatalogOp::DefineRule { spec, defined_at } => {
                self.define_rule_spec_at(spec, Some(*defined_at))?;
            }
            CatalogOp::EnableRule { name, defined_at } => {
                let id = self
                    .rules()
                    .lookup(name)
                    .ok_or_else(|| SentinelError::Unknown(name.to_string()))?;
                self.rules().enable_at(id, Some(*defined_at))?;
            }
            CatalogOp::DisableRule { name } => {
                let id = self
                    .rules()
                    .lookup(name)
                    .ok_or_else(|| SentinelError::Unknown(name.to_string()))?;
                self.rules().disable(id)?;
            }
            CatalogOp::DropRule { name } => {
                let id = self
                    .rules()
                    .lookup(name)
                    .ok_or_else(|| SentinelError::Unknown(name.to_string()))?;
                self.rules().delete(id)?;
            }
        }
        Ok(())
    }

    /// Appends a catalog op if this system is durable; a no-op otherwise.
    /// Called by the DDL wrappers *after* the operation succeeded, and
    /// quiescent during recovery (the engine is installed post-replay).
    /// Also suppressed while a replica applies shipped catalog entries:
    /// the apply loop appends each op explicitly so the local catalog
    /// records the primary's interleaving, not a second copy per op.
    pub(crate) fn journal_op(&self, op: &CatalogOp) -> SentinelResult<()> {
        if self.suppress_journal.load(std::sync::atomic::Ordering::SeqCst) {
            return Ok(());
        }
        let engine = self.durable.lock().clone();
        if let Some(engine) = engine {
            engine.append_catalog(op)?;
        }
        Ok(())
    }

    /// The durability engine, when opened via [`Sentinel::open_durable`].
    pub fn durable_engine(&self) -> Option<Arc<DurableEngine>> {
        self.durable.lock().clone()
    }

    /// Forces the event journal's tail to disk. A no-op for non-durable
    /// systems.
    pub fn flush_journal(&self) -> SentinelResult<()> {
        if let Some(engine) = self.durable.lock().clone() {
            engine.flush()?;
        }
        Ok(())
    }

    /// Takes a checkpoint of the event graph right now, with signalling
    /// paused so the snapshot and its journal tag agree. A no-op for
    /// non-durable systems.
    pub fn checkpoint_now(&self) -> SentinelResult<()> {
        let Some(engine) = self.durable.lock().clone() else { return Ok(()) };
        self.detector().with_signals_paused(|| {
            let tag = engine.next_index();
            let snap = self.detector().snapshot_state();
            engine.write_checkpoint(tag, &snap)
        })?;
        Ok(())
    }

    /// Registers a reactive class from its declarative (wire-protocol)
    /// form: attribute `(name, type)` pairs — types `int`, `float`,
    /// `bool`, `str`, `ref` — plus method signatures. The class extends
    /// `REACTIVE`. Method *bodies* cannot be persisted; re-register them
    /// with [`sentinel_oodb::invoke::Database::register_method`] after a
    /// durable reopen if the class is invoked locally.
    pub fn register_class_spec(
        &self,
        name: &str,
        attrs: &[(String, String)],
        methods: &[String],
    ) -> SentinelResult<()> {
        let mut def = ClassDef::new(name).extends("REACTIVE");
        for (an, at) in attrs {
            def = def.attr(an, attr_type(at)?);
        }
        for m in methods {
            def = def.method(m);
        }
        self.db().register_class(def)?;
        self.journal_op(&CatalogOp::DefineClass {
            name: name.to_string(),
            parent: "REACTIVE".to_string(),
            attrs: attrs.to_vec(),
            methods: methods.to_vec(),
        })?;
        Ok(())
    }

    /// Defines a rule from its declarative (wire-protocol) JSON spec:
    /// `name`, `event`, optional `context` / `coupling` / `priority`, and
    /// an `action` from the fixed catalog (conditions and actions are
    /// code, not data — a remote client cannot ship a closure):
    ///
    /// * `{"action": "count"}` — bump the rule's `rule_hits` counter and
    ///   record its parameters in `rule_last` (both visible in stats);
    /// * `{"action": "raise", "event": E, "params"?: {...}}` — raise the
    ///   explicit event `E`, cascading inside the same transaction.
    pub fn define_rule_spec(&self, spec: &json::Value) -> SentinelResult<RuleId> {
        self.define_rule_spec_at(spec, None)
    }

    fn define_rule_spec_at(
        &self,
        spec: &json::Value,
        pinned: Option<u64>,
    ) -> SentinelResult<RuleId> {
        let name = require_str(spec, "name")?.to_string();
        let event = require_str(spec, "event")?;
        let action_spec =
            spec.get("action").ok_or_else(|| SentinelError::Spec("missing action".to_string()))?;
        let action = self.build_catalog_action(&name, action_spec)?;

        let mut opts = RuleOptions::default();
        if let Some(ctx) = spec.get("context").and_then(json::Value::as_str) {
            opts = opts.context(match ctx {
                "recent" => ParamContext::Recent,
                "chronicle" => ParamContext::Chronicle,
                "continuous" => ParamContext::Continuous,
                "cumulative" => ParamContext::Cumulative,
                other => return Err(SentinelError::Spec(format!("unknown context `{other}`"))),
            });
        }
        if let Some(c) = spec.get("coupling").and_then(json::Value::as_str) {
            opts = opts.coupling(match c {
                "immediate" => CouplingMode::Immediate,
                "deferred" => CouplingMode::Deferred,
                "detached" => CouplingMode::Detached,
                other => return Err(SentinelError::Spec(format!("unknown coupling `{other}`"))),
            });
        }
        if let Some(p) = spec.get("priority").and_then(json::Value::as_u64) {
            opts = opts.priority(
                u32::try_from(p)
                    .map_err(|_| SentinelError::Spec("priority out of range".to_string()))?,
            );
        }
        if let Some(ts) = pinned {
            opts = opts.defined_at(ts);
        }

        let ev = self.event(event)?;
        let id = self.rules().define_rule(&name, ev, Arc::new(|_| true), action, opts)?;
        let defined_at = self.rules().with_rule(id, |r| r.defined_at)?;
        self.journal_op(&CatalogOp::DefineRule { spec: spec.clone(), defined_at })?;
        Ok(id)
    }

    /// Builds an action from the fixed catalog (see
    /// [`Sentinel::define_rule_spec`]).
    fn build_catalog_action(
        &self,
        rule_name: &str,
        spec: &json::Value,
    ) -> SentinelResult<ActionFn> {
        match spec.get("action").and_then(json::Value::as_str) {
            Some("count") => {
                let hits = self.rule_hits.clone();
                let last = self.rule_last.clone();
                let key = rule_name.to_string();
                Ok(Arc::new(move |inv| {
                    *hits.lock().entry(key.clone()).or_insert(0) += 1;
                    last.lock().insert(key.clone(), render_params(&inv.occurrence));
                }))
            }
            Some("raise") => {
                let event = require_str(spec, "event")?.to_string();
                let params = match spec.get("params") {
                    Some(p) => params_from_json(p)
                        .ok_or_else(|| SentinelError::Spec("malformed raise params".to_string()))?,
                    None => Vec::new(),
                };
                // Capture the detector plus a weak scheduler: the action is
                // stored inside the rule manager, which the scheduler owns,
                // so a strong reference would leak the whole system.
                let detector = self.detector().clone();
                let scheduler = Arc::downgrade(self.scheduler());
                Ok(Arc::new(move |inv| {
                    if let Some(sched) = scheduler.upgrade() {
                        let dets = detector.signal_explicit(&event, params.clone(), inv.txn);
                        RuleScheduler::dispatch(&sched, dets);
                    }
                }))
            }
            _ => Err(SentinelError::Spec("action must be one of: count, raise".to_string())),
        }
    }
}
