//! Tokenizer shared by the event-expression parser and the §3.1
//! class/rule specification parser.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (`e1`, `STOCK`, `rule`, `A`).
    Ident(String),
    /// Integer literal.
    Int(u64),
    /// Double-quoted string literal (content unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `^`
    Caret,
    /// `|`
    Pipe,
    /// `=`
    Eq,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `*` (as in `A*`, `P*` and pointer types)
    Star,
    /// `&&`
    AndAnd,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::LBracket => f.write_str("["),
            Token::RBracket => f.write_str("]"),
            Token::LBrace => f.write_str("{"),
            Token::RBrace => f.write_str("}"),
            Token::Comma => f.write_str(","),
            Token::Semi => f.write_str(";"),
            Token::Caret => f.write_str("^"),
            Token::Pipe => f.write_str("|"),
            Token::Eq => f.write_str("="),
            Token::Colon => f.write_str(":"),
            Token::Dot => f.write_str("."),
            Token::Star => f.write_str("*"),
            Token::AndAnd => f.write_str("&&"),
        }
    }
}

/// Lexing error: unexpected character at byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// The character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character {:?} at byte {}", self.ch, self.at)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`. Identifiers may contain `_` and `-` (Sentinel's
/// transaction-event names use dashes). `//` comments run to end of line;
/// `/* */` comments nest is not supported (matching C).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '^' => {
                out.push(Token::Caret);
                i += 1;
            }
            '|' => {
                out.push(Token::Pipe);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '&' if bytes.get(i + 1) == Some(&'&') => {
                out.push(Token::AndAnd);
                i += 2;
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < bytes.len() && bytes[i] != '"' {
                    if bytes[i] == '\\' && i + 1 < bytes.len() {
                        i += 1;
                    }
                    s.push(bytes[i]);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LexError { at: src.len(), ch: '"' });
                }
                i += 1; // closing quote
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut v: u64 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    v = v * 10 + bytes[i].to_digit(10).unwrap() as u64;
                    i += 1;
                }
                out.push(Token::Int(v));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '-')
                {
                    s.push(bytes[i]);
                    i += 1;
                }
                out.push(Token::Ident(s));
            }
            other => return Err(LexError { at: i, ch: other }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_event_expression() {
        let toks = lex("e1 ^ e2 | (e3 ; e4)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("e1".into()),
                Token::Caret,
                Token::Ident("e2".into()),
                Token::Pipe,
                Token::LParen,
                Token::Ident("e3".into()),
                Token::Semi,
                Token::Ident("e4".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn lexes_a_star_and_numbers() {
        let toks = lex("A*(begin-transaction, e, 42)").unwrap();
        assert_eq!(toks[0], Token::Ident("A".into()));
        assert_eq!(toks[1], Token::Star);
        assert!(toks.contains(&Token::Int(42)));
        assert!(toks.contains(&Token::Ident("begin-transaction".into())));
    }

    #[test]
    fn lexes_strings_and_comments() {
        let toks = lex(r#"event x("any_stk_price", "Stock") // trailing
            /* block */ rule"#)
        .unwrap();
        assert!(toks.contains(&Token::Str("any_stk_price".into())));
        assert_eq!(toks.last(), Some(&Token::Ident("rule".into())));
    }

    #[test]
    fn lexes_class_header() {
        let toks = lex("class STOCK : public REACTIVE { }").unwrap();
        assert_eq!(toks[0], Token::Ident("class".into()));
        assert_eq!(toks[2], Token::Colon);
    }

    #[test]
    fn andand_and_errors() {
        assert!(lex("begin(e2) && end(e3)").unwrap().contains(&Token::AndAnd));
        assert!(lex("@").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
