//! Abstract syntax for Snoop event expressions and Sentinel method events.

use std::fmt;

/// Which edge(s) of a method invocation raise the event (paper §3.1:
/// "we permit before- and after-variants of method invocation as events";
/// `end` is the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EventModifier {
    /// Before the user method body runs.
    Begin,
    /// After the user method body returns (Sentinel's default).
    End,
    /// Both edges (`begin(e) && end(f)` declares two events; a single
    /// primitive event with `Both` fires on either edge).
    Both,
}

impl EventModifier {
    /// Parses the grammar keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "begin" => Some(EventModifier::Begin),
            "end" => Some(EventModifier::End),
            "both" => Some(EventModifier::Both),
            _ => None,
        }
    }

    /// Whether this modifier matches an actual invocation edge.
    pub fn matches(self, edge: EventModifier) -> bool {
        self == EventModifier::Both || self == edge
    }
}

impl fmt::Display for EventModifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventModifier::Begin => "begin",
            EventModifier::End => "end",
            EventModifier::Both => "both",
        })
    }
}

/// A parsed C++-style method signature, e.g. `void set_price(float price)`.
///
/// Sentinel identifies primitive events by the *full signature string*
/// ("once a primitive event node is notified it checks the method signature
/// with the one that has been sent", §3.2), so we keep both the parse and
/// the canonical text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct MethodSig {
    /// Return type as written (`int`, `void`, …).
    pub ret: String,
    /// Method name.
    pub name: String,
    /// `(type, name)` pairs of formal parameters.
    pub params: Vec<(String, String)>,
}

impl MethodSig {
    /// Parses `ret name(type arg, type arg, …)`.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        let open = s.find('(')?;
        let close = s.rfind(')')?;
        if close < open {
            return None;
        }
        let head = s[..open].trim();
        let (ret, name) = head.rsplit_once(char::is_whitespace)?;
        let params_src = s[open + 1..close].trim();
        let mut params = Vec::new();
        if !params_src.is_empty() {
            for p in params_src.split(',') {
                let p = p.trim();
                let (ty, pname) = p.rsplit_once(char::is_whitespace)?;
                params.push((ty.trim().to_string(), pname.trim().to_string()));
            }
        }
        Some(MethodSig { ret: ret.trim().to_string(), name: name.trim().to_string(), params })
    }

    /// Canonical signature text used as the detector's match key.
    pub fn canonical(&self) -> String {
        let params: Vec<String> = self.params.iter().map(|(t, n)| format!("{t} {n}")).collect();
        format!("{} {}({})", self.ret, self.name, params.join(", "))
    }
}

impl fmt::Display for MethodSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// A Snoop event expression.
///
/// Leaves are *references to named events* (primitive events declared in an
/// event interface, transaction events, explicit events, or previously
/// defined composite events — §3.1 "named events can be reused later").
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EventExpr {
    /// Reference to a named event (`e1`, `STOCK.e1`, `begin-transaction`).
    Ref(String),
    /// Disjunction `e1 | e2`.
    Or(Box<EventExpr>, Box<EventExpr>),
    /// Conjunction `e1 ^ e2` (any order).
    And(Box<EventExpr>, Box<EventExpr>),
    /// Sequence `e1 ; e2` (strictly ordered).
    Seq(Box<EventExpr>, Box<EventExpr>),
    /// `ANY(m, e1, …, en)` — m distinct out of n.
    Any {
        /// How many distinct constituent event types must occur.
        m: u32,
        /// The candidate constituents.
        events: Vec<EventExpr>,
    },
    /// `NOT(e2)[e1, e3]` — e3 with no e2 since the initiating e1.
    Not {
        /// The event whose non-occurrence is monitored.
        inner: Box<EventExpr>,
        /// Interval opener.
        start: Box<EventExpr>,
        /// Interval closer (detection point).
        end: Box<EventExpr>,
    },
    /// `A(e1, e2, e3)` — each `e2` in the half-open window `[e1, e3)`.
    Aperiodic {
        /// Window opener.
        start: Box<EventExpr>,
        /// The monitored event.
        inner: Box<EventExpr>,
        /// Window closer.
        end: Box<EventExpr>,
    },
    /// `A*(e1, e2, e3)` — all `e2`s in the window, signalled once at `e3`.
    AperiodicStar {
        /// Window opener.
        start: Box<EventExpr>,
        /// The accumulated event.
        inner: Box<EventExpr>,
        /// Window closer / detection point.
        end: Box<EventExpr>,
    },
    /// `P(e1, t, e3)` — every `t` logical ticks inside `[e1, e3)`.
    Periodic {
        /// Window opener.
        start: Box<EventExpr>,
        /// Period in logical ticks.
        period: u64,
        /// Window closer.
        end: Box<EventExpr>,
    },
    /// `P*(e1, t, e3)` — accumulated periodic ticks, signalled at `e3`.
    PeriodicStar {
        /// Window opener.
        start: Box<EventExpr>,
        /// Period in logical ticks.
        period: u64,
        /// Window closer / detection point.
        end: Box<EventExpr>,
    },
    /// `PLUS(e1, t)` — `t` logical ticks after each `e1`.
    Plus {
        /// The anchoring event.
        inner: Box<EventExpr>,
        /// Offset in logical ticks.
        delta: u64,
    },
}

impl EventExpr {
    /// Reference leaf helper.
    pub fn r(name: &str) -> EventExpr {
        EventExpr::Ref(name.to_string())
    }

    /// All referenced event names, left-to-right, with duplicates.
    pub fn refs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            EventExpr::Ref(n) => out.push(n),
            EventExpr::Or(a, b) | EventExpr::And(a, b) | EventExpr::Seq(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            EventExpr::Any { events, .. } => {
                for e in events {
                    e.collect_refs(out);
                }
            }
            EventExpr::Not { inner, start, end } => {
                inner.collect_refs(out);
                start.collect_refs(out);
                end.collect_refs(out);
            }
            EventExpr::Aperiodic { start, inner, end }
            | EventExpr::AperiodicStar { start, inner, end } => {
                start.collect_refs(out);
                inner.collect_refs(out);
                end.collect_refs(out);
            }
            EventExpr::Periodic { start, end, .. } | EventExpr::PeriodicStar { start, end, .. } => {
                start.collect_refs(out);
                end.collect_refs(out);
            }
            EventExpr::Plus { inner, .. } => inner.collect_refs(out),
        }
    }

    /// Number of operator nodes (leaves excluded); used by the event-graph
    /// sharing ablation to report graph sizes.
    pub fn operator_count(&self) -> usize {
        match self {
            EventExpr::Ref(_) => 0,
            EventExpr::Or(a, b) | EventExpr::And(a, b) | EventExpr::Seq(a, b) => {
                1 + a.operator_count() + b.operator_count()
            }
            EventExpr::Any { events, .. } => {
                1 + events.iter().map(EventExpr::operator_count).sum::<usize>()
            }
            EventExpr::Not { inner, start, end } => {
                1 + inner.operator_count() + start.operator_count() + end.operator_count()
            }
            EventExpr::Aperiodic { start, inner, end }
            | EventExpr::AperiodicStar { start, inner, end } => {
                1 + start.operator_count() + inner.operator_count() + end.operator_count()
            }
            EventExpr::Periodic { start, end, .. } | EventExpr::PeriodicStar { start, end, .. } => {
                1 + start.operator_count() + end.operator_count()
            }
            EventExpr::Plus { inner, .. } => 1 + inner.operator_count(),
        }
    }
}

impl fmt::Display for EventExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventExpr::Ref(n) => f.write_str(n),
            EventExpr::Or(a, b) => write!(f, "({a} | {b})"),
            EventExpr::And(a, b) => write!(f, "({a} ^ {b})"),
            EventExpr::Seq(a, b) => write!(f, "({a} ; {b})"),
            EventExpr::Any { m, events } => {
                write!(f, "ANY({m}")?;
                for e in events {
                    write!(f, ", {e}")?;
                }
                f.write_str(")")
            }
            EventExpr::Not { inner, start, end } => write!(f, "NOT({inner})[{start}, {end}]"),
            EventExpr::Aperiodic { start, inner, end } => write!(f, "A({start}, {inner}, {end})"),
            EventExpr::AperiodicStar { start, inner, end } => {
                write!(f, "A*({start}, {inner}, {end})")
            }
            EventExpr::Periodic { start, period, end } => write!(f, "P({start}, {period}, {end})"),
            EventExpr::PeriodicStar { start, period, end } => {
                write!(f, "P*({start}, {period}, {end})")
            }
            EventExpr::Plus { inner, delta } => write!(f, "PLUS({inner}, {delta})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_sig_parses_paper_examples() {
        let sig = MethodSig::parse("void set_price(float price)").unwrap();
        assert_eq!(sig.ret, "void");
        assert_eq!(sig.name, "set_price");
        assert_eq!(sig.params, vec![("float".to_string(), "price".to_string())]);
        assert_eq!(sig.canonical(), "void set_price(float price)");

        let sig = MethodSig::parse("int sell_stock(int qty)").unwrap();
        assert_eq!(sig.name, "sell_stock");

        let sig = MethodSig::parse("int get_price()").unwrap();
        assert!(sig.params.is_empty());
        assert_eq!(sig.canonical(), "int get_price()");
    }

    #[test]
    fn method_sig_multi_param_and_pointers() {
        let sig = MethodSig::parse("void transfer(int amount, Account* to)").unwrap();
        assert_eq!(sig.params.len(), 2);
        assert_eq!(sig.params[1], ("Account*".to_string(), "to".to_string()));
    }

    #[test]
    fn method_sig_rejects_garbage() {
        assert!(MethodSig::parse("not a signature").is_none());
        assert!(MethodSig::parse("void broken(").is_none());
    }

    #[test]
    fn refs_are_collected_in_order() {
        let e = EventExpr::Seq(
            Box::new(EventExpr::And(Box::new(EventExpr::r("a")), Box::new(EventExpr::r("b")))),
            Box::new(EventExpr::r("a")),
        );
        assert_eq!(e.refs(), vec!["a", "b", "a"]);
        assert_eq!(e.operator_count(), 2);
    }

    #[test]
    fn display_round_trips_visually() {
        let e = EventExpr::AperiodicStar {
            start: Box::new(EventExpr::r("begin-transaction")),
            inner: Box::new(EventExpr::r("e")),
            end: Box::new(EventExpr::r("pre-commit-transaction")),
        };
        assert_eq!(e.to_string(), "A*(begin-transaction, e, pre-commit-transaction)");
    }

    #[test]
    fn modifier_matching() {
        assert!(EventModifier::Both.matches(EventModifier::Begin));
        assert!(EventModifier::Both.matches(EventModifier::End));
        assert!(EventModifier::Begin.matches(EventModifier::Begin));
        assert!(!EventModifier::Begin.matches(EventModifier::End));
    }
}
