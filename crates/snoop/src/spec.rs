//! Parser for Sentinel's §3.1 specification surface — the input language of
//! the Sentinel **pre-processor**.
//!
//! A specification is a sequence of items:
//!
//! ```text
//! class STOCK : public REACTIVE {
//! public:
//!     event end(e1)               int  sell_stock(int qty);
//!     event begin(e2) && end(e3)  void set_price(float price);
//!     event e4 = e1 ^ e2;
//!     rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW);
//! };
//!
//! REACTIVE Stock;
//! Stock IBM;
//! event any_stk_price("any_stk_price", "Stock", "begin", "void set_price(float price)");
//! event set_IBM_price("set_IBM_price", IBM,     "begin", "void set_price(float price)");
//! rule R2(any_stk_price, checksalary, resetsalary, CHRONICLE, DEFERRED);
//! ```
//!
//! Class-level declarations (`"Stock"`, a string) subscribe to the method on
//! *every* instance; instance-level declarations (`IBM`, an identifier)
//! subscribe on one object only — the paper's class-level vs instance-level
//! primitive events.

use std::fmt;

use crate::ast::{EventExpr, EventModifier, MethodSig};
use crate::context::ParamContext;
use crate::lexer::{lex, Token};
use crate::parser::{parse_expr, Cursor, ParseError};

/// When the condition–action pair runs relative to the triggering event
/// (HiPAC's coupling modes, paper §2.2).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum CouplingMode {
    /// At the event, inside the triggering transaction (default).
    #[default]
    Immediate,
    /// At the end of the triggering transaction (rewritten by the
    /// pre-processor to `A*(begin-txn, E, pre-commit)` in immediate mode).
    Deferred,
    /// In a separate top-level transaction (via the global event detector).
    Detached,
}

impl CouplingMode {
    /// Parses the grammar keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "IMMEDIATE" => Some(CouplingMode::Immediate),
            "DEFERRED" => Some(CouplingMode::Deferred),
            "DETACHED" => Some(CouplingMode::Detached),
            _ => None,
        }
    }

    /// Surface keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            CouplingMode::Immediate => "IMMEDIATE",
            CouplingMode::Deferred => "DEFERRED",
            CouplingMode::Detached => "DETACHED",
        }
    }
}

impl fmt::Display for CouplingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// From which instant constituent event occurrences count for a new rule
/// (paper §3.1 "rule trigger mode").
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum TriggerMode {
    /// Only occurrences from rule-definition time forward (default).
    #[default]
    Now,
    /// Already-buffered occurrences are acceptable too.
    Previous,
}

impl TriggerMode {
    /// Parses the grammar keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "NOW" => Some(TriggerMode::Now),
            "PREVIOUS" => Some(TriggerMode::Previous),
            _ => None,
        }
    }

    /// Surface keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            TriggerMode::Now => "NOW",
            TriggerMode::Previous => "PREVIOUS",
        }
    }
}

impl fmt::Display for TriggerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A method-event declaration inside a class: one method, one or more
/// `(modifier, event name)` bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodEventDecl {
    /// `(begin|end, event-name)` bindings (`begin(e2) && end(e3)` gives two).
    pub bindings: Vec<(EventModifier, String)>,
    /// The method that raises them.
    pub sig: MethodSig,
}

/// A rule declaration (`rule R1(event, cond, action, …)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpec {
    /// Rule name.
    pub name: String,
    /// The (named) event it subscribes to.
    pub event: String,
    /// Condition function name (resolved in the host's function table).
    pub condition: String,
    /// Action function name.
    pub action: String,
    /// Parameter context (None ⇒ RECENT, the Sentinel default).
    pub context: Option<ParamContext>,
    /// Coupling mode (None ⇒ IMMEDIATE).
    pub coupling: Option<CouplingMode>,
    /// Priority class by number (None ⇒ default class).
    pub priority: Option<u32>,
    /// Priority class by *name* ("a rule is assigned to a priority class by
    /// indicating its number or the name of the class", §3.1) — resolved by
    /// the rule manager's class registry.
    pub priority_class: Option<String>,
    /// Trigger mode (None ⇒ NOW).
    pub trigger: Option<TriggerMode>,
}

/// A reactive class definition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassSpec {
    /// Class name.
    pub name: String,
    /// Base class (`REACTIVE` or a user class).
    pub parent: Option<String>,
    /// Method events declared in the event interface.
    pub method_events: Vec<MethodEventDecl>,
    /// Plain (non-event) methods, kept so the class schema is complete.
    pub methods: Vec<MethodSig>,
    /// Data members (`float price;`) as `(type, name)` pairs.
    pub attrs: Vec<(String, String)>,
    /// Named composite events (`event e4 = e1 ^ e2;`).
    pub named_events: Vec<(String, EventExpr)>,
    /// Class-level rules.
    pub rules: Vec<RuleSpec>,
}

/// Whether an application-level primitive event is class- or instance-wide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventTarget {
    /// All instances of the class (string literal in the grammar).
    Class(String),
    /// One named instance (identifier in the grammar).
    Instance(String),
}

/// Application-level primitive event declaration
/// (`event n("n", "Class"|inst, "begin", "sig");`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppEventDecl {
    /// The binding name used later in expressions/rules.
    pub name: String,
    /// The registered event-name string (usually equal to `name`).
    pub event_name: String,
    /// Class-level or instance-level subscription.
    pub target: EventTarget,
    /// `begin` / `end`.
    pub modifier: EventModifier,
    /// The monitored method.
    pub sig: MethodSig,
}

/// One top-level item of a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecItem {
    /// A reactive class definition.
    Class(ClassSpec),
    /// `REACTIVE Stock;` — asserts the class is reactive.
    ReactiveDecl(String),
    /// `Stock IBM;` — declares a named instance.
    InstanceDecl {
        /// Class of the instance.
        class: String,
        /// Instance name.
        name: String,
    },
    /// Application-level primitive event.
    AppEvent(AppEventDecl),
    /// Application-level named composite event (`event x = …;`).
    NamedEvent {
        /// Event name.
        name: String,
        /// Its expression.
        expr: EventExpr,
    },
    /// Application-level rule.
    Rule(RuleSpec),
}

/// Parses a complete specification (class definitions + application items).
pub fn parse_spec(src: &str) -> Result<Vec<SpecItem>, ParseError> {
    let mut cur = Cursor::new(lex(src)?);
    let mut items = Vec::new();
    while !cur.at_end() {
        if cur.eat(&Token::Semi) {
            continue; // stray separators
        }
        match cur.peek() {
            Some(Token::Ident(kw)) if kw == "class" => {
                cur.next();
                items.push(SpecItem::Class(parse_class(&mut cur)?));
            }
            Some(Token::Ident(kw)) if kw == "REACTIVE" => {
                cur.next();
                let name = cur.expect_ident("class name after REACTIVE")?;
                items.push(SpecItem::ReactiveDecl(name));
            }
            Some(Token::Ident(kw)) if kw == "event" => {
                cur.next();
                items.push(parse_app_event(&mut cur)?);
            }
            Some(Token::Ident(kw)) if kw == "rule" => {
                cur.next();
                items.push(SpecItem::Rule(parse_rule(&mut cur)?));
            }
            Some(Token::Ident(_)) => {
                // `Stock IBM;` instance declaration.
                let class = cur.expect_ident("class name")?;
                let name = cur.expect_ident("instance name")?;
                items.push(SpecItem::InstanceDecl { class, name });
            }
            Some(t) => {
                return Err(ParseError::Unexpected {
                    expected: "class / REACTIVE / event / rule / instance declaration",
                    found: t.to_string(),
                })
            }
            None => break,
        }
    }
    Ok(items)
}

fn parse_class(cur: &mut Cursor) -> Result<ClassSpec, ParseError> {
    let name = cur.expect_ident("class name")?;
    let mut parent = None;
    if cur.eat(&Token::Colon) {
        // optional `public`
        if let Some(Token::Ident(k)) = cur.peek() {
            if k == "public" {
                cur.next();
            }
        }
        parent = Some(cur.expect_ident("base class name")?);
    }
    cur.expect(Token::LBrace, "`{` opening class body")?;
    let mut spec = ClassSpec { name, parent, ..ClassSpec::default() };
    loop {
        match cur.peek() {
            Some(Token::RBrace) => {
                cur.next();
                break;
            }
            Some(Token::Ident(k)) if k == "public" || k == "private" || k == "protected" => {
                cur.next();
                cur.expect(Token::Colon, "`:` after access specifier")?;
            }
            Some(Token::Ident(k)) if k == "event" => {
                cur.next();
                parse_class_event(cur, &mut spec)?;
            }
            Some(Token::Ident(k)) if k == "rule" => {
                cur.next();
                let rule = parse_rule(cur)?;
                spec.rules.push(rule);
            }
            Some(Token::Ident(_)) => {
                // Plain member: a method declaration if a `(` appears before
                // the terminating `;`, otherwise a data member (`float x;`).
                if method_ahead(cur) {
                    let sig = parse_signature_until_semi(cur)?;
                    spec.methods.push(sig);
                } else {
                    let ty = cur.expect_ident("attribute type")?;
                    let ty = if cur.eat(&Token::Star) { format!("{ty}*") } else { ty };
                    let name = cur.expect_ident("attribute name")?;
                    cur.expect(Token::Semi, "`;` after attribute")?;
                    spec.attrs.push((ty, name));
                }
            }
            Some(Token::Semi) => {
                cur.next();
            }
            Some(t) => {
                return Err(ParseError::Unexpected {
                    expected: "class member",
                    found: t.to_string(),
                })
            }
            None => return Err(ParseError::Eof { expected: "`}` closing class body" }),
        }
    }
    let _ = cur.eat(&Token::Semi); // optional trailing `;`
    Ok(spec)
}

/// Parses the remainder of an `event …` line inside a class body:
/// either `name = expr ;` or `mod(name) [&& mod(name)] signature ;`.
fn parse_class_event(cur: &mut Cursor, spec: &mut ClassSpec) -> Result<(), ParseError> {
    // Lookahead: `ident =` means a named composite event.
    if let (Some(Token::Ident(_)), Some(Token::Eq)) = (cur.peek(), cur.peek2()) {
        let name = cur.expect_ident("event name")?;
        cur.next(); // '='
        let expr = parse_expr(cur)?;
        cur.expect(Token::Semi, "`;` after event definition")?;
        spec.named_events.push((name, expr));
        return Ok(());
    }
    // Method event: one or more modifiers.
    let mut bindings = Vec::new();
    loop {
        let kw = cur.expect_ident("begin/end modifier")?;
        let modifier = EventModifier::from_keyword(&kw).ok_or_else(|| ParseError::Unexpected {
            expected: "begin or end",
            found: kw.clone(),
        })?;
        cur.expect(Token::LParen, "`(` after modifier")?;
        let ev_name = cur.expect_ident("event name")?;
        cur.expect(Token::RParen, "`)` after event name")?;
        bindings.push((modifier, ev_name));
        if !cur.eat(&Token::AndAnd) {
            break;
        }
    }
    let sig = parse_signature_until_semi(cur)?;
    spec.method_events.push(MethodEventDecl { bindings, sig });
    Ok(())
}

/// Whether a `(` appears before the next top-level `;` (method vs attribute).
fn method_ahead(cur: &Cursor) -> bool {
    let mut i = 0;
    loop {
        match cur.peek_at(i) {
            Some(Token::LParen) => return true,
            Some(Token::Semi) | None => return false,
            _ => i += 1,
        }
    }
}

/// Reassembles tokens up to `;` into a method signature.
fn parse_signature_until_semi(cur: &mut Cursor) -> Result<MethodSig, ParseError> {
    let mut text = String::new();
    let mut depth = 0i32;
    loop {
        match cur.peek() {
            Some(Token::Semi) if depth == 0 => {
                cur.next();
                break;
            }
            Some(t) => {
                let t = t.clone();
                cur.next();
                match t {
                    Token::LParen => {
                        depth += 1;
                        text.push('(');
                    }
                    Token::RParen => {
                        depth -= 1;
                        text.push(')');
                    }
                    Token::Comma => text.push_str(", "),
                    Token::Star => text.push('*'),
                    Token::Ident(s) => {
                        if !text.is_empty()
                            && !text.ends_with('(')
                            && !text.ends_with(' ')
                            && !text.ends_with('*')
                        {
                            text.push(' ');
                        }
                        if text.ends_with('*') {
                            text.push(' ');
                        }
                        text.push_str(&s);
                    }
                    other => {
                        return Err(ParseError::Unexpected {
                            expected: "method signature",
                            found: other.to_string(),
                        })
                    }
                }
            }
            None => return Err(ParseError::Eof { expected: "`;` after method signature" }),
        }
    }
    MethodSig::parse(&text)
        .ok_or_else(|| ParseError::Invalid(format!("unparseable method signature `{text}`")))
}

fn parse_rule(cur: &mut Cursor) -> Result<RuleSpec, ParseError> {
    let name = cur.expect_ident("rule name")?;
    cur.expect(Token::LParen, "`(` after rule name")?;
    let event = cur.expect_ident("event name")?;
    cur.expect(Token::Comma, "`,` after event")?;
    let condition = cur.expect_ident("condition function")?;
    cur.expect(Token::Comma, "`,` after condition")?;
    let action = cur.expect_ident("action function")?;
    let mut rule = RuleSpec {
        name,
        event,
        condition,
        action,
        context: None,
        coupling: None,
        priority: None,
        priority_class: None,
        trigger: None,
    };
    while cur.eat(&Token::Comma) {
        match cur.next() {
            Some(Token::Int(p)) => {
                if rule.priority.replace(p as u32).is_some() {
                    return Err(ParseError::Invalid("duplicate rule priority".into()));
                }
            }
            Some(Token::Ident(kw)) => {
                if let Some(ctx) = ParamContext::from_keyword(&kw) {
                    if rule.context.replace(ctx).is_some() {
                        return Err(ParseError::Invalid("duplicate parameter context".into()));
                    }
                } else if let Some(cm) = CouplingMode::from_keyword(&kw) {
                    if rule.coupling.replace(cm).is_some() {
                        return Err(ParseError::Invalid("duplicate coupling mode".into()));
                    }
                } else if let Some(tm) = TriggerMode::from_keyword(&kw) {
                    if rule.trigger.replace(tm).is_some() {
                        return Err(ParseError::Invalid("duplicate trigger mode".into()));
                    }
                } else if kw.chars().next().is_some_and(char::is_uppercase)
                    && kw.chars().all(|c| c.is_ascii_uppercase() || c == '_')
                {
                    // A named priority class (`HIGH`, `AUDIT_CLASS`, …).
                    if rule.priority_class.replace(kw).is_some() {
                        return Err(ParseError::Invalid("duplicate priority class".into()));
                    }
                } else {
                    return Err(ParseError::Invalid(format!("unknown rule option `{kw}`")));
                }
            }
            Some(t) => {
                return Err(ParseError::Unexpected {
                    expected: "rule option",
                    found: t.to_string(),
                })
            }
            None => return Err(ParseError::Eof { expected: "rule option" }),
        }
    }
    cur.expect(Token::RParen, "`)` closing rule")?;
    let _ = cur.eat(&Token::Semi);
    Ok(rule)
}

fn parse_app_event(cur: &mut Cursor) -> Result<SpecItem, ParseError> {
    let name = cur.expect_ident("event name")?;
    // `event x = expr ;` — application-level named composite event.
    if cur.eat(&Token::Eq) {
        let expr = parse_expr(cur)?;
        let _ = cur.eat(&Token::Semi);
        return Ok(SpecItem::NamedEvent { name, expr });
    }
    // `event n("n", "Class"|inst, "begin", "sig");`
    cur.expect(Token::LParen, "`(` after event name")?;
    let event_name = match cur.next() {
        Some(Token::Str(s)) => s,
        Some(t) => {
            return Err(ParseError::Unexpected {
                expected: "quoted event name",
                found: t.to_string(),
            })
        }
        None => return Err(ParseError::Eof { expected: "quoted event name" }),
    };
    cur.expect(Token::Comma, "`,`")?;
    let target = match cur.next() {
        Some(Token::Str(class)) => EventTarget::Class(class),
        Some(Token::Ident(inst)) => EventTarget::Instance(inst),
        Some(t) => {
            return Err(ParseError::Unexpected {
                expected: "class string or instance identifier",
                found: t.to_string(),
            })
        }
        None => return Err(ParseError::Eof { expected: "class or instance" }),
    };
    cur.expect(Token::Comma, "`,`")?;
    let modifier = match cur.next() {
        Some(Token::Str(m)) => EventModifier::from_keyword(&m)
            .ok_or_else(|| ParseError::Invalid(format!("unknown modifier `{m}`")))?,
        Some(t) => {
            return Err(ParseError::Unexpected {
                expected: "quoted modifier",
                found: t.to_string(),
            })
        }
        None => return Err(ParseError::Eof { expected: "modifier" }),
    };
    cur.expect(Token::Comma, "`,`")?;
    let sig_text = match cur.next() {
        Some(Token::Str(s)) => s,
        Some(t) => {
            return Err(ParseError::Unexpected {
                expected: "quoted method signature",
                found: t.to_string(),
            })
        }
        None => return Err(ParseError::Eof { expected: "method signature" }),
    };
    let sig = MethodSig::parse(&sig_text)
        .ok_or_else(|| ParseError::Invalid(format!("unparseable method signature `{sig_text}`")))?;
    cur.expect(Token::RParen, "`)` closing event declaration")?;
    let _ = cur.eat(&Token::Semi);
    Ok(SpecItem::AppEvent(AppEventDecl { name, event_name, target, modifier, sig }))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The STOCK class exactly as printed in §3.1 of the paper
    /// (modulo `;` statement terminators).
    const STOCK: &str = r#"
        class STOCK : public REACTIVE {
        public:
            event end(e1) int sell_stock(int qty);
            event begin(e2) && end(e3) void set_price(float price);
            int get_price();
            event e4 = e1 ^ e2; /* AND operator */
            rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW); /* class level rule */
        };
    "#;

    #[test]
    fn parses_paper_stock_class() {
        let items = parse_spec(STOCK).unwrap();
        assert_eq!(items.len(), 1);
        let SpecItem::Class(c) = &items[0] else { panic!("expected class") };
        assert_eq!(c.name, "STOCK");
        assert_eq!(c.parent.as_deref(), Some("REACTIVE"));

        assert_eq!(c.method_events.len(), 2);
        assert_eq!(c.method_events[0].bindings, vec![(EventModifier::End, "e1".to_string())]);
        assert_eq!(c.method_events[0].sig.canonical(), "int sell_stock(int qty)");
        assert_eq!(
            c.method_events[1].bindings,
            vec![(EventModifier::Begin, "e2".to_string()), (EventModifier::End, "e3".to_string())]
        );
        assert_eq!(c.method_events[1].sig.canonical(), "void set_price(float price)");

        assert_eq!(c.methods.len(), 1);
        assert_eq!(c.methods[0].canonical(), "int get_price()");

        assert_eq!(c.named_events.len(), 1);
        assert_eq!(c.named_events[0].0, "e4");
        assert_eq!(c.named_events[0].1.to_string(), "(e1 ^ e2)");

        assert_eq!(c.rules.len(), 1);
        let r = &c.rules[0];
        assert_eq!(r.name, "R1");
        assert_eq!(r.event, "e4");
        assert_eq!(r.condition, "cond1");
        assert_eq!(r.action, "action1");
        assert_eq!(r.context, Some(ParamContext::Cumulative));
        assert_eq!(r.coupling, Some(CouplingMode::Deferred));
        assert_eq!(r.priority, Some(10));
        assert_eq!(r.trigger, Some(TriggerMode::Now));
    }

    #[test]
    fn parses_paper_application_items() {
        let src = r#"
            REACTIVE Stock;
            Stock IBM;
            event any_stk_price("any_stk_price", "Stock", "begin", "void set_price(float price)");
            event set_IBM_price("set_IBM_price", IBM, "begin", "void set_price(float price)");
            rule R1(any_stk_price, checksalary, resetsalary, CHRONICLE, DEFERRED);
        "#;
        let items = parse_spec(src).unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(items[0], SpecItem::ReactiveDecl("Stock".into()));
        assert_eq!(items[1], SpecItem::InstanceDecl { class: "Stock".into(), name: "IBM".into() });
        let SpecItem::AppEvent(class_ev) = &items[2] else { panic!() };
        assert_eq!(class_ev.target, EventTarget::Class("Stock".into()));
        assert_eq!(class_ev.modifier, EventModifier::Begin);
        let SpecItem::AppEvent(inst_ev) = &items[3] else { panic!() };
        assert_eq!(inst_ev.target, EventTarget::Instance("IBM".into()));
        let SpecItem::Rule(r) = &items[4] else { panic!() };
        assert_eq!(r.context, Some(ParamContext::Chronicle));
        assert_eq!(r.coupling, Some(CouplingMode::Deferred));
        assert_eq!(r.priority, None);
    }

    #[test]
    fn rule_options_in_any_order() {
        let items = parse_spec("rule R(e, c, a, NOW, 5, IMMEDIATE, RECENT);").unwrap();
        let SpecItem::Rule(r) = &items[0] else { panic!() };
        assert_eq!(r.trigger, Some(TriggerMode::Now));
        assert_eq!(r.priority, Some(5));
        assert_eq!(r.coupling, Some(CouplingMode::Immediate));
        assert_eq!(r.context, Some(ParamContext::Recent));
    }

    #[test]
    fn named_priority_class_in_rule_options() {
        let items = parse_spec("rule R(e, c, a, URGENT, DEFERRED);").unwrap();
        let SpecItem::Rule(r) = &items[0] else { panic!() };
        assert_eq!(r.priority_class.as_deref(), Some("URGENT"));
        assert_eq!(r.priority, None);
        assert_eq!(r.coupling, Some(CouplingMode::Deferred));
        // Duplicate named class rejected.
        assert!(parse_spec("rule R(e, c, a, URGENT, AUDIT);").is_err());
        // Lowercase unknown options still rejected.
        assert!(parse_spec("rule R(e, c, a, urgent);").is_err());
    }

    #[test]
    fn duplicate_rule_option_is_rejected() {
        assert!(parse_spec("rule R(e, c, a, RECENT, CUMULATIVE);").is_err());
        assert!(parse_spec("rule R(e, c, a, 1, 2);").is_err());
    }

    #[test]
    fn named_event_at_application_level() {
        let items = parse_spec(
            "event def_rule_event = A*(begin-transaction, any_stk_price, pre-commit-transaction);",
        )
        .unwrap();
        let SpecItem::NamedEvent { name, expr } = &items[0] else { panic!() };
        assert_eq!(name, "def_rule_event");
        assert!(matches!(expr, EventExpr::AperiodicStar { .. }));
    }

    #[test]
    fn class_attributes_are_parsed() {
        let items = parse_spec(
            r#"class STOCK : public REACTIVE {
                float price;
                int holdings;
                char* symbol;
                event end(e1) int sell_stock(int qty);
            };"#,
        )
        .unwrap();
        let SpecItem::Class(c) = &items[0] else { panic!() };
        assert_eq!(
            c.attrs,
            vec![
                ("float".to_string(), "price".to_string()),
                ("int".to_string(), "holdings".to_string()),
                ("char*".to_string(), "symbol".to_string()),
            ]
        );
        assert_eq!(c.method_events.len(), 1);
    }

    #[test]
    fn class_with_pointer_params() {
        let items = parse_spec(
            "class ACCT : public REACTIVE { event end(dep) void deposit(float* amt); };",
        )
        .unwrap();
        let SpecItem::Class(c) = &items[0] else { panic!() };
        assert_eq!(c.method_events[0].sig.params[0].0, "float*");
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_spec("class { }").is_err());
        assert!(parse_spec("rule R(e);").is_err());
        assert!(parse_spec("event x(42);").is_err());
    }

    #[test]
    fn multiple_classes_and_inherited_reactive() {
        let src = r#"
            class A : public REACTIVE { event end(ea) void m(); };
            class B : public A { event end(eb) void n(); };
        "#;
        let items = parse_spec(src).unwrap();
        assert_eq!(items.len(), 2);
        let SpecItem::Class(b) = &items[1] else { panic!() };
        assert_eq!(b.parent.as_deref(), Some("A"));
    }
}
