//! Parameter contexts: the consumption policies for constituent events.
//!
//! When a composite event can be assembled from several candidate
//! constituent occurrences, the *parameter context* decides which
//! occurrences are paired and whether they remain available afterwards
//! (paper §3.1; semantics from the VLDB '94 companion paper):
//!
//! * **Recent** — only the most recent occurrence of each constituent
//!   participates; newer occurrences overwrite older ones; constituents may
//!   initiate several composite occurrences. Default in Sentinel because of
//!   its low storage requirements.
//! * **Chronicle** — occurrences pair up oldest-first (FIFO) and are
//!   *consumed* by the detection; each occurrence contributes to exactly one
//!   composite occurrence.
//! * **Continuous** — every initiator opens its own detection window; one
//!   terminator may close (and fire) many open windows at once.
//! * **Cumulative** — all occurrences of every constituent accumulate and
//!   are flushed together into a single composite occurrence.

use std::fmt;

/// The four Snoop parameter contexts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum ParamContext {
    /// Most-recent pairing, non-consuming initiators.
    Recent,
    /// Oldest-first pairing, consuming.
    Chronicle,
    /// Window per initiator, terminator fires all open windows.
    Continuous,
    /// Everything accumulates, flushed on detection.
    Cumulative,
}

impl ParamContext {
    /// All contexts, in canonical order (used by detectors that maintain
    /// per-context state arrays).
    pub const ALL: [ParamContext; 4] = [
        ParamContext::Recent,
        ParamContext::Chronicle,
        ParamContext::Continuous,
        ParamContext::Cumulative,
    ];

    /// Dense index (0..4) for per-context state arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ParamContext::Recent => 0,
            ParamContext::Chronicle => 1,
            ParamContext::Continuous => 2,
            ParamContext::Cumulative => 3,
        }
    }

    /// Parses the surface keyword of the rule grammar (`RECENT`, …).
    pub fn from_keyword(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "RECENT" => Some(ParamContext::Recent),
            "CHRONICLE" => Some(ParamContext::Chronicle),
            "CONTINUOUS" => Some(ParamContext::Continuous),
            "CUMULATIVE" => Some(ParamContext::Cumulative),
            _ => None,
        }
    }

    /// Surface keyword (inverse of [`Self::from_keyword`]).
    pub fn keyword(self) -> &'static str {
        match self {
            ParamContext::Recent => "RECENT",
            ParamContext::Chronicle => "CHRONICLE",
            ParamContext::Continuous => "CONTINUOUS",
            ParamContext::Cumulative => "CUMULATIVE",
        }
    }
}

impl Default for ParamContext {
    /// Recent is Sentinel's default context ("due to its low storage
    /// requirements", paper §3.1).
    fn default() -> Self {
        ParamContext::Recent
    }
}

impl fmt::Display for ParamContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for ctx in ParamContext::ALL {
            assert_eq!(ParamContext::from_keyword(ctx.keyword()), Some(ctx));
        }
        assert_eq!(ParamContext::from_keyword("recent"), Some(ParamContext::Recent));
        assert_eq!(ParamContext::from_keyword("bogus"), None);
    }

    #[test]
    fn indices_are_dense_and_distinct() {
        let mut seen = [false; 4];
        for ctx in ParamContext::ALL {
            assert!(!seen[ctx.index()]);
            seen[ctx.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn default_is_recent() {
        assert_eq!(ParamContext::default(), ParamContext::Recent);
    }
}
