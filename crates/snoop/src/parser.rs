//! Recursive-descent parser for Snoop event expressions.
//!
//! Grammar (lowest precedence first, all binary operators left-associative):
//!
//! ```text
//! expr    := or
//! or      := and  ( '|' and )*
//! and     := seq  ( '^' seq )*
//! seq     := prim ( ';' prim )*
//! prim    := 'ANY'  '(' INT  (',' expr)+ ')'
//!          | 'NOT'  '(' expr ')' '[' expr ',' expr ']'
//!          | 'A' ['*'] '(' expr ',' expr ',' expr ')'
//!          | 'P' ['*'] '(' expr ',' INT  ',' expr ')'
//!          | 'PLUS' '(' expr ',' INT ')'
//!          | 'AND' '(' expr ',' expr ')'      -- function forms, usable
//!          | 'OR'  '(' expr ',' expr ')'      -- where infix ';' would be
//!          | 'SEQ' '(' expr ',' expr ')'      -- ambiguous (spec files)
//!          | IDENT [ '.' IDENT ]              -- `STOCK.e1` qualified ref
//!          | '(' expr ')'
//! ```
//!
//! The operator keywords (`A`, `P`, `ANY`, `NOT`, `PLUS`, `AND`, `OR`,
//! `SEQ`) are only treated as operators when immediately followed by `(`
//! (or `*(` for the starred forms), so they remain usable as event names.

use std::fmt;

use crate::ast::EventExpr;
use crate::lexer::{lex, LexError, Token};

/// Parse error for event expressions and specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token (expected, found).
    Unexpected {
        /// What the parser was looking for.
        expected: &'static str,
        /// What it found (display form), or "end of input".
        found: String,
    },
    /// Input ended too early.
    Eof {
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// Extra tokens after a complete expression.
    Trailing(String),
    /// Semantic error in a spec (e.g. ANY with m = 0).
    Invalid(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lex error: {e}"),
            ParseError::Unexpected { expected, found } => {
                write!(f, "expected {expected}, found `{found}`")
            }
            ParseError::Eof { expected } => write!(f, "expected {expected}, found end of input"),
            ParseError::Trailing(t) => write!(f, "unexpected trailing token `{t}`"),
            ParseError::Invalid(s) => write!(f, "invalid specification: {s}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Token cursor shared with the spec parser.
pub(crate) struct Cursor {
    toks: Vec<Token>,
    pos: usize,
    /// Bracket-nesting depth while parsing an expression. An infix `;` is
    /// only a sequence operator at depth > 0 (or when `allow_top_seq` is
    /// set, as in standalone [`parse_event_expr`] input); at depth 0 inside
    /// a specification it terminates the statement.
    depth: usize,
    allow_top_seq: bool,
}

impl Cursor {
    pub(crate) fn new(toks: Vec<Token>) -> Self {
        Cursor { toks, pos: 0, depth: 0, allow_top_seq: false }
    }

    pub(crate) fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    pub(crate) fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1)
    }

    pub(crate) fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.toks.get(self.pos + offset)
    }

    pub(crate) fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if let Some(tok) = &t {
            self.pos += 1;
            // Track delimiter nesting so `;` can be disambiguated between
            // sequence operator (inside delimiters) and statement terminator.
            match tok {
                Token::LParen | Token::LBracket => self.depth += 1,
                Token::RParen | Token::RBracket => self.depth = self.depth.saturating_sub(1),
                _ => {}
            }
        }
        t
    }

    pub(crate) fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.next();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, t: Token, what: &'static str) -> Result<(), ParseError> {
        match self.next() {
            Some(found) if found == t => Ok(()),
            Some(found) => Err(ParseError::Unexpected { expected: what, found: found.to_string() }),
            None => Err(ParseError::Eof { expected: what }),
        }
    }

    pub(crate) fn expect_ident(&mut self, what: &'static str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(found) => Err(ParseError::Unexpected { expected: what, found: found.to_string() }),
            None => Err(ParseError::Eof { expected: what }),
        }
    }

    pub(crate) fn expect_int(&mut self, what: &'static str) -> Result<u64, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(i),
            Some(found) => Err(ParseError::Unexpected { expected: what, found: found.to_string() }),
            None => Err(ParseError::Eof { expected: what }),
        }
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

/// Parses a complete event expression from text.
pub fn parse_event_expr(src: &str) -> Result<EventExpr, ParseError> {
    let mut cur = Cursor::new(lex(src)?);
    cur.allow_top_seq = true;
    let e = parse_expr(&mut cur)?;
    if let Some(t) = cur.peek() {
        return Err(ParseError::Trailing(t.to_string()));
    }
    Ok(e)
}

/// Entry point shared with the spec parser (which stops at top-level `;`).
pub(crate) fn parse_expr(cur: &mut Cursor) -> Result<EventExpr, ParseError> {
    parse_or(cur)
}

fn parse_or(cur: &mut Cursor) -> Result<EventExpr, ParseError> {
    let mut lhs = parse_and(cur)?;
    while cur.eat(&Token::Pipe) {
        let rhs = parse_and(cur)?;
        lhs = EventExpr::Or(Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_and(cur: &mut Cursor) -> Result<EventExpr, ParseError> {
    let mut lhs = parse_seq(cur)?;
    while cur.eat(&Token::Caret) {
        let rhs = parse_seq(cur)?;
        lhs = EventExpr::And(Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_seq(cur: &mut Cursor) -> Result<EventExpr, ParseError> {
    let mut lhs = parse_primary(cur)?;
    // In spec files a top-level `;` is a statement terminator; only inside
    // delimiters (or in standalone expression input) is `;` the sequence
    // operator.
    while cur.peek() == Some(&Token::Semi) && (cur.depth > 0 || cur.allow_top_seq) {
        // Sequence operator only if something parseable follows.
        match cur.peek2() {
            Some(Token::Ident(_)) | Some(Token::LParen) => {
                cur.next();
                let rhs = parse_primary(cur)?;
                lhs = EventExpr::Seq(Box::new(lhs), Box::new(rhs));
            }
            _ => break,
        }
    }
    Ok(lhs)
}

fn parse_primary(cur: &mut Cursor) -> Result<EventExpr, ParseError> {
    match cur.peek() {
        Some(Token::LParen) => {
            cur.next();
            let e = parse_expr(cur)?;
            cur.expect(Token::RParen, "`)`")?;
            Ok(e)
        }
        Some(Token::Ident(name)) => {
            let name = name.clone();
            // Operator forms require a following `(` (or `*(`).
            let starred = cur.peek2() == Some(&Token::Star);
            let called = cur.peek2() == Some(&Token::LParen);
            match (name.as_str(), called, starred) {
                ("ANY", true, _) => {
                    cur.next();
                    cur.next(); // '('
                    let m = cur.expect_int("ANY count")?;
                    let mut events = Vec::new();
                    while cur.eat(&Token::Comma) {
                        events.push(parse_expr(cur)?);
                    }
                    cur.expect(Token::RParen, "`)` closing ANY")?;
                    if m == 0 || events.is_empty() || m as usize > events.len() {
                        return Err(ParseError::Invalid(format!(
                            "ANY({m}, …) needs 1 <= m <= number of events ({})",
                            events.len()
                        )));
                    }
                    Ok(EventExpr::Any { m: m as u32, events })
                }
                ("NOT", true, _) => {
                    cur.next();
                    cur.next(); // '('
                    let inner = parse_expr(cur)?;
                    cur.expect(Token::RParen, "`)` closing NOT")?;
                    cur.expect(Token::LBracket, "`[` opening NOT interval")?;
                    let start = parse_expr(cur)?;
                    cur.expect(Token::Comma, "`,` in NOT interval")?;
                    let end = parse_expr(cur)?;
                    cur.expect(Token::RBracket, "`]` closing NOT interval")?;
                    Ok(EventExpr::Not {
                        inner: Box::new(inner),
                        start: Box::new(start),
                        end: Box::new(end),
                    })
                }
                ("A", true, _) | ("A", _, true) => {
                    cur.next();
                    let star = cur.eat(&Token::Star);
                    cur.expect(Token::LParen, "`(` after A")?;
                    let start = parse_expr(cur)?;
                    cur.expect(Token::Comma, "`,` in A")?;
                    let inner = parse_expr(cur)?;
                    cur.expect(Token::Comma, "`,` in A")?;
                    let end = parse_expr(cur)?;
                    cur.expect(Token::RParen, "`)` closing A")?;
                    Ok(if star {
                        EventExpr::AperiodicStar {
                            start: Box::new(start),
                            inner: Box::new(inner),
                            end: Box::new(end),
                        }
                    } else {
                        EventExpr::Aperiodic {
                            start: Box::new(start),
                            inner: Box::new(inner),
                            end: Box::new(end),
                        }
                    })
                }
                ("P", true, _) | ("P", _, true) => {
                    cur.next();
                    let star = cur.eat(&Token::Star);
                    cur.expect(Token::LParen, "`(` after P")?;
                    let start = parse_expr(cur)?;
                    cur.expect(Token::Comma, "`,` in P")?;
                    let period = cur.expect_int("period")?;
                    if period == 0 {
                        return Err(ParseError::Invalid("P period must be positive".into()));
                    }
                    cur.expect(Token::Comma, "`,` in P")?;
                    let end = parse_expr(cur)?;
                    cur.expect(Token::RParen, "`)` closing P")?;
                    Ok(if star {
                        EventExpr::PeriodicStar {
                            start: Box::new(start),
                            period,
                            end: Box::new(end),
                        }
                    } else {
                        EventExpr::Periodic { start: Box::new(start), period, end: Box::new(end) }
                    })
                }
                ("PLUS", true, _) => {
                    cur.next();
                    cur.next(); // '('
                    let inner = parse_expr(cur)?;
                    cur.expect(Token::Comma, "`,` in PLUS")?;
                    let delta = cur.expect_int("PLUS offset")?;
                    cur.expect(Token::RParen, "`)` closing PLUS")?;
                    Ok(EventExpr::Plus { inner: Box::new(inner), delta })
                }
                ("AND", true, _) | ("OR", true, _) | ("SEQ", true, _) => {
                    cur.next();
                    cur.next(); // '('
                    let a = parse_expr(cur)?;
                    cur.expect(Token::Comma, "`,` in binary function form")?;
                    let b = parse_expr(cur)?;
                    cur.expect(Token::RParen, "`)` closing function form")?;
                    Ok(match name.as_str() {
                        "AND" => EventExpr::And(Box::new(a), Box::new(b)),
                        "OR" => EventExpr::Or(Box::new(a), Box::new(b)),
                        _ => EventExpr::Seq(Box::new(a), Box::new(b)),
                    })
                }
                _ => {
                    cur.next();
                    // Qualified reference `CLASS.event`.
                    if cur.eat(&Token::Dot) {
                        let member = cur.expect_ident("event name after `.`")?;
                        Ok(EventExpr::Ref(format!("{name}.{member}")))
                    } else {
                        Ok(EventExpr::Ref(name))
                    }
                }
            }
        }
        Some(t) => {
            Err(ParseError::Unexpected { expected: "event expression", found: t.to_string() })
        }
        None => Err(ParseError::Eof { expected: "event expression" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::EventExpr as E;

    fn p(s: &str) -> EventExpr {
        parse_event_expr(s).unwrap()
    }

    #[test]
    fn parses_refs_and_binary_ops() {
        assert_eq!(p("e1"), E::r("e1"));
        assert_eq!(p("e1 ^ e2"), E::And(Box::new(E::r("e1")), Box::new(E::r("e2"))));
        assert_eq!(p("e1 | e2"), E::Or(Box::new(E::r("e1")), Box::new(E::r("e2"))));
        assert_eq!(p("e1 ; e2"), E::Seq(Box::new(E::r("e1")), Box::new(E::r("e2"))));
    }

    #[test]
    fn precedence_or_lowest_seq_highest() {
        // a | b ^ c ; d  ==  a | (b ^ (c ; d))
        let e = p("a | b ^ c ; d");
        assert_eq!(
            e,
            E::Or(
                Box::new(E::r("a")),
                Box::new(E::And(
                    Box::new(E::r("b")),
                    Box::new(E::Seq(Box::new(E::r("c")), Box::new(E::r("d")))),
                )),
            )
        );
    }

    #[test]
    fn left_associativity() {
        let e = p("a ^ b ^ c");
        assert_eq!(
            e,
            E::And(Box::new(E::And(Box::new(E::r("a")), Box::new(E::r("b")))), Box::new(E::r("c")),)
        );
    }

    #[test]
    fn parens_override() {
        let e = p("(a | b) ^ c");
        assert_eq!(
            e,
            E::And(Box::new(E::Or(Box::new(E::r("a")), Box::new(E::r("b")))), Box::new(E::r("c")),)
        );
    }

    #[test]
    fn parses_aperiodic_forms() {
        let e = p("A(begin-transaction, insert, end-transaction)");
        assert!(matches!(e, E::Aperiodic { .. }));
        let e = p("A*(begin-transaction, e, pre-commit-transaction)");
        match e {
            E::AperiodicStar { start, inner, end } => {
                assert_eq!(*start, E::r("begin-transaction"));
                assert_eq!(*inner, E::r("e"));
                assert_eq!(*end, E::r("pre-commit-transaction"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_periodic_and_plus() {
        assert!(matches!(p("P(start, 10, stop)"), E::Periodic { period: 10, .. }));
        assert!(matches!(p("P*(start, 3, stop)"), E::PeriodicStar { period: 3, .. }));
        assert!(matches!(p("PLUS(e, 100)"), E::Plus { delta: 100, .. }));
        assert!(parse_event_expr("P(a, 0, b)").is_err(), "zero period rejected");
    }

    #[test]
    fn parses_any_and_not() {
        let e = p("ANY(2, a, b, c)");
        assert_eq!(e, E::Any { m: 2, events: vec![E::r("a"), E::r("b"), E::r("c")] });
        assert!(parse_event_expr("ANY(5, a, b)").is_err(), "m > n rejected");

        let e = p("NOT(mid)[first, last]");
        assert!(matches!(e, E::Not { .. }));
    }

    #[test]
    fn function_forms_match_infix() {
        assert_eq!(p("SEQ(a, b)"), p("a ; b"));
        assert_eq!(p("AND(a, b)"), p("a ^ b"));
        assert_eq!(p("OR(a, b)"), p("a | b"));
    }

    #[test]
    fn qualified_refs() {
        assert_eq!(p("STOCK.e1"), E::Ref("STOCK.e1".into()));
        assert_eq!(p("STOCK.e1 ^ BOND.e2").refs(), vec!["STOCK.e1", "BOND.e2"]);
    }

    #[test]
    fn operator_names_usable_as_plain_events() {
        // `A` not followed by `(`/`*(` is an ordinary reference.
        assert_eq!(p("A ^ P"), E::And(Box::new(E::r("A")), Box::new(E::r("P"))));
    }

    #[test]
    fn error_cases() {
        assert!(matches!(parse_event_expr("e1 ^"), Err(ParseError::Eof { .. })));
        assert!(matches!(parse_event_expr("e1 e2"), Err(ParseError::Trailing(_))));
        assert!(matches!(parse_event_expr(""), Err(ParseError::Eof { .. })));
        assert!(matches!(parse_event_expr("(e1"), Err(ParseError::Eof { .. })));
    }

    #[test]
    fn display_reparse_is_identity() {
        for src in [
            "a | b ^ c ; d",
            "ANY(2, a, b, c)",
            "NOT(m)[s, t]",
            "A*(x, y, z)",
            "P(s, 7, t)",
            "PLUS(k, 9)",
            "(a ; b) ; c",
        ] {
            let once = p(src);
            let twice = p(&once.to_string());
            assert_eq!(once, twice, "round-trip failed for {src}");
        }
    }
}
