//! # sentinel-snoop
//!
//! The **Snoop** event specification language of the Sentinel active OODBMS
//! (Chakravarthy & Mishra, DKE '94; the normative event language of the
//! ICDE '95 paper this repository reproduces).
//!
//! Snoop composes *primitive events* (method invocations, transaction
//! events, explicit/abstract events, temporal events) into *composite
//! events* with the operators
//!
//! | operator | written | meaning |
//! |---|---|---|
//! | disjunction | `e1 \| e2` | either occurred |
//! | conjunction | `e1 ^ e2` | both occurred, any order |
//! | sequence | `e1 ; e2` | `e1` strictly before `e2` |
//! | any | `ANY(m, e1, …, en)` | `m` distinct ones out of `n` occurred |
//! | negation | `NOT(e2)[e1, e3]` | no `e2` in the interval `[e1, e3]` |
//! | aperiodic | `A(e1, e2, e3)` | each `e2` inside the window `[e1, e3)` |
//! | cumulative aperiodic | `A*(e1, e2, e3)` | all `e2`s in the window, signalled at `e3` |
//! | periodic | `P(e1, t, e3)` | every `t` ticks inside `[e1, e3)` |
//! | cumulative periodic | `P*(e1, t, e3)` | the tick set, signalled at `e3` |
//! | plus | `PLUS(e1, t)` | `t` ticks after `e1` |
//!
//! Composite events are detected in one of four **parameter contexts**
//! ([`context::ParamContext`]) — *recent*, *chronicle*, *continuous*,
//! *cumulative* — which fix how constituent occurrences are paired and
//! consumed (paper §3.1; VLDB '94 companion paper).
//!
//! This crate also implements the surface grammar of Sentinel's §3.1
//! pre-processor input ([`spec`]): reactive class definitions with `event`
//! interfaces on methods, named event expressions, and `rule` declarations
//! with context / coupling mode / priority / trigger mode.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod context;
pub mod lexer;
pub mod parser;
pub mod spec;

pub use ast::{EventExpr, EventModifier, MethodSig};
pub use context::ParamContext;
pub use parser::{parse_event_expr, ParseError};
pub use spec::{parse_spec, ClassSpec, CouplingMode, RuleSpec, SpecItem, TriggerMode};
