//! # sentinel-detector
//!
//! The **local composite event detector** of the Sentinel active OODBMS
//! (paper §2.3/§3.2): an event graph whose leaves are primitive events
//! (method invocations, transaction events, explicit events) and whose
//! internal nodes are Snoop operators, detecting composite events in the
//! four parameter contexts *simultaneously in a single graph* with
//! per-context reference counters.
//!
//! Key properties reproduced from the paper:
//!
//! * **Single graph, multiple contexts** — every node keeps a counter per
//!   context; a rule subscription propagates its context down the sub-graph,
//!   incrementing counters, and detection in a context starts when its
//!   counter leaves zero and stops when it returns to zero (§3.2 item 1).
//! * **Demand-driven propagation** — occurrences flow only to nodes with an
//!   active context ("does not propagate parameters to irrelevant nodes").
//! * **Shared sub-expressions** — the graph hash-conses operator nodes so
//!   common sub-expressions are represented once (§3.1).
//! * **Linked parameter lists** — a composite occurrence holds `Arc`
//!   references to its constituents; parameters are never copied, "only the
//!   pointers have to be adjusted" (§3.2 item 2).
//! * **Transaction hygiene** — [`detector::LocalEventDetector::flush_txn`]
//!   removes all buffered occurrences of a transaction so events never cross
//!   transaction boundaries (§3.2 item 3); it is wired to commit/abort by
//!   `sentinel-core`.
//! * **Online and batch detection** — the detector can record a primitive
//!   event log and replay it over a fresh graph ([`log`]).
//! * **Detector/application separation** — [`service::DetectorService`] runs
//!   the detector on its own thread behind a channel, the thread-based
//!   separation of Figure 2.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod detector;
pub mod graph;
pub mod log;
pub mod nodes;
pub mod occurrence;
pub mod service;
pub mod snapshot;
pub mod viz;

pub use clock::LogicalClock;
pub use detector::{
    Detection, DetectorStats, EventSink, FenceKind, LocalEventDetector, NodeStats, ShardStats,
    SubscriberId,
};
pub use graph::{EventId, GraphError};
pub use occurrence::{Occurrence, Value};
pub use service::{DetectorPool, DoneCallback, ServiceMetrics};
pub use snapshot::{GraphSnapshot, NodeSnapshot, RestoreError};
