//! Event occurrences and their parameters.
//!
//! A primitive occurrence carries the parameters collected by the wrapper
//! method (`PARA_LIST` in the paper's generated C++: name/type/value
//! triples plus the object identity). A composite occurrence carries `Arc`
//! references to its constituent occurrences — the paper's linked parameter
//! lists with "no copying of data, only the pointers have to be adjusted".

use std::fmt;
use std::sync::Arc;

use sentinel_obs::span::SpanContext;

use crate::clock::Timestamp;
use crate::graph::EventId;

/// An atomic parameter value.
///
/// The paper restricts composite-event parameters to the object identity
/// plus atomic values ("we include the identification of the object (i.e.,
/// oid) as one of the event parameters and other parameters which have
/// atomic values"); complex types are not copied across the detector.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// IEEE-754 double.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Interned string.
    Str(Arc<str>),
    /// Object identity.
    Oid(u64),
    /// Absent / null.
    Null,
}

impl Value {
    /// String helper.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Numeric view (ints widen to float) for conditions that compare.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Oid view.
    pub fn as_oid(&self) -> Option<u64> {
        match self {
            Value::Oid(o) => Some(*o),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            // Bit equality so Value is usable in hash maps; NaN == NaN here.
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Oid(a), Value::Oid(b)) => a == b,
            (Value::Null, Value::Null) => true,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Oid(o) => write!(f, "oid#{o}"),
            Value::Null => f.write_str("null"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v.into())
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v.into())
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

/// One event occurrence — primitive (leaf) or composite.
#[derive(Debug, Clone, PartialEq)]
pub struct Occurrence {
    /// Event-graph node that produced this occurrence.
    pub event: EventId,
    /// The event's name (`"STOCK.e1"`, `"begin-transaction"`, …).
    pub event_name: Arc<str>,
    /// Occurrence time: the tick of the detecting (terminating) constituent.
    pub at: Timestamp,
    /// Top-level transaction the occurrence belongs to (None for events
    /// outside any transaction, e.g. global/temporal events).
    pub txn: Option<u64>,
    /// Originating application (for inter-application/global events).
    pub app: u32,
    /// Identity of the object whose method raised the event, if any.
    pub source: Option<u64>,
    /// Primitive parameters (`(name, value)`), empty for composites.
    pub params: Vec<(Arc<str>, Value)>,
    /// Constituent occurrences (chronological), empty for primitives.
    pub constituents: Vec<Arc<Occurrence>>,
    /// Provenance span, when tracing is enabled (None otherwise).
    pub span: Option<SpanContext>,
}

impl Occurrence {
    /// A primitive occurrence.
    pub fn primitive(
        event: EventId,
        event_name: Arc<str>,
        at: Timestamp,
        txn: Option<u64>,
        app: u32,
        source: Option<u64>,
        params: Vec<(Arc<str>, Value)>,
    ) -> Arc<Occurrence> {
        Self::primitive_spanned(event, event_name, at, txn, app, source, params, None)
    }

    /// A primitive occurrence carrying a provenance span.
    #[allow(clippy::too_many_arguments)]
    pub fn primitive_spanned(
        event: EventId,
        event_name: Arc<str>,
        at: Timestamp,
        txn: Option<u64>,
        app: u32,
        source: Option<u64>,
        params: Vec<(Arc<str>, Value)>,
        span: Option<SpanContext>,
    ) -> Arc<Occurrence> {
        Arc::new(Occurrence {
            event,
            event_name,
            at,
            txn,
            app,
            source,
            params,
            constituents: Vec::new(),
            span,
        })
    }

    /// A composite occurrence over `constituents` (sorted chronologically;
    /// occurrence time = the latest constituent's time).
    pub fn composite(
        event: EventId,
        event_name: Arc<str>,
        constituents: Vec<Arc<Occurrence>>,
    ) -> Arc<Occurrence> {
        Self::composite_spanned(event, event_name, constituents, None)
    }

    /// A composite occurrence carrying a provenance span.
    pub fn composite_spanned(
        event: EventId,
        event_name: Arc<str>,
        mut constituents: Vec<Arc<Occurrence>>,
        span: Option<SpanContext>,
    ) -> Arc<Occurrence> {
        constituents.sort_by_key(|o| o.at);
        let at = constituents.last().map_or(0, |o| o.at);
        // A composite inherits the transaction of its terminator (the
        // latest constituent); mixed-transaction composites keep None only
        // if the terminator has none.
        let txn = constituents.last().and_then(|o| o.txn);
        let app = constituents.last().map_or(0, |o| o.app);
        Arc::new(Occurrence {
            event,
            event_name,
            at,
            txn,
            app,
            source: None,
            params: Vec::new(),
            constituents,
            span,
        })
    }

    /// True for leaf occurrences.
    pub fn is_primitive(&self) -> bool {
        self.constituents.is_empty()
    }

    /// Earliest constituent timestamp (== `at` for primitives). Used by the
    /// `NOW` trigger mode: a NOW rule only accepts occurrences all of whose
    /// constituents happened after the rule was defined.
    pub fn earliest(&self) -> Timestamp {
        if self.constituents.is_empty() {
            self.at
        } else {
            self.constituents.iter().map(|c| c.earliest()).min().unwrap_or(self.at)
        }
    }

    /// Flattens the occurrence into its primitive constituents in
    /// chronological order — the parameter list handed to conditions and
    /// actions ("a linked list that contains the parameters of each
    /// primitive event that participates in the detection", §2.3).
    pub fn param_list(&self) -> Vec<&Occurrence> {
        let mut out = Vec::new();
        self.collect_primitives(&mut out);
        out.sort_by_key(|o| o.at);
        out
    }

    fn collect_primitives<'a>(&'a self, out: &mut Vec<&'a Occurrence>) {
        if self.is_primitive() {
            out.push(self);
        } else {
            for c in &self.constituents {
                c.collect_primitives(out);
            }
        }
    }

    /// Looks up a parameter by name across the flattened parameter list
    /// (most recent occurrence wins).
    pub fn param(&self, name: &str) -> Option<&Value> {
        let prims = self.param_list();
        prims.iter().rev().find_map(|p| p.params.iter().find(|(n, _)| &**n == name).map(|(_, v)| v))
    }

    /// True if any primitive constituent belongs to `txn`.
    pub fn involves_txn(&self, txn: u64) -> bool {
        if self.txn == Some(txn) {
            return true;
        }
        self.constituents.iter().any(|c| c.involves_txn(txn))
    }
}

impl fmt::Display for Occurrence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.event_name, self.at)?;
        if let Some(t) = self.txn {
            write!(f, " [T{t}]")?;
        }
        if !self.params.is_empty() {
            f.write_str(" {")?;
            for (i, (n, v)) in self.params.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{n}={v}")?;
            }
            f.write_str("}")?;
        }
        if !self.constituents.is_empty() {
            f.write_str(" <")?;
            for (i, c) in self.constituents.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c}")?;
            }
            f.write_str(">")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prim(event: u32, name: &str, at: Timestamp, txn: Option<u64>) -> Arc<Occurrence> {
        Occurrence::primitive(
            EventId(event),
            Arc::from(name),
            at,
            txn,
            0,
            Some(7),
            vec![(Arc::from("qty"), Value::Int(at as i64))],
        )
    }

    #[test]
    fn composite_sorts_and_takes_latest_time() {
        let a = prim(1, "a", 5, Some(1));
        let b = prim(2, "b", 3, Some(1));
        let c = Occurrence::composite(EventId(3), Arc::from("c"), vec![a, b]);
        assert_eq!(c.at, 5);
        assert_eq!(c.constituents[0].at, 3);
        assert_eq!(c.earliest(), 3);
        assert_eq!(c.txn, Some(1));
    }

    #[test]
    fn param_list_flattens_nested_composites() {
        let a = prim(1, "a", 1, None);
        let b = prim(2, "b", 2, None);
        let inner = Occurrence::composite(EventId(4), Arc::from("ab"), vec![a, b]);
        let c = prim(3, "c", 3, None);
        let outer = Occurrence::composite(EventId(5), Arc::from("abc"), vec![inner, c]);
        let prims: Vec<_> = outer.param_list().iter().map(|o| o.at).collect();
        assert_eq!(prims, vec![1, 2, 3]);
    }

    #[test]
    fn param_lookup_prefers_most_recent() {
        let a = prim(1, "a", 1, None); // qty = 1
        let b = prim(1, "a", 9, None); // qty = 9
        let c = Occurrence::composite(EventId(2), Arc::from("aa"), vec![a, b]);
        assert_eq!(c.param("qty"), Some(&Value::Int(9)));
        assert_eq!(c.param("missing"), None);
    }

    #[test]
    fn involves_txn_walks_constituents() {
        let a = prim(1, "a", 1, Some(10));
        let b = prim(2, "b", 2, Some(11));
        let c = Occurrence::composite(EventId(3), Arc::from("ab"), vec![a, b]);
        assert!(c.involves_txn(10));
        assert!(c.involves_txn(11));
        assert!(!c.involves_txn(12));
    }

    #[test]
    fn value_conversions_and_equality() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN), "bit equality");
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_eq!(Value::Oid(5).as_oid(), Some(5));
    }

    #[test]
    fn display_is_readable() {
        let a = prim(1, "set_price", 4, Some(2));
        let s = a.to_string();
        assert!(s.contains("set_price@4"));
        assert!(s.contains("[T2]"));
        assert!(s.contains("qty=4"));
    }
}
