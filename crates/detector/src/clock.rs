//! Logical clock for event timestamps.
//!
//! Snoop semantics depend only on the total order of occurrences and on
//! logical distances (for `P`/`P*`/`PLUS`), so the detector runs on a
//! monotonic counter rather than wall time — making online and batch
//! detection reproducible. The counter is shared with the storage layer's
//! clock by `sentinel-core` (both tick the same instance semantics).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone logical timestamp.
pub type Timestamp = u64;

/// Process-wide monotonic logical clock.
#[derive(Debug, Default)]
pub struct LogicalClock {
    now: AtomicU64,
}

impl LogicalClock {
    /// A clock starting at tick 0.
    pub const fn new() -> Self {
        LogicalClock { now: AtomicU64::new(0) }
    }

    /// Draws the next tick (strictly increasing across threads).
    #[inline]
    pub fn tick(&self) -> Timestamp {
        self.now.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Reads the current tick without advancing.
    #[inline]
    pub fn peek(&self) -> Timestamp {
        self.now.load(Ordering::Relaxed)
    }

    /// Advances the clock to at least `to` (batch replay).
    pub fn advance_to(&self, to: Timestamp) {
        self.now.fetch_max(to, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_increase() {
        let c = LogicalClock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.peek(), 2);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = LogicalClock::new();
        c.advance_to(10);
        c.advance_to(4);
        assert_eq!(c.peek(), 10);
    }
}
