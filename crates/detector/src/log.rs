//! Primitive-event log for batch (after-the-fact) detection.
//!
//! The paper requires the composite event detector to "support detection of
//! events as they happen (online) when it is coupled to an application or
//! over a stored event-log (in batch mode)" (§2.1). The detector records
//! each signalled primitive event as a [`LoggedEvent`]; replaying the log
//! through a detector with the same event graph reproduces the online
//! detections exactly (timestamps are preserved).

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sentinel_snoop::ast::EventModifier;

use crate::clock::Timestamp;
use crate::occurrence::Value;

/// One recorded primitive event.
#[derive(Debug, Clone, PartialEq)]
pub enum LoggedEvent {
    /// A wrapper-method notification.
    Method {
        /// Class of the invoked method.
        class: String,
        /// Canonical method signature.
        sig: String,
        /// Which invocation edge.
        edge: EventModifier,
        /// Receiver object.
        oid: u64,
        /// Collected parameters.
        params: Vec<(Arc<str>, Value)>,
        /// Enclosing transaction.
        txn: Option<u64>,
        /// Logical occurrence time.
        ts: Timestamp,
    },
    /// An explicit (name-matched) event.
    Explicit {
        /// Event name.
        name: String,
        /// Attached parameters.
        params: Vec<(Arc<str>, Value)>,
        /// Enclosing transaction.
        txn: Option<u64>,
        /// Logical occurrence time.
        ts: Timestamp,
    },
}

impl LoggedEvent {
    /// Logical time of the logged event.
    pub fn ts(&self) -> Timestamp {
        match self {
            LoggedEvent::Method { ts, .. } | LoggedEvent::Explicit { ts, .. } => *ts,
        }
    }

    /// Transaction of the logged event.
    pub fn txn(&self) -> Option<u64> {
        match self {
            LoggedEvent::Method { txn, .. } | LoggedEvent::Explicit { txn, .. } => *txn,
        }
    }
}

// --- persistent event logs --------------------------------------------

pub(crate) fn put_str(out: &mut BytesMut, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut Bytes) -> Option<String> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    String::from_utf8(buf.split_to(len).to_vec()).ok()
}

pub(crate) fn put_value(out: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(i) => {
            out.put_u8(0);
            out.put_i64_le(*i);
        }
        Value::Float(f) => {
            out.put_u8(1);
            out.put_f64_le(*f);
        }
        Value::Bool(b) => {
            out.put_u8(2);
            out.put_u8(u8::from(*b));
        }
        Value::Str(s) => {
            out.put_u8(3);
            put_str(out, s);
        }
        Value::Oid(o) => {
            out.put_u8(4);
            out.put_u64_le(*o);
        }
        Value::Null => out.put_u8(5),
    }
}

pub(crate) fn get_value(buf: &mut Bytes) -> Option<Value> {
    if buf.remaining() < 1 {
        return None;
    }
    Some(match buf.get_u8() {
        0 => {
            if buf.remaining() < 8 {
                return None;
            }
            Value::Int(buf.get_i64_le())
        }
        1 => {
            if buf.remaining() < 8 {
                return None;
            }
            Value::Float(buf.get_f64_le())
        }
        2 => {
            if buf.remaining() < 1 {
                return None;
            }
            Value::Bool(buf.get_u8() != 0)
        }
        3 => Value::Str(Arc::from(get_str(buf)?)),
        4 => {
            if buf.remaining() < 8 {
                return None;
            }
            Value::Oid(buf.get_u64_le())
        }
        5 => Value::Null,
        _ => return None,
    })
}

pub(crate) fn put_params(out: &mut BytesMut, params: &[(Arc<str>, Value)]) {
    out.put_u32_le(params.len() as u32);
    for (n, v) in params {
        put_str(out, n);
        put_value(out, v);
    }
}

pub(crate) fn get_params(buf: &mut Bytes) -> Option<Vec<(Arc<str>, Value)>> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = Arc::from(get_str(buf)?);
        let value = get_value(buf)?;
        out.push((name, value));
    }
    Some(out)
}

pub(crate) fn put_opt_txn(out: &mut BytesMut, txn: Option<u64>) {
    match txn {
        Some(t) => {
            out.put_u8(1);
            out.put_u64_le(t);
        }
        None => out.put_u8(0),
    }
}

pub(crate) fn get_opt_txn(buf: &mut Bytes) -> Option<Option<u64>> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        0 => Some(None),
        1 => {
            if buf.remaining() < 8 {
                return None;
            }
            Some(Some(buf.get_u64_le()))
        }
        _ => None,
    }
}

fn modifier_tag(m: EventModifier) -> u8 {
    match m {
        EventModifier::Begin => 0,
        EventModifier::End => 1,
        EventModifier::Both => 2,
    }
}

fn modifier_from(tag: u8) -> Option<EventModifier> {
    Some(match tag {
        0 => EventModifier::Begin,
        1 => EventModifier::End,
        2 => EventModifier::Both,
        _ => return None,
    })
}

/// Appends the wire encoding of one logged event to `out` (the per-event
/// layout shared by [`encode_log`] and the durable event journal).
pub fn encode_event(out: &mut BytesMut, ev: &LoggedEvent) {
    match ev {
        LoggedEvent::Method { class, sig, edge, oid, params, txn, ts } => {
            out.put_u8(0);
            put_str(out, class);
            put_str(out, sig);
            out.put_u8(modifier_tag(*edge));
            out.put_u64_le(*oid);
            put_params(out, params);
            put_opt_txn(out, *txn);
            out.put_u64_le(*ts);
        }
        LoggedEvent::Explicit { name, params, txn, ts } => {
            out.put_u8(1);
            put_str(out, name);
            put_params(out, params);
            put_opt_txn(out, *txn);
            out.put_u64_le(*ts);
        }
    }
}

/// Decodes one logged event from `buf` (the inverse of [`encode_event`]);
/// `None` on any corruption.
pub fn decode_event(buf: &mut Bytes) -> Option<LoggedEvent> {
    if buf.remaining() < 1 {
        return None;
    }
    Some(match buf.get_u8() {
        0 => {
            let class = get_str(buf)?;
            let sig = get_str(buf)?;
            if buf.remaining() < 9 {
                return None;
            }
            let edge = modifier_from(buf.get_u8())?;
            let oid = buf.get_u64_le();
            let params = get_params(buf)?;
            let txn = get_opt_txn(buf)?;
            if buf.remaining() < 8 {
                return None;
            }
            let ts = buf.get_u64_le();
            LoggedEvent::Method { class, sig, edge, oid, params, txn, ts }
        }
        1 => {
            let name = get_str(buf)?;
            let params = get_params(buf)?;
            let txn = get_opt_txn(buf)?;
            if buf.remaining() < 8 {
                return None;
            }
            let ts = buf.get_u64_le();
            LoggedEvent::Explicit { name, params, txn, ts }
        }
        _ => return None,
    })
}

/// Serializes an event log into a self-contained byte stream, so stored
/// logs survive process restarts and can be audited elsewhere (the paper's
/// "stored event-log" for batch detection).
pub fn encode_log(log: &[LoggedEvent]) -> Bytes {
    let mut out = BytesMut::new();
    out.put_slice(b"SLOG");
    out.put_u32_le(1); // format version
    out.put_u64_le(log.len() as u64);
    for ev in log {
        encode_event(&mut out, ev);
    }
    out.freeze()
}

/// Deserializes a stored event log; `None` on any corruption.
pub fn decode_log(mut buf: Bytes) -> Option<Vec<LoggedEvent>> {
    if buf.remaining() < 16 || &buf.split_to(4)[..] != b"SLOG" {
        return None;
    }
    if buf.get_u32_le() != 1 {
        return None;
    }
    let n = buf.get_u64_le() as usize;
    let mut out = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        out.push(decode_event(&mut buf)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let ev = LoggedEvent::Explicit {
            name: "begin-transaction".into(),
            params: Vec::new(),
            txn: Some(3),
            ts: 17,
        };
        assert_eq!(ev.ts(), 17);
        assert_eq!(ev.txn(), Some(3));
    }

    fn sample_log() -> Vec<LoggedEvent> {
        vec![
            LoggedEvent::Explicit {
                name: "begin-transaction".into(),
                params: Vec::new(),
                txn: Some(3),
                ts: 1,
            },
            LoggedEvent::Method {
                class: "STOCK".into(),
                sig: "void set_price(float price)".into(),
                edge: EventModifier::Begin,
                oid: 42,
                params: vec![
                    (Arc::from("price"), Value::Float(99.5)),
                    (Arc::from("sym"), Value::str("IBM")),
                    (Arc::from("active"), Value::Bool(true)),
                    (Arc::from("ref"), Value::Oid(7)),
                    (Arc::from("nothing"), Value::Null),
                    (Arc::from("qty"), Value::Int(-3)),
                ],
                txn: None,
                ts: 2,
            },
            LoggedEvent::Method {
                class: "STOCK".into(),
                sig: "int get_price()".into(),
                edge: EventModifier::End,
                oid: 0,
                params: Vec::new(),
                txn: Some(u64::MAX),
                ts: u64::MAX,
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        let log = sample_log();
        let bytes = encode_log(&log);
        assert_eq!(decode_log(bytes).unwrap(), log);
    }

    #[test]
    fn empty_log_roundtrip() {
        assert_eq!(decode_log(encode_log(&[])).unwrap(), Vec::<LoggedEvent>::new());
    }

    #[test]
    fn corruption_yields_none_not_panic() {
        let bytes = encode_log(&sample_log());
        // Truncations at every prefix length must fail cleanly or decode
        // fully (only the full length decodes).
        for cut in 0..bytes.len() - 1 {
            assert!(decode_log(bytes.slice(0..cut)).is_none(), "cut at {cut}");
        }
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode_log(Bytes::from(bad)).is_none());
        // Bad version.
        let mut bad = bytes.to_vec();
        bad[4] = 9;
        assert!(decode_log(Bytes::from(bad)).is_none());
    }

    #[test]
    fn persisted_log_replays_identically() {
        use crate::graph::PrimTarget;
        use crate::LocalEventDetector;
        use sentinel_snoop::{parse_event_expr, ParamContext};

        let online = LocalEventDetector::new(0);
        online
            .declare_primitive("m", "C", EventModifier::End, "void f()", PrimTarget::AnyInstance)
            .unwrap();
        let seq = online.define_named("mm", &parse_event_expr("(m ; m)").unwrap()).unwrap();
        online.subscribe(seq, ParamContext::Chronicle, 1).unwrap();
        online.start_recording();
        for _ in 0..4 {
            online.notify_method("C", "void f()", EventModifier::End, 1, Vec::new(), Some(9));
        }
        let stored = encode_log(&online.take_log());

        // "Later, elsewhere": decode and replay.
        let restored = decode_log(stored).unwrap();
        let batch = LocalEventDetector::new(1);
        batch
            .declare_primitive("m", "C", EventModifier::End, "void f()", PrimTarget::AnyInstance)
            .unwrap();
        let seq = batch.define_named("mm", &parse_event_expr("(m ; m)").unwrap()).unwrap();
        batch.subscribe(seq, ParamContext::Chronicle, 1).unwrap();
        let dets = batch.replay(&restored);
        assert_eq!(dets.len(), 2, "4 m's -> 2 chronicle pairs");
    }
}
