//! Snoop operator semantics in the four parameter contexts.
//!
//! Each graph node keeps one [`CtxState`] per context, populated lazily
//! while the context's subscription counter is non-zero. An arriving child
//! occurrence is fed to [`Node::on_child`], which applies the operator's
//! pairing/consumption policy for the given context and returns zero or
//! more *emissions* (constituent groups that become composite occurrences
//! of this node).
//!
//! Consumption policies (VLDB '94 semantics, see crate docs and DESIGN.md):
//!
//! * **Recent** — buffers hold only the most recent occurrence per role and
//!   are *not* consumed by detection.
//! * **Chronicle** — FIFO pairing, participants consumed.
//! * **Continuous** — every initiator opens a window; one terminator fires
//!   all open windows and consumes them.
//! * **Cumulative** — everything buffered participates in (and is consumed
//!   by) the next detection.

use std::collections::VecDeque;
use std::sync::Arc;

use sentinel_snoop::ParamContext;

use crate::clock::Timestamp;
use crate::graph::{Node, NodeKind};
use crate::occurrence::{Occurrence, Value};

/// An open detection window (for `NOT`, `A`, `A*`, `P`, `P*`).
#[derive(Debug, Clone, Default)]
pub struct Window {
    /// The initiating occurrence.
    pub start: Option<Arc<Occurrence>>,
    /// Accumulated middle occurrences (`A`/`A*`).
    pub mids: Vec<Arc<Occurrence>>,
    /// Next periodic alarm (for `P`/`P*`).
    pub next_due: Option<Timestamp>,
    /// Accumulated periodic ticks (for `P*`).
    pub ticks: Vec<Timestamp>,
}

/// Per-context runtime state of a node.
#[derive(Debug, Clone, Default)]
pub struct CtxState {
    /// Role-indexed occurrence buffers (binary operators, ANY).
    pub bufs: Vec<VecDeque<Arc<Occurrence>>>,
    /// Open windows (interval operators).
    pub windows: VecDeque<Window>,
    /// Timestamp of the last `inner` occurrence (recent-context NOT).
    pub last_inner: Option<Timestamp>,
    /// Pending `PLUS` alarms: `(due, anchor)`.
    pub pending: Vec<(Timestamp, Arc<Occurrence>)>,
}

impl CtxState {
    fn buf(&mut self, role: usize, n: usize) -> &mut VecDeque<Arc<Occurrence>> {
        if self.bufs.len() < n {
            self.bufs.resize_with(n, VecDeque::new);
        }
        &mut self.bufs[role]
    }

    /// Whether this state holds anything (diagnostics).
    pub fn is_empty(&self) -> bool {
        self.bufs.iter().all(VecDeque::is_empty)
            && self.windows.is_empty()
            && self.pending.is_empty()
    }
}

/// One detection produced by a node: the constituents of the new composite
/// occurrence, plus optional extra parameters and an explicit occurrence
/// time (used by temporal operators whose time is the alarm tick, not a
/// constituent's tick).
#[derive(Debug)]
pub struct Emission {
    /// Constituent occurrences (will be sorted chronologically).
    pub constituents: Vec<Arc<Occurrence>>,
    /// Extra parameters attached to the composite (e.g. periodic ticks).
    pub params: Vec<(Arc<str>, Value)>,
    /// Occurrence time override (None ⇒ latest constituent).
    pub at: Option<Timestamp>,
}

impl Emission {
    fn of(constituents: Vec<Arc<Occurrence>>) -> Emission {
        Emission { constituents, params: Vec::new(), at: None }
    }
}

impl Node {
    /// Feeds a child occurrence (arriving in `role`) for context `ctx`.
    ///
    /// The caller guarantees `self.active(ctx)`.
    pub fn on_child(
        &mut self,
        role: u8,
        occ: &Arc<Occurrence>,
        ctx: ParamContext,
    ) -> Vec<Emission> {
        let state = &mut self.state[ctx.index()];
        match &self.kind {
            NodeKind::Primitive { .. } => Vec::new(), // leaves have no children
            NodeKind::Or(_, _) => vec![Emission::of(vec![occ.clone()])],
            NodeKind::And(_, _) => on_and(state, role, occ, ctx),
            NodeKind::Seq(_, _) => on_seq(state, role, occ, ctx),
            NodeKind::Any { m, children } => {
                let (m, n) = (*m as usize, children.len());
                on_any(state, role, occ, ctx, m, n)
            }
            NodeKind::Not { .. } => on_not(state, role, occ, ctx),
            NodeKind::Aperiodic { .. } => on_aperiodic(state, role, occ, ctx),
            NodeKind::AperiodicStar { .. } => on_aperiodic_star(state, role, occ, ctx),
            NodeKind::Periodic { period, .. } => {
                let period = *period;
                on_periodic(state, role, occ, ctx, period, false)
            }
            NodeKind::PeriodicStar { period, .. } => {
                let period = *period;
                on_periodic(state, role, occ, ctx, period, true)
            }
            NodeKind::Plus { delta, .. } => {
                let delta = *delta;
                state.pending.push((occ.at + delta, occ.clone()));
                Vec::new()
            }
        }
    }

    /// Feeds an occurrence that arrives in *both* roles of a binary
    /// operator at once — self-composition like `a ; a` ("two consecutive
    /// a's") or `a ^ a` ("a occurred twice"), where the left and right
    /// children are the same node.
    ///
    /// Semantics: a single buffer of prior occurrences; the new occurrence
    /// first tries to *terminate* (pair with buffered predecessors per the
    /// context policy), then — in non-consuming recent context always, in
    /// consuming contexts only when it did not terminate — becomes an
    /// initiator itself. `OR` self-composition fires exactly once per
    /// occurrence.
    pub fn on_child_dual(&mut self, occ: &Arc<Occurrence>, ctx: ParamContext) -> Vec<Emission> {
        let state = &mut self.state[ctx.index()];
        match &self.kind {
            NodeKind::Or(_, _) => vec![Emission::of(vec![occ.clone()])],
            NodeKind::And(_, _) | NodeKind::Seq(_, _) => {
                let buf = state.buf(0, 2);
                match ctx {
                    ParamContext::Recent => {
                        let out = buf
                            .back()
                            .map(|prev| vec![Emission::of(vec![prev.clone(), occ.clone()])])
                            .unwrap_or_default();
                        buf.clear();
                        buf.push_back(occ.clone());
                        out
                    }
                    ParamContext::Chronicle => {
                        if let Some(prev) = buf.pop_front() {
                            vec![Emission::of(vec![prev, occ.clone()])]
                        } else {
                            buf.push_back(occ.clone());
                            Vec::new()
                        }
                    }
                    ParamContext::Continuous => {
                        if buf.is_empty() {
                            buf.push_back(occ.clone());
                            Vec::new()
                        } else {
                            let out: Vec<Emission> = buf
                                .drain(..)
                                .map(|prev| Emission::of(vec![prev, occ.clone()]))
                                .collect();
                            buf.push_back(occ.clone());
                            out
                        }
                    }
                    ParamContext::Cumulative => {
                        if buf.is_empty() {
                            buf.push_back(occ.clone());
                            Vec::new()
                        } else {
                            let mut cons: Vec<_> = buf.drain(..).collect();
                            cons.push(occ.clone());
                            vec![Emission::of(cons)]
                        }
                    }
                }
            }
            // Other operators with duplicated children keep per-role
            // delivery (handled by the caller in descending role order).
            _ => Vec::new(),
        }
    }

    /// Fires all temporal alarms due at or before `now` for context `ctx`.
    pub fn fire_alarms(&mut self, now: Timestamp, ctx: ParamContext) -> Vec<Emission> {
        let state = &mut self.state[ctx.index()];
        match &self.kind {
            NodeKind::Plus { .. } => {
                let mut due: Vec<(Timestamp, Arc<Occurrence>)> = Vec::new();
                state.pending.retain(|(d, o)| {
                    if *d <= now {
                        due.push((*d, o.clone()));
                        false
                    } else {
                        true
                    }
                });
                due.sort_by_key(|(d, _)| *d);
                due.into_iter()
                    .map(|(d, o)| Emission {
                        constituents: vec![o],
                        params: vec![(Arc::from("fired_at"), Value::Int(d as i64))],
                        at: Some(d),
                    })
                    .collect()
            }
            NodeKind::Periodic { period, .. } => {
                let period = *period;
                let mut out = Vec::new();
                for w in state.windows.iter_mut() {
                    while let Some(d) = w.next_due {
                        if d > now {
                            break;
                        }
                        let mut cons = Vec::new();
                        if let Some(s) = &w.start {
                            cons.push(s.clone());
                        }
                        out.push(Emission {
                            constituents: cons,
                            params: vec![(Arc::from("tick"), Value::Int(d as i64))],
                            at: Some(d),
                        });
                        w.next_due = Some(d + period);
                    }
                }
                out
            }
            NodeKind::PeriodicStar { period, .. } => {
                let period = *period;
                for w in state.windows.iter_mut() {
                    while let Some(d) = w.next_due {
                        if d > now {
                            break;
                        }
                        w.ticks.push(d);
                        w.next_due = Some(d + period);
                    }
                }
                Vec::new() // P* only emits at `end`
            }
            _ => Vec::new(),
        }
    }

    /// Earliest pending alarm across all contexts (None if none).
    pub fn earliest_due(&self) -> Option<Timestamp> {
        let mut best: Option<Timestamp> = None;
        for state in &self.state {
            for (d, _) in &state.pending {
                best = Some(best.map_or(*d, |b| b.min(*d)));
            }
            for w in &state.windows {
                if let Some(d) = w.next_due {
                    best = Some(best.map_or(d, |b| b.min(d)));
                }
            }
        }
        best
    }

    /// Removes every buffered occurrence that involves transaction `txn`
    /// (events must not cross transaction boundaries, §3.2 item 3).
    ///
    /// A window whose *initiator* belongs to `txn` is dropped whole — its
    /// mids are invalid without the occurrence that opened the window —
    /// while a window with a surviving initiator only loses the mids that
    /// involve `txn`. Returns the number of occurrences removed (flush
    /// statistics).
    pub fn flush_txn(&mut self, txn: u64) -> usize {
        let mut removed = 0;
        for state in &mut self.state {
            for buf in &mut state.bufs {
                let before = buf.len();
                buf.retain(|o| !o.involves_txn(txn));
                removed += before - buf.len();
            }
            state.windows.retain(|w| {
                let drop_whole = w.start.as_ref().is_some_and(|s| s.involves_txn(txn));
                if drop_whole {
                    removed += 1 + w.mids.len();
                }
                !drop_whole
            });
            for w in &mut state.windows {
                let before = w.mids.len();
                w.mids.retain(|o| !o.involves_txn(txn));
                removed += before - w.mids.len();
            }
            let before = state.pending.len();
            state.pending.retain(|(_, o)| !o.involves_txn(txn));
            removed += before - state.pending.len();
        }
        removed
    }

    /// Clears all buffered state in every context (full event-graph flush).
    pub fn flush_all_state(&mut self) {
        for state in &mut self.state {
            *state = CtxState::default();
        }
    }
}

// --- AND ------------------------------------------------------------------

fn on_and(
    state: &mut CtxState,
    role: u8,
    occ: &Arc<Occurrence>,
    ctx: ParamContext,
) -> Vec<Emission> {
    let other = 1 - role as usize;
    let role = role as usize;
    match ctx {
        ParamContext::Recent => {
            let buf = state.buf(role, 2);
            buf.clear();
            buf.push_back(occ.clone());
            state.bufs[other]
                .back()
                .map(|o| vec![Emission::of(vec![o.clone(), occ.clone()])])
                .unwrap_or_default()
        }
        ParamContext::Chronicle => {
            state.buf(role, 2).push_back(occ.clone());
            let mut out = Vec::new();
            while !state.bufs[0].is_empty() && !state.bufs[1].is_empty() {
                if let (Some(l), Some(r)) = (state.bufs[0].pop_front(), state.bufs[1].pop_front()) {
                    out.push(Emission::of(vec![l, r]));
                }
            }
            out
        }
        ParamContext::Continuous => {
            state.buf(role, 2);
            if state.bufs[other].is_empty() {
                state.bufs[role].push_back(occ.clone());
                Vec::new()
            } else {
                let partners: Vec<_> = state.bufs[other].drain(..).collect();
                partners.into_iter().map(|p| Emission::of(vec![p, occ.clone()])).collect()
            }
        }
        ParamContext::Cumulative => {
            state.buf(role, 2).push_back(occ.clone());
            if !state.bufs[0].is_empty() && !state.bufs[1].is_empty() {
                let mut cons: Vec<_> = state.bufs[0].drain(..).collect();
                cons.extend(state.bufs[1].drain(..));
                vec![Emission::of(cons)]
            } else {
                Vec::new()
            }
        }
    }
}

// --- SEQ ------------------------------------------------------------------

fn on_seq(
    state: &mut CtxState,
    role: u8,
    occ: &Arc<Occurrence>,
    ctx: ParamContext,
) -> Vec<Emission> {
    match (role, ctx) {
        (0, ParamContext::Recent) => {
            let buf = state.buf(0, 2);
            buf.clear();
            buf.push_back(occ.clone());
            Vec::new()
        }
        (0, _) => {
            state.buf(0, 2).push_back(occ.clone());
            Vec::new()
        }
        (1, ParamContext::Recent) => state
            .buf(0, 2)
            .back()
            .filter(|l| l.at < occ.at)
            .map(|l| vec![Emission::of(vec![l.clone(), occ.clone()])])
            .unwrap_or_default(),
        (1, ParamContext::Chronicle) => {
            // Oldest initiator strictly before the terminator.
            let buf = state.buf(0, 2);
            match buf.front() {
                Some(l) if l.at < occ.at => {
                    let l = buf.pop_front().expect("front() was Some");
                    vec![Emission::of(vec![l, occ.clone()])]
                }
                _ => Vec::new(),
            }
        }
        (1, ParamContext::Continuous) => {
            let buf = state.buf(0, 2);
            let lefts: Vec<_> = buf.iter().filter(|l| l.at < occ.at).cloned().collect();
            buf.retain(|l| l.at >= occ.at);
            lefts.into_iter().map(|l| Emission::of(vec![l, occ.clone()])).collect()
        }
        (1, ParamContext::Cumulative) => {
            let buf = state.buf(0, 2);
            if buf.iter().any(|l| l.at < occ.at) {
                let mut cons: Vec<_> = buf.iter().filter(|l| l.at < occ.at).cloned().collect();
                buf.retain(|l| l.at >= occ.at);
                cons.push(occ.clone());
                vec![Emission::of(cons)]
            } else {
                Vec::new()
            }
        }
        _ => Vec::new(),
    }
}

// --- ANY ------------------------------------------------------------------

fn on_any(
    state: &mut CtxState,
    role: u8,
    occ: &Arc<Occurrence>,
    ctx: ParamContext,
    m: usize,
    n: usize,
) -> Vec<Emission> {
    let role = role as usize;
    match ctx {
        ParamContext::Recent => {
            let buf = state.buf(role, n);
            buf.clear();
            buf.push_back(occ.clone());
            let distinct = state.bufs.iter().filter(|b| !b.is_empty()).count();
            if distinct >= m {
                // The arriving occurrence + the (m-1) most recent others.
                let mut others: Vec<Arc<Occurrence>> = state
                    .bufs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != role)
                    .filter_map(|(_, b)| b.back().cloned())
                    .collect();
                others.sort_by_key(|o| std::cmp::Reverse(o.at));
                others.truncate(m - 1);
                let mut cons = others;
                cons.push(occ.clone());
                vec![Emission::of(cons)]
            } else {
                Vec::new()
            }
        }
        ParamContext::Chronicle | ParamContext::Continuous => {
            state.buf(role, n).push_back(occ.clone());
            let distinct = state.bufs.iter().filter(|b| !b.is_empty()).count();
            if distinct >= m {
                // Consume the m oldest heads among distinct types.
                let mut heads: Vec<usize> = (0..n).filter(|i| !state.bufs[*i].is_empty()).collect();
                heads.sort_by_key(|i| state.bufs[*i].front().map(|o| o.at));
                heads.truncate(m);
                let cons: Vec<_> =
                    heads.into_iter().filter_map(|i| state.bufs[i].pop_front()).collect();
                vec![Emission::of(cons)]
            } else {
                Vec::new()
            }
        }
        ParamContext::Cumulative => {
            state.buf(role, n).push_back(occ.clone());
            let distinct = state.bufs.iter().filter(|b| !b.is_empty()).count();
            if distinct >= m {
                let mut cons = Vec::new();
                for b in &mut state.bufs {
                    cons.extend(b.drain(..));
                }
                vec![Emission::of(cons)]
            } else {
                Vec::new()
            }
        }
    }
}

// --- NOT ------------------------------------------------------------------

fn on_not(
    state: &mut CtxState,
    role: u8,
    occ: &Arc<Occurrence>,
    ctx: ParamContext,
) -> Vec<Emission> {
    match role {
        0 => {
            // start: open a window.
            if ctx == ParamContext::Recent {
                state.windows.clear();
            }
            state.windows.push_back(Window { start: Some(occ.clone()), ..Window::default() });
            Vec::new()
        }
        1 => {
            // inner: poison — open windows can never complete.
            state.last_inner = Some(occ.at);
            state.windows.clear();
            Vec::new()
        }
        2 => {
            // end: fire unpoisoned windows whose start precedes it.
            let fires: Vec<Window> = match ctx {
                ParamContext::Recent => state
                    .windows
                    .back()
                    .filter(|w| w.start.as_ref().is_some_and(|s| s.at < occ.at))
                    .cloned()
                    .into_iter()
                    .collect(), // window retained: recent does not consume
                ParamContext::Chronicle => state
                    .windows
                    .front()
                    .filter(|w| w.start.as_ref().is_some_and(|s| s.at < occ.at))
                    .cloned()
                    .into_iter()
                    .collect::<Vec<_>>()
                    .tap(|fired| {
                        if !fired.is_empty() {
                            state.windows.pop_front();
                        }
                    }),
                ParamContext::Continuous | ParamContext::Cumulative => {
                    let all: Vec<Window> = state
                        .windows
                        .iter()
                        .filter(|w| w.start.as_ref().is_some_and(|s| s.at < occ.at))
                        .cloned()
                        .collect();
                    state.windows.retain(|w| !w.start.as_ref().is_some_and(|s| s.at < occ.at));
                    all
                }
            };
            if fires.is_empty() {
                return Vec::new();
            }
            match ctx {
                ParamContext::Cumulative => {
                    let mut cons: Vec<Arc<Occurrence>> =
                        fires.into_iter().filter_map(|w| w.start).collect();
                    cons.push(occ.clone());
                    vec![Emission::of(cons)]
                }
                _ => fires
                    .into_iter()
                    .filter_map(|w| w.start)
                    .map(|s| Emission::of(vec![s, occ.clone()]))
                    .collect(),
            }
        }
        _ => Vec::new(),
    }
}

/// Tiny tap helper (keeps the chronicle branch above readable).
trait Tap: Sized {
    fn tap(self, f: impl FnOnce(&Self)) -> Self {
        f(&self);
        self
    }
}
impl<T> Tap for T {}

// --- A --------------------------------------------------------------------

fn on_aperiodic(
    state: &mut CtxState,
    role: u8,
    occ: &Arc<Occurrence>,
    ctx: ParamContext,
) -> Vec<Emission> {
    match role {
        0 => {
            if ctx == ParamContext::Recent || ctx == ParamContext::Cumulative {
                // One (most recent / merged) window.
                state.windows.clear();
            }
            state.windows.push_back(Window { start: Some(occ.clone()), ..Window::default() });
            Vec::new()
        }
        1 => match ctx {
            ParamContext::Recent | ParamContext::Chronicle => state
                .windows
                .front()
                .and_then(|w| w.start.clone())
                .map(|s| vec![Emission::of(vec![s, occ.clone()])])
                .unwrap_or_default(),
            ParamContext::Continuous => state
                .windows
                .iter()
                .filter_map(|w| w.start.clone())
                .map(|s| Emission::of(vec![s, occ.clone()]))
                .collect(),
            ParamContext::Cumulative => {
                if let Some(w) = state.windows.front_mut() {
                    w.mids.push(occ.clone());
                    let mut cons = vec![w.start.clone().expect("A window has a start")];
                    cons.extend(w.mids.iter().cloned());
                    vec![Emission::of(cons)]
                } else {
                    Vec::new()
                }
            }
        },
        2 => {
            // end closes windows; A emits nothing at close.
            match ctx {
                ParamContext::Chronicle => {
                    state.windows.pop_front();
                }
                _ => state.windows.clear(),
            }
            Vec::new()
        }
        _ => Vec::new(),
    }
}

// --- A* -------------------------------------------------------------------

fn on_aperiodic_star(
    state: &mut CtxState,
    role: u8,
    occ: &Arc<Occurrence>,
    ctx: ParamContext,
) -> Vec<Emission> {
    match role {
        0 => {
            if ctx == ParamContext::Recent || ctx == ParamContext::Cumulative {
                state.windows.clear();
            }
            state.windows.push_back(Window { start: Some(occ.clone()), ..Window::default() });
            Vec::new()
        }
        1 => {
            match ctx {
                ParamContext::Continuous => {
                    for w in state.windows.iter_mut() {
                        w.mids.push(occ.clone());
                    }
                }
                _ => {
                    if let Some(w) = state.windows.front_mut() {
                        w.mids.push(occ.clone());
                    }
                }
            }
            Vec::new()
        }
        2 => {
            let closing: Vec<Window> = match ctx {
                ParamContext::Chronicle => state.windows.pop_front().into_iter().collect(),
                _ => state.windows.drain(..).collect(),
            };
            let mut out = Vec::new();
            match ctx {
                ParamContext::Cumulative => {
                    let mut cons: Vec<Arc<Occurrence>> = Vec::new();
                    for w in closing {
                        if w.mids.is_empty() {
                            continue;
                        }
                        if let Some(s) = w.start {
                            cons.push(s);
                        }
                        cons.extend(w.mids);
                    }
                    if !cons.is_empty() {
                        cons.push(occ.clone());
                        out.push(Emission::of(cons));
                    }
                }
                _ => {
                    for w in closing {
                        if w.mids.is_empty() {
                            continue; // A* fires only if ≥1 mid accumulated
                        }
                        let mut cons = Vec::with_capacity(w.mids.len() + 2);
                        if let Some(s) = w.start {
                            cons.push(s);
                        }
                        cons.extend(w.mids);
                        cons.push(occ.clone());
                        out.push(Emission::of(cons));
                    }
                }
            }
            out
        }
        _ => Vec::new(),
    }
}

// --- P / P* ---------------------------------------------------------------

fn on_periodic(
    state: &mut CtxState,
    role: u8,
    occ: &Arc<Occurrence>,
    ctx: ParamContext,
    period: u64,
    star: bool,
) -> Vec<Emission> {
    match role {
        0 => {
            if ctx == ParamContext::Recent || ctx == ParamContext::Cumulative {
                state.windows.clear();
            }
            state.windows.push_back(Window {
                start: Some(occ.clone()),
                next_due: Some(occ.at + period),
                ..Window::default()
            });
            Vec::new()
        }
        2 => {
            let closing: Vec<Window> = match ctx {
                ParamContext::Chronicle => state.windows.pop_front().into_iter().collect(),
                _ => state.windows.drain(..).collect(),
            };
            if !star {
                return Vec::new(); // P emits per tick, nothing at close.
            }
            let mut out = Vec::new();
            for w in closing {
                if w.ticks.is_empty() {
                    continue;
                }
                let mut cons = Vec::new();
                if let Some(s) = w.start {
                    cons.push(s);
                }
                cons.push(occ.clone());
                let params: Vec<(Arc<str>, Value)> =
                    w.ticks.iter().map(|t| (Arc::from("tick"), Value::Int(*t as i64))).collect();
                out.push(Emission { constituents: cons, params, at: None });
            }
            out
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    //! Operator-level unit tests drive `on_child` directly through a tiny
    //! harness; full-pipeline tests live in `detector.rs` and `/tests`.

    use super::*;
    use crate::graph::{EventGraph, PrimTarget};
    use sentinel_snoop::ast::EventModifier;
    use sentinel_snoop::parse_event_expr;

    struct Harness {
        g: EventGraph,
        node: crate::graph::EventId,
        seq: Timestamp,
    }

    impl Harness {
        fn new(expr: &str, ctx: ParamContext) -> Harness {
            let mut g = EventGraph::new();
            for name in ["s", "m", "t", "a", "b", "c"] {
                g.declare_primitive(
                    name,
                    "C",
                    EventModifier::End,
                    "void f()",
                    PrimTarget::AnyInstance,
                )
                .unwrap();
            }
            let e = parse_event_expr(expr).unwrap();
            let node = g.build_expr(&e, false).unwrap();
            g.subscribe(node, ctx, 1).unwrap();
            Harness { g, node, seq: 0 }
        }

        fn occ_in(&mut self, name: &str, txn: u64) -> Arc<Occurrence> {
            self.seq += 1;
            let id = self.g.lookup(name).unwrap();
            Occurrence::primitive(id, Arc::from(name), self.seq, Some(txn), 0, None, Vec::new())
        }

        /// Sends `name` to the node under test in the role it occupies.
        fn send(&mut self, name: &str, ctx: ParamContext) -> Vec<Vec<Timestamp>> {
            self.send_txn(name, ctx, 1)
        }

        /// [`Self::send`] with an explicit transaction id.
        fn send_txn(&mut self, name: &str, ctx: ParamContext, txn: u64) -> Vec<Vec<Timestamp>> {
            let occ = self.occ_in(name, txn);
            let child = self.g.lookup(name).unwrap();
            let roles: Vec<u8> = self
                .g
                .node(self.node)
                .kind
                .children()
                .into_iter()
                .filter(|(c, _)| *c == child)
                .map(|(_, r)| r)
                .collect();
            let mut out = Vec::new();
            for role in roles {
                for em in self.g.node_mut(self.node).on_child(role, &occ, ctx) {
                    let mut ts: Vec<_> = em.constituents.iter().map(|o| o.at).collect();
                    ts.sort_unstable();
                    out.push(ts);
                }
            }
            out
        }
    }

    #[test]
    fn and_recent_reuses_latest() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("a ^ b", ctx);
        assert!(h.send("a", ctx).is_empty()); // a@1
        assert_eq!(h.send("b", ctx), vec![vec![1, 2]]);
        // Another b pairs with the same (most recent) a.
        assert_eq!(h.send("b", ctx), vec![vec![1, 3]]);
        // New a overwrites; next b pairs with it.
        assert_eq!(h.send("a", ctx), vec![vec![3, 4]]); // pairs with latest b@3
        assert_eq!(h.send("b", ctx), vec![vec![4, 5]]);
    }

    #[test]
    fn and_chronicle_pairs_fifo_and_consumes() {
        let ctx = ParamContext::Chronicle;
        let mut h = Harness::new("a ^ b", ctx);
        h.send("a", ctx); // a@1
        h.send("a", ctx); // a@2
        assert_eq!(h.send("b", ctx), vec![vec![1, 3]]); // oldest a first
        assert_eq!(h.send("b", ctx), vec![vec![2, 4]]);
        assert!(h.send("b", ctx).is_empty(), "all initiators consumed");
    }

    #[test]
    fn and_continuous_terminator_fires_all_open() {
        let ctx = ParamContext::Continuous;
        let mut h = Harness::new("a ^ b", ctx);
        h.send("a", ctx); // a@1
        h.send("a", ctx); // a@2
        let fired = h.send("b", ctx); // b@3 pairs with both
        assert_eq!(fired, vec![vec![1, 3], vec![2, 3]]);
        assert!(h.send("b", ctx).is_empty(), "initiators consumed");
    }

    #[test]
    fn and_cumulative_takes_everything_once() {
        let ctx = ParamContext::Cumulative;
        let mut h = Harness::new("a ^ b", ctx);
        h.send("a", ctx);
        h.send("a", ctx);
        let fired = h.send("b", ctx);
        assert_eq!(fired, vec![vec![1, 2, 3]]);
        assert!(h.send("b", ctx).is_empty());
    }

    #[test]
    fn seq_requires_strict_order() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("a ; b", ctx);
        assert!(h.send("b", ctx).is_empty(), "terminator before initiator");
        h.send("a", ctx);
        assert_eq!(h.send("b", ctx), vec![vec![2, 3]]);
    }

    #[test]
    fn seq_chronicle_consumes_oldest() {
        let ctx = ParamContext::Chronicle;
        let mut h = Harness::new("a ; b", ctx);
        h.send("a", ctx); // 1
        h.send("a", ctx); // 2
        assert_eq!(h.send("b", ctx), vec![vec![1, 3]]);
        assert_eq!(h.send("b", ctx), vec![vec![2, 4]]);
        assert!(h.send("b", ctx).is_empty());
    }

    #[test]
    fn seq_continuous_and_cumulative() {
        let ctx = ParamContext::Continuous;
        let mut h = Harness::new("a ; b", ctx);
        h.send("a", ctx);
        h.send("a", ctx);
        assert_eq!(h.send("b", ctx), vec![vec![1, 3], vec![2, 3]]);

        let ctx = ParamContext::Cumulative;
        let mut h = Harness::new("a ; b", ctx);
        h.send("a", ctx);
        h.send("a", ctx);
        assert_eq!(h.send("b", ctx), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn or_fires_for_each_side_in_every_context() {
        for ctx in ParamContext::ALL {
            let mut h = Harness::new("a | b", ctx);
            assert_eq!(h.send("a", ctx), vec![vec![1]]);
            assert_eq!(h.send("b", ctx), vec![vec![2]]);
        }
    }

    #[test]
    fn any_two_of_three() {
        let ctx = ParamContext::Chronicle;
        let mut h = Harness::new("ANY(2, a, b, c)", ctx);
        assert!(h.send("a", ctx).is_empty());
        assert!(h.send("a", ctx).is_empty(), "same type doesn't count twice");
        assert_eq!(h.send("c", ctx), vec![vec![1, 3]]);
        // a@2 still buffered; b completes the next pair.
        assert_eq!(h.send("b", ctx), vec![vec![2, 4]]);
    }

    #[test]
    fn any_recent_reemits_nonconsuming() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("ANY(2, a, b, c)", ctx);
        h.send("a", ctx);
        assert_eq!(h.send("b", ctx), vec![vec![1, 2]]);
        assert_eq!(h.send("c", ctx), vec![vec![2, 3]], "pairs with most recent distinct");
    }

    #[test]
    fn any_cumulative_drains_all() {
        let ctx = ParamContext::Cumulative;
        let mut h = Harness::new("ANY(2, a, b, c)", ctx);
        h.send("a", ctx);
        h.send("a", ctx);
        assert_eq!(h.send("b", ctx), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn not_fires_without_inner() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("NOT(m)[s, t]", ctx);
        h.send("s", ctx);
        assert_eq!(h.send("t", ctx), vec![vec![1, 2]]);
        // Recent keeps the window: another t fires again.
        assert_eq!(h.send("t", ctx), vec![vec![1, 3]]);
    }

    #[test]
    fn not_poisoned_by_inner() {
        for ctx in ParamContext::ALL {
            let mut h = Harness::new("NOT(m)[s, t]", ctx);
            h.send("s", ctx);
            h.send("m", ctx); // poison
            assert!(h.send("t", ctx).is_empty(), "ctx {ctx}: inner occurred");
        }
    }

    #[test]
    fn not_continuous_fires_all_windows() {
        let ctx = ParamContext::Continuous;
        let mut h = Harness::new("NOT(m)[s, t]", ctx);
        h.send("s", ctx);
        h.send("s", ctx);
        assert_eq!(h.send("t", ctx), vec![vec![1, 3], vec![2, 3]]);
        assert!(h.send("t", ctx).is_empty(), "windows consumed");
    }

    #[test]
    fn aperiodic_fires_per_mid_within_window() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("A(s, m, t)", ctx);
        assert!(h.send("m", ctx).is_empty(), "no window yet");
        h.send("s", ctx);
        assert_eq!(h.send("m", ctx), vec![vec![2, 3]]);
        assert_eq!(h.send("m", ctx), vec![vec![2, 4]]);
        h.send("t", ctx); // closes
        assert!(h.send("m", ctx).is_empty(), "window closed");
    }

    #[test]
    fn aperiodic_star_accumulates_until_end() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("A*(s, m, t)", ctx);
        h.send("s", ctx); // 1
        assert!(h.send("m", ctx).is_empty()); // 2
        assert!(h.send("m", ctx).is_empty()); // 3
        assert_eq!(h.send("t", ctx), vec![vec![1, 2, 3, 4]]);
        // Fires exactly once per window: a second t is silent.
        assert!(h.send("t", ctx).is_empty());
    }

    #[test]
    fn aperiodic_star_without_mids_is_silent() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("A*(s, m, t)", ctx);
        h.send("s", ctx);
        assert!(h.send("t", ctx).is_empty(), "zero mids: no detection");
    }

    #[test]
    fn aperiodic_star_continuous_multiple_windows() {
        let ctx = ParamContext::Continuous;
        let mut h = Harness::new("A*(s, m, t)", ctx);
        h.send("s", ctx); // 1
        h.send("m", ctx); // 2 -> window 1
        h.send("s", ctx); // 3
        h.send("m", ctx); // 4 -> windows 1 and 2
        let fired = h.send("t", ctx); // 5
        assert_eq!(fired, vec![vec![1, 2, 4, 5], vec![3, 4, 5]]);
    }

    #[test]
    fn plus_alarm_fires_at_due_time() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("PLUS(a, 10)", ctx);
        h.send("a", ctx); // at=1, due=11
        let due = h.g.node(h.node).earliest_due();
        assert_eq!(due, Some(11));
        let ems = h.g.node_mut(h.node).fire_alarms(10, ctx);
        assert!(ems.is_empty(), "not due yet");
        let ems = h.g.node_mut(h.node).fire_alarms(11, ctx);
        assert_eq!(ems.len(), 1);
        assert_eq!(ems[0].at, Some(11));
        assert_eq!(h.g.node(h.node).earliest_due(), None);
    }

    #[test]
    fn periodic_ticks_between_start_and_end() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("P(s, 5, t)", ctx);
        h.send("s", ctx); // at=1 -> due 6, 11, 16…
        let ems = h.g.node_mut(h.node).fire_alarms(13, ctx);
        let ticks: Vec<_> = ems.iter().map(|e| e.at.unwrap()).collect();
        assert_eq!(ticks, vec![6, 11]);
        h.send("t", ctx); // close
        assert!(h.g.node_mut(h.node).fire_alarms(100, ctx).is_empty());
    }

    #[test]
    fn periodic_star_reports_ticks_at_end() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("P*(s, 5, t)", ctx);
        h.send("s", ctx);
        assert!(h.g.node_mut(h.node).fire_alarms(13, ctx).is_empty());
        let fired = h.send("t", ctx);
        assert_eq!(fired.len(), 1, "one emission with accumulated ticks");
    }

    #[test]
    fn not_chronicle_consumes_oldest_window() {
        let ctx = ParamContext::Chronicle;
        let mut h = Harness::new("NOT(m)[s, t]", ctx);
        h.send("s", ctx); // window 1
        h.send("s", ctx); // window 2
        assert_eq!(h.send("t", ctx), vec![vec![1, 3]], "oldest window fires");
        assert_eq!(h.send("t", ctx), vec![vec![2, 4]], "then the next");
        assert!(h.send("t", ctx).is_empty(), "all consumed");
    }

    #[test]
    fn not_cumulative_merges_all_windows() {
        let ctx = ParamContext::Cumulative;
        let mut h = Harness::new("NOT(m)[s, t]", ctx);
        h.send("s", ctx);
        h.send("s", ctx);
        assert_eq!(h.send("t", ctx), vec![vec![1, 2, 3]], "one emission, all starts");
    }

    #[test]
    fn aperiodic_chronicle_pairs_with_oldest_window() {
        let ctx = ParamContext::Chronicle;
        let mut h = Harness::new("A(s, m, t)", ctx);
        h.send("s", ctx); // w1@1
        h.send("s", ctx); // w2@2
        assert_eq!(h.send("m", ctx), vec![vec![1, 3]], "oldest window's start");
        h.send("t", ctx); // closes oldest (w1)
        assert_eq!(h.send("m", ctx), vec![vec![2, 5]], "now w2 is oldest");
        h.send("t", ctx); // closes w2
        assert!(h.send("m", ctx).is_empty());
    }

    #[test]
    fn aperiodic_continuous_fires_per_open_window() {
        let ctx = ParamContext::Continuous;
        let mut h = Harness::new("A(s, m, t)", ctx);
        h.send("s", ctx); // 1
        h.send("s", ctx); // 2
        assert_eq!(h.send("m", ctx), vec![vec![1, 3], vec![2, 3]]);
        h.send("t", ctx); // closes all
        assert!(h.send("m", ctx).is_empty());
    }

    #[test]
    fn aperiodic_recent_new_start_replaces_window() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("A(s, m, t)", ctx);
        h.send("s", ctx); // 1
        h.send("s", ctx); // 2 replaces
        assert_eq!(h.send("m", ctx), vec![vec![2, 3]], "most recent start");
    }

    #[test]
    fn aperiodic_star_chronicle_closes_oldest_only() {
        let ctx = ParamContext::Chronicle;
        let mut h = Harness::new("A*(s, m, t)", ctx);
        h.send("s", ctx); // w1@1
        h.send("m", ctx); // 2 -> w1 (front window)
        h.send("s", ctx); // w2@3
        let fired = h.send("t", ctx); // 4: closes w1
        assert_eq!(fired, vec![vec![1, 2, 4]]);
        // w2 has no mids: its close is silent.
        assert!(h.send("t", ctx).is_empty());
    }

    #[test]
    fn any_continuous_consumes_like_chronicle() {
        // Documented simplification: continuous ANY == chronicle ANY.
        let ctx = ParamContext::Continuous;
        let mut h = Harness::new("ANY(2, a, b, c)", ctx);
        h.send("a", ctx);
        assert_eq!(h.send("b", ctx), vec![vec![1, 2]]);
        assert!(h.send("b", ctx).is_empty(), "a was consumed");
    }

    #[test]
    fn periodic_chronicle_windows_close_fifo() {
        let ctx = ParamContext::Chronicle;
        let mut h = Harness::new("P(s, 5, t)", ctx);
        h.send("s", ctx); // w1@1: ticks 6, 11…
        h.send("s", ctx); // w2@2: ticks 7, 12…
        let ems = h.g.node_mut(h.node).fire_alarms(8, ctx);
        let ticks: Vec<_> = ems.iter().map(|e| e.at.unwrap()).collect();
        assert_eq!(ticks, vec![6, 7], "both windows tick");
        h.send("t", ctx); // closes w1 only
        let ems = h.g.node_mut(h.node).fire_alarms(13, ctx);
        let ticks: Vec<_> = ems.iter().map(|e| e.at.unwrap()).collect();
        assert_eq!(ticks, vec![12], "only w2 remains");
    }

    #[test]
    fn plus_multiple_pending_fire_in_due_order() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("PLUS(a, 10)", ctx);
        h.send("a", ctx); // @1 due 11
        h.send("a", ctx); // @2 due 12
        let ems = h.g.node_mut(h.node).fire_alarms(20, ctx);
        let due: Vec<_> = ems.iter().map(|e| e.at.unwrap()).collect();
        assert_eq!(due, vec![11, 12]);
    }

    #[test]
    fn dual_role_seq_recent_is_overlapping() {
        let ctx = ParamContext::Recent;
        let mut h = Harness::new("a ; a", ctx);
        let child = h.g.lookup("a").unwrap();
        let _ = child;
        // Dual-role goes through on_child_dual.
        let send_dual = |h: &mut Harness| {
            h.seq += 1;
            let occ = Occurrence::primitive(
                h.g.lookup("a").unwrap(),
                Arc::from("a"),
                h.seq,
                Some(1),
                0,
                None,
                Vec::new(),
            );
            h.g.node_mut(h.node)
                .on_child_dual(&occ, ctx)
                .into_iter()
                .map(|em| {
                    let mut ts: Vec<_> = em.constituents.iter().map(|o| o.at).collect();
                    ts.sort_unstable();
                    ts
                })
                .collect::<Vec<_>>()
        };
        assert!(send_dual(&mut h).is_empty());
        assert_eq!(send_dual(&mut h), vec![vec![1, 2]]);
        assert_eq!(send_dual(&mut h), vec![vec![2, 3]], "recent: overlapping pairs");
    }

    #[test]
    fn dual_role_chronicle_is_non_overlapping() {
        let ctx = ParamContext::Chronicle;
        let mut h = Harness::new("a ^ a", ctx);
        let send_dual = |h: &mut Harness| {
            h.seq += 1;
            let occ = Occurrence::primitive(
                h.g.lookup("a").unwrap(),
                Arc::from("a"),
                h.seq,
                Some(1),
                0,
                None,
                Vec::new(),
            );
            h.g.node_mut(h.node)
                .on_child_dual(&occ, ctx)
                .into_iter()
                .map(|em| em.constituents.len())
                .collect::<Vec<_>>()
        };
        assert!(send_dual(&mut h).is_empty()); // 1 buffered
        assert_eq!(send_dual(&mut h), vec![2]); // (1,2)
        assert!(send_dual(&mut h).is_empty()); // 3 buffered
        assert_eq!(send_dual(&mut h), vec![2]); // (3,4)
    }

    #[test]
    fn flush_txn_clears_buffers_and_windows() {
        let ctx = ParamContext::Chronicle;
        let mut h = Harness::new("a ; b", ctx);
        h.send("a", ctx); // txn 1 buffered
        h.g.node_mut(h.node).flush_txn(1);
        assert!(h.send("b", ctx).is_empty(), "initiator flushed with its txn");
    }

    /// A half-open A* window whose *initiator* belongs to the flushed
    /// transaction is dropped whole, even when its mids belong to other
    /// (still live) transactions — mids are meaningless without the
    /// occurrence that opened the window.
    #[test]
    fn flush_txn_drops_window_when_initiator_aborts() {
        let ctx = ParamContext::Chronicle;
        let mut h = Harness::new("A*(s, m, t)", ctx);
        h.send_txn("s", ctx, 1); // window opened by txn 1
        h.send_txn("m", ctx, 2); // mid from txn 2
        let removed = h.g.node_mut(h.node).flush_txn(1);
        assert_eq!(removed, 2, "initiator + the mid stranded with it");
        assert!(
            h.send_txn("t", ctx, 2).is_empty(),
            "no window may close after its initiator's transaction aborted"
        );
    }

    /// The converse: a window whose initiator survives the flush keeps
    /// detecting, losing only the mids of the flushed transaction.
    #[test]
    fn flush_txn_keeps_window_but_strips_aborted_mids() {
        let ctx = ParamContext::Chronicle;
        let mut h = Harness::new("A*(s, m, t)", ctx);
        h.send_txn("s", ctx, 2); // window owned by txn 2        (at=1)
        h.send_txn("m", ctx, 1); // mid from txn 1, to be flushed (at=2)
        h.send_txn("m", ctx, 2); // mid from txn 2               (at=3)
        let removed = h.g.node_mut(h.node).flush_txn(1);
        assert_eq!(removed, 1, "only the aborted mid");
        let fired = h.send_txn("t", ctx, 2); // terminator        (at=4)
        assert_eq!(fired, vec![vec![1, 3, 4]], "window closes without the flushed mid");
    }
}
