//! The local composite event detector.
//!
//! One instance exists per application ("the event detector is implemented
//! as a class and hence we have a single instance of this class per
//! application", §3.2). Primitive events are signalled by the wrapper
//! methods via [`LocalEventDetector::notify_method`] (the generated
//! `Notify(this, "STOCK", "void set_price(float price)", "begin", list)`
//! call of §3.2.1) or by [`LocalEventDetector::signal_explicit`] for
//! transaction/abstract events. Detection propagates through the event
//! graph demand-driven and returns [`Detection`]s for every `(event,
//! context)` with rule subscribers; rule execution itself lives in
//! `sentinel-rules`.
//!
//! # Sharded detection
//!
//! The event graph is partitioned into *shards*: the connected components
//! of the operator DAG (see [`EventGraph`]). Events in different shards
//! can never contribute to the same composite, so signals addressed to
//! different shards propagate concurrently, each under its own shard
//! *order lock*. Timestamps still come from the single atomic
//! [`LogicalClock`], and the order lock is held across the tick *and* the
//! propagation, so within a shard occurrences are processed in strictly
//! increasing timestamp order — the invariant the paper's order-sensitive
//! operators (SEQ's strict `initiator.at < terminator.at`, NOT, A*, P*)
//! depend on. Cross-shard timestamp order needs no serialization because
//! no operator ever compares occurrences from two shards.
//!
//! Whole-graph operations (snapshots, flushes, `advance_time`, stats)
//! *quiesce*: they acquire every shard's order lock (in ascending shard
//! order, so two quiescers cannot deadlock) and then observe or mutate a
//! globally consistent state. An attached [`EventSink`] (the durable
//! journal) observes each signal under only its shard's order lock —
//! durability composes with parallel detection. The sink learns the
//! shard label with every record, and every whole-graph operation cuts a
//! [`FenceKind`] fence through the sink under the quiesce, so a sharded
//! journal can reconstruct a replay order equivalent to the live
//! happened-before order (timestamps are the tiebreaker between fences).
//! Only batch recording ([`LocalEventDetector::start_recording`]) still
//! switches the detector to *serial mode* — every signal quiesces — so
//! the in-memory log stays a total order.
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock};

use sentinel_obs::span::{self, SpanContext, SpanHandle, TraceStore};
use sentinel_obs::{json, Counter, Field, TraceBus};
use sentinel_snoop::ast::{EventExpr, EventModifier};
use sentinel_snoop::ParamContext;

use crate::clock::{LogicalClock, Timestamp};
use crate::graph::{EventGraph, EventId, GraphError, PrimTarget};
use crate::log::LoggedEvent;
use crate::nodes::Emission;
use crate::occurrence::{Occurrence, Value};
use crate::snapshot::{GraphSnapshot, NodeSnapshot, RestoreError};

/// Opaque id of a rule (or other consumer) subscribed to an event; the
/// detector never interprets it.
pub type SubscriberId = u64;

thread_local! {
    /// Per-thread signalling suppression (see
    /// [`LocalEventDetector::set_signaling`]): true while a rule
    /// condition is evaluating on this thread.
    static SIGNALING_SUPPRESSED: Cell<bool> = const { Cell::new(false) };
}

/// A whole-graph ordering point cut through an [`EventSink`]: everything
/// recorded before the fence happened-before everything recorded after
/// it, across all shards. Cut by transaction flushes, time advances,
/// shard-topology DDL and checkpoint pauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceKind {
    /// `flush_txn(txn)` ran: the named transaction's buffered occurrences
    /// were dropped graph-wide.
    FlushTxn(u64),
    /// `advance_time(to)` ran: temporal alarms up to `to` fired.
    AdvanceTime(Timestamp),
    /// Any other whole-graph barrier (flush-all, DDL that changed the
    /// shard topology, a checkpoint pause). Carries no replay action of
    /// its own — it only orders the streams around it.
    Barrier,
}

/// Observer of every primitive event the detector accepts, invoked
/// synchronously on the signalling thread right after the event is
/// timestamped and before it propagates through the graph. The durable
/// event journal hooks in here.
///
/// `record` runs under only the signalling shard's order lock, so sinks
/// on disjoint shards are invoked concurrently. A sink may block (e.g.
/// waiting for a group commit) but must **not** re-enter the detector
/// from `record` — a whole-graph call would need every other shard's
/// lock and deadlock against concurrent recorders.
///
/// `fence` runs with **all shards quiesced** by the fencing thread; the
/// sink may re-enter the detector there (e.g.
/// [`LocalEventDetector::snapshot_state`]) — re-entrant calls reuse the
/// locks already held instead of deadlocking.
pub trait EventSink: Send + Sync {
    /// One primitive event was signalled on shard `shard`.
    fn record(&self, detector: &LocalEventDetector, shard: u32, ev: &LoggedEvent);

    /// A whole-graph ordering point. `ts` is the clock reading at the
    /// fence: every record before it has `ev.ts() <= ts`, every record
    /// after it (in happened-before order) ticks past it.
    fn fence(&self, _detector: &LocalEventDetector, _kind: FenceKind, _ts: Timestamp) {}
}

/// Short static name of a parameter context for trace fields.
fn ctx_name(ctx: ParamContext) -> &'static str {
    match ctx {
        ParamContext::Recent => "recent",
        ParamContext::Chronicle => "chronicle",
        ParamContext::Continuous => "continuous",
        ParamContext::Cumulative => "cumulative",
    }
}

/// One detected `(event, context)` occurrence, with the subscribers to
/// notify. The rule scheduler turns these into condition/action threads.
#[derive(Debug)]
pub struct Detection {
    /// The detected event.
    pub event: EventId,
    /// Context it was detected in.
    pub context: ParamContext,
    /// The occurrence (with its linked parameter list).
    pub occurrence: Arc<Occurrence>,
    /// Rule subscribers registered for `(event, context)`.
    pub subscribers: Vec<SubscriberId>,
}

/// Mutable per-shard detector state: the signal-order guard plus the
/// shard's alarm heap and occurrence counters, and its observability
/// counters. Indexed by shard label; labels merged away by DDL leave an
/// idle entry behind (labels are never recycled).
#[derive(Debug, Default)]
struct ShardState {
    /// Serializes timestamp draws with graph propagation for signals
    /// addressed to this shard. Without it, two concurrent signals can
    /// tick `t1 < t2` but propagate in the opposite order, and
    /// order-sensitive operators (SEQ's strict `initiator.at <
    /// terminator.at`) silently drop pairs.
    order: Mutex<()>,
    /// Min-heap of pending temporal alarms `(due, node)` for nodes of
    /// this shard.
    alarms: Mutex<BinaryHeap<Reverse<(Timestamp, EventId)>>>,
    /// Occurrence counters per event of this shard (primitive signals and
    /// composite detections alike).
    counts: Mutex<HashMap<EventId, u64>>,
    /// Primitive signals processed by this shard.
    signals: AtomicU64,
    /// Times a signal found this shard's order lock already held.
    contention: AtomicU64,
    /// Signals queued for this shard in a `DetectorPool` and not yet
    /// processed (maintained by the service layer).
    queue_depth: AtomicI64,
}

thread_local! {
    /// Set while this thread holds a full quiesce of some detector:
    /// `(detector address, &EventGraph)`. Re-entrant whole-graph calls on
    /// the same detector (an [`EventSink`] snapshotting from `record`, a
    /// [`LocalEventDetector::with_signals_paused`] closure) reuse the
    /// held locks through it instead of re-acquiring `graph.read()`
    /// (which can deadlock against a queued writer).
    static QUIESCED: Cell<Option<(usize, NonNull<()>)>> = const { Cell::new(None) };
}

/// The local composite event detector (one per application).
pub struct LocalEventDetector {
    /// The event graph. Signals hold a read lock (node interiors are
    /// individually locked, serialized per shard by the shard order
    /// lock); DDL takes the write lock.
    graph: RwLock<EventGraph>,
    /// Per-shard state, indexed by shard label. Grown/merged by DDL
    /// (under the graph write lock) via [`Self::sync_shards`].
    shards: RwLock<Vec<Arc<ShardState>>>,
    clock: Arc<LogicalClock>,
    app: u32,
    /// When true every signal quiesces all shards (batch recording on),
    /// so log order equals timestamp order.
    serial: AtomicBool,
    /// Primitive-event log for batch (after-the-fact) detection.
    log: Mutex<Option<Vec<LoggedEvent>>>,
    /// Optional synchronous observer of accepted primitive events (the
    /// durable event journal).
    sink: RwLock<Option<Arc<dyn EventSink>>>,
    /// Serializes sink/log attach and detach, so two administrators
    /// cannot interleave their drain-install/clear-refresh windows (a
    /// `take_log` must not clobber a concurrent `start_recording`'s
    /// serial flag).
    sink_admin: Mutex<()>,
    /// Total primitive signals processed.
    signals: AtomicU64,
    /// Transaction flushes performed ([`Self::flush_txn`] calls).
    flush_calls: Counter,
    /// Buffered occurrences dropped by transaction flushes.
    flushed: Counter,
    /// Optional structured trace bus (detections and flushes are emitted
    /// when a bus is attached and has subscribers).
    trace: RwLock<Option<Arc<TraceBus>>>,
    /// Optional provenance span store (spans are recorded while the store
    /// is attached and enabled).
    span_store: RwLock<Option<Arc<TraceStore>>>,
}

/// Per-node emission/consumption counters, one entry per parameter
/// context in `ParamContext::ALL` order (Recent, Chronicle, Continuous,
/// Cumulative).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Node display name.
    pub name: Arc<str>,
    /// Occurrences emitted by this node, per context.
    pub emitted: [u64; 4],
    /// Child occurrences consumed by this node, per context.
    pub consumed: [u64; 4],
}

impl NodeStats {
    /// Total emissions across contexts.
    pub fn total_emitted(&self) -> u64 {
        self.emitted.iter().sum()
    }

    /// Total consumptions across contexts.
    pub fn total_consumed(&self) -> u64 {
        self.consumed.iter().sum()
    }
}

/// Counters for one live shard (a connected component of the operator
/// DAG that still owns nodes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard label.
    pub shard: u32,
    /// Nodes currently labelled with this shard.
    pub nodes: u64,
    /// Primitive signals processed by this shard.
    pub signals: u64,
    /// Times a signal found the shard's order lock already held.
    pub contention: u64,
    /// Signals queued for this shard in a `DetectorPool` and not yet
    /// processed.
    pub queue_depth: u64,
}

/// Detector statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Total primitive-event signals processed (method + explicit).
    pub signals: u64,
    /// Per-event occurrence counts, `(name, count)`, sorted by descending
    /// count then name.
    pub per_event: Vec<(Arc<str>, u64)>,
    /// Per-node emission/consumption counters for operator nodes that saw
    /// any traffic, sorted by name.
    pub nodes: Vec<NodeStats>,
    /// Per-shard counters for shards that own at least one node, sorted
    /// by shard label.
    pub shards: Vec<ShardStats>,
    /// Transaction flushes performed.
    pub flush_calls: u64,
    /// Buffered occurrences dropped by transaction flushes.
    pub flushed_occurrences: u64,
}

impl DetectorStats {
    /// Renders as a JSON object (see [`sentinel_obs::json`]).
    pub fn to_json(&self) -> json::Value {
        json::Value::obj([
            ("signals", json::Value::UInt(self.signals)),
            (
                "per_event",
                json::Value::obj(
                    self.per_event
                        .iter()
                        .map(|(name, count)| (name.to_string(), json::Value::UInt(*count))),
                ),
            ),
            (
                "nodes",
                json::Value::Arr(
                    self.nodes
                        .iter()
                        .map(|n| {
                            json::Value::obj([
                                ("name", json::Value::str(n.name.as_ref())),
                                (
                                    "emitted",
                                    json::Value::Arr(
                                        n.emitted.iter().map(|&v| json::Value::UInt(v)).collect(),
                                    ),
                                ),
                                (
                                    "consumed",
                                    json::Value::Arr(
                                        n.consumed.iter().map(|&v| json::Value::UInt(v)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shards",
                json::Value::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            json::Value::obj([
                                ("shard", json::Value::UInt(s.shard as u64)),
                                ("nodes", json::Value::UInt(s.nodes)),
                                ("signals", json::Value::UInt(s.signals)),
                                ("contention", json::Value::UInt(s.contention)),
                                ("queue_depth", json::Value::UInt(s.queue_depth)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("flush_calls", json::Value::UInt(self.flush_calls)),
            ("flushed_occurrences", json::Value::UInt(self.flushed_occurrences)),
        ])
    }
}

impl LocalEventDetector {
    /// A detector for application `app` with its own clock.
    pub fn new(app: u32) -> Self {
        Self::with_clock(app, Arc::new(LogicalClock::new()))
    }

    /// A detector sharing an external logical clock (the engine clock).
    ///
    /// The four transaction events are pre-declared, mirroring Sentinel's
    /// reactive system class whose event interface makes `beginTransaction`
    /// / `commitTransaction` generate events (§3.2).
    pub fn with_clock(app: u32, clock: Arc<LogicalClock>) -> Self {
        let mut graph = EventGraph::new();
        for name in [
            "begin-transaction",
            "pre-commit-transaction",
            "commit-transaction",
            "abort-transaction",
        ] {
            graph.declare_explicit(name);
        }
        let shards =
            (0..graph.shard_count()).map(|_| Arc::new(ShardState::default())).collect::<Vec<_>>();
        graph.take_merges();
        LocalEventDetector {
            graph: RwLock::new(graph),
            shards: RwLock::new(shards),
            clock,
            app,
            serial: AtomicBool::new(false),
            log: Mutex::new(None),
            sink: RwLock::new(None),
            sink_admin: Mutex::new(()),
            signals: AtomicU64::new(0),
            flush_calls: Counter::new(),
            flushed: Counter::new(),
            trace: RwLock::new(None),
            span_store: RwLock::new(None),
        }
    }

    /// Attaches a structured trace bus; detections and transaction flushes
    /// are emitted onto it while it has subscribers.
    pub fn set_trace_bus(&self, bus: Arc<TraceBus>) {
        *self.trace.write() = Some(bus);
    }

    /// Attaches a provenance span store; signals, primitive occurrences
    /// and composite detections record spans while it is enabled.
    pub fn set_trace_store(&self, store: Arc<TraceStore>) {
        *self.span_store.write() = Some(store);
    }

    /// The attached span store, when it is enabled (the tracing hot-path
    /// check: one lock + one relaxed load).
    fn tracer(&self) -> Option<Arc<TraceStore>> {
        self.span_store.read().clone().filter(|s| s.is_enabled())
    }

    /// Opens the root "signal" span for one primitive signal. A signal
    /// raised while a span is current on this thread (a rule action
    /// re-signalling, a queued service request) joins that trace —
    /// the cascade link; otherwise it starts a fresh trace.
    fn open_signal_span(store: &TraceStore, name: Arc<str>) -> SpanHandle {
        let (trace, parent) = match span::current() {
            Some(cur) => (cur.trace, Some(cur.span)),
            None => (store.new_trace(), None),
        };
        store.start(trace, parent, "signal", name)
    }

    /// The application this detector serves.
    pub fn app(&self) -> u32 {
        self.app
    }

    /// The shared logical clock.
    pub fn clock(&self) -> &Arc<LogicalClock> {
        &self.clock
    }

    // --- shard plumbing ------------------------------------------------

    /// Draws the timestamp for one signal: pre-assigned (replay, pool
    /// delivery) timestamps advance the shared clock, live signals tick it.
    fn stamp(&self, at: Option<Timestamp>) -> Timestamp {
        match at {
            Some(ts) => {
                self.clock.advance_to(ts);
                ts
            }
            None => self.clock.tick(),
        }
    }

    /// Acquires one shard's order lock, counting contended acquisitions.
    fn lock_shard<'a>(&self, shard: &'a ShardState) -> MutexGuard<'a, ()> {
        if let Some(g) = shard.order.try_lock() {
            return g;
        }
        shard.contention.fetch_add(1, Ordering::Relaxed);
        shard.order.lock()
    }

    /// Grows the shard table to the graph's label count and applies any
    /// pending component merges (migrating alarm heaps and counters from
    /// the merged-away label to the surviving one). Must be called with
    /// the graph write lock held after any node-creating DDL, which also
    /// guarantees no signal is in flight.
    fn sync_shards(&self, graph: &mut EventGraph) {
        let count = graph.shard_count() as usize;
        let merges = graph.take_merges();
        if merges.is_empty() && self.shards.read().len() >= count {
            return;
        }
        let mut shards = self.shards.write();
        while shards.len() < count {
            shards.push(Arc::new(ShardState::default()));
        }
        let merged = !merges.is_empty();
        for (winner, loser) in merges {
            let (w, l) = (winner as usize, loser as usize);
            let moved: Vec<_> = shards[l].alarms.lock().drain().collect();
            shards[w].alarms.lock().extend(moved);
            let moved_counts: Vec<(EventId, u64)> = shards[l].counts.lock().drain().collect();
            {
                let mut wc = shards[w].counts.lock();
                for (id, n) in moved_counts {
                    *wc.entry(id).or_default() += n;
                }
            }
            let s = shards[l].signals.swap(0, Ordering::Relaxed);
            shards[w].signals.fetch_add(s, Ordering::Relaxed);
            let c = shards[l].contention.swap(0, Ordering::Relaxed);
            shards[w].contention.fetch_add(c, Ordering::Relaxed);
            let q = shards[l].queue_depth.swap(0, Ordering::Relaxed);
            shards[w].queue_depth.fetch_add(q, Ordering::Relaxed);
        }
        drop(shards);
        // The shard topology changed while the graph write lock excluded
        // every signal: cut a fence so a sharded journal orders records
        // across the relabelling. The fence runs under the write lock, so
        // (unlike quiesce-cut fences) the sink must not re-enter here —
        // the journal sink only appends.
        if merged {
            self.cut_fence(FenceKind::Barrier);
        }
    }

    /// Runs `f` with every shard quiesced: the graph read lock, the shard
    /// table and **all** shard order locks (ascending, so concurrent
    /// quiescers cannot deadlock) are held, so no signal can be
    /// timestamped or propagated concurrently and `f` observes a
    /// consistent global cut. Re-entrant on the same thread.
    fn quiesce<R>(&self, f: impl FnOnce(&EventGraph, &[Arc<ShardState>]) -> R) -> R {
        let me = self as *const Self as usize;
        if let Some((det, ptr)) = QUIESCED.with(|q| q.get()) {
            if det == me {
                // SAFETY: the enclosing quiesce on this thread published
                // this pointer while holding the graph read lock and all
                // shard order locks; they are still held below us on the
                // stack, so the graph reference is valid and stable.
                let graph = unsafe { ptr.cast::<EventGraph>().as_ref() };
                // A nested shard-table read cannot deadlock: writers take
                // the graph write lock first, which the enclosing quiesce
                // excludes.
                let shards = self.shards.read();
                return f(graph, &shards);
            }
        }
        let graph = self.graph.read();
        let shards = self.shards.read();
        let _order: Vec<MutexGuard<'_, ()>> = shards.iter().map(|s| self.lock_shard(s)).collect();
        struct Reset(Option<(usize, NonNull<()>)>);
        impl Drop for Reset {
            fn drop(&mut self) {
                QUIESCED.with(|q| q.set(self.0));
            }
        }
        let prev = QUIESCED.with(|q| q.replace(Some((me, NonNull::from(&*graph).cast()))));
        let _reset = Reset(prev);
        f(&graph, &shards)
    }

    /// Recomputes serial mode (batch recording on). Sinks no longer force
    /// serial mode — they are recorded per shard and ordered by fences.
    fn refresh_serial(&self) {
        let on = self.log.lock().is_some();
        self.serial.store(on, Ordering::SeqCst);
    }

    /// Every currently allocated shard label.
    fn all_labels(shards: &[Arc<ShardState>]) -> Vec<u32> {
        (0..shards.len() as u32).collect()
    }

    /// Forwards a whole-graph ordering point to the attached sink, if
    /// any. `flush_txn`/`advance_time` callers hold a full quiesce;
    /// [`Self::sync_shards`] calls with the graph write lock held (which
    /// equally excludes every signal).
    fn cut_fence(&self, kind: FenceKind) {
        let (label, arg) = match kind {
            FenceKind::Barrier => ("barrier", 0),
            FenceKind::FlushTxn(txn) => ("flush_txn", txn),
            FenceKind::AdvanceTime(to) => ("advance_time", to),
        };
        sentinel_obs::flight::global().record_static(
            sentinel_obs::flight::FlightKind::Fence,
            label,
            self.clock.peek(),
            arg,
        );
        // Clone the Arc out so the sink lock is not held across the call.
        let sink = self.sink.read().clone();
        if let Some(sink) = sink {
            sink.fence(self, kind, self.clock.peek());
        }
    }

    /// The shard an event belongs to. Unknown names are declared as
    /// explicit events on the fly so routing decisions made before the
    /// first signal stay stable.
    pub fn shard_of_event(&self, name: &str) -> u32 {
        {
            let graph = self.graph.read();
            if let Some(id) = graph.lookup(name) {
                return graph.shard_of(id);
            }
        }
        let mut graph = self.graph.write();
        let id = graph.declare_explicit(name);
        self.sync_shards(&mut graph);
        graph.shard_of(id)
    }

    /// The shard all method events of `class` belong to (all leaves of a
    /// class are kept in one shard so a method signal addresses exactly
    /// one shard), or `None` if the class has no events.
    pub fn shard_of_class(&self, class: &str) -> Option<u32> {
        let graph = self.graph.read();
        graph.class_events(class).first().map(|&id| graph.shard_of(id))
    }

    /// Number of shard labels ever allocated (merged-away labels stay
    /// idle; see [`ShardStats`] for live shards).
    pub fn shard_count(&self) -> u32 {
        self.graph.read().shard_count()
    }

    /// Adjusts a shard's queued-signal gauge (service-layer accounting).
    pub(crate) fn shard_queue_delta(&self, label: u32, delta: i64) {
        let shards = self.shards.read();
        if let Some(s) = shards.get(label as usize) {
            s.queue_depth.fetch_add(delta, Ordering::Relaxed);
        }
    }

    // --- event definition ---------------------------------------------

    /// Declares a method-event primitive.
    pub fn declare_primitive(
        &self,
        name: &str,
        class: &str,
        modifier: EventModifier,
        sig: &str,
        target: PrimTarget,
    ) -> Result<EventId, GraphError> {
        let mut graph = self.graph.write();
        let id = graph.declare_primitive(name, class, modifier, sig, target)?;
        self.sync_shards(&mut graph);
        Ok(id)
    }

    /// Declares an explicit (name-matched) event.
    pub fn declare_explicit(&self, name: &str) -> EventId {
        let mut graph = self.graph.write();
        let id = graph.declare_explicit(name);
        self.sync_shards(&mut graph);
        id
    }

    /// Defines a named composite event from an expression.
    pub fn define_named(&self, name: &str, expr: &EventExpr) -> Result<EventId, GraphError> {
        let mut graph = self.graph.write();
        let id = graph.define_named(name, expr, false)?;
        self.sync_shards(&mut graph);
        Ok(id)
    }

    /// Builds an anonymous composite event.
    pub fn define_expr(&self, expr: &EventExpr) -> Result<EventId, GraphError> {
        let mut graph = self.graph.write();
        let id = graph.build_expr(expr, false)?;
        self.sync_shards(&mut graph);
        Ok(id)
    }

    /// The deferred-coupling rewrite of §3.1: wraps `event` into
    /// `A*(begin-transaction, event, pre-commit-transaction)`, so a deferred
    /// rule becomes an immediate rule that fires exactly once per
    /// transaction at pre-commit, with the cumulative (net-effect)
    /// parameters of all triggerings.
    pub fn define_deferred(&self, event: EventId) -> EventId {
        let mut graph = self.graph.write();
        let begin = graph.declare_explicit("begin-transaction");
        let pre_commit = graph.declare_explicit("pre-commit-transaction");
        let inner_name = graph.name_of(event);
        let name = format!("A*(begin-transaction, {inner_name}, pre-commit-transaction)");
        let id = graph.compose(
            &name,
            crate::graph::NodeKind::AperiodicStar { start: begin, mid: event, end: pre_commit },
        );
        self.sync_shards(&mut graph);
        id
    }

    /// Looks up a named event.
    pub fn lookup(&self, name: &str) -> Option<EventId> {
        self.graph.read().lookup(name)
    }

    /// Adds an alias name for an existing event.
    pub fn alias(&self, name: &str, id: EventId) -> Result<(), GraphError> {
        self.graph.write().alias(name, id)
    }

    /// Name of an event.
    pub fn name_of(&self, id: EventId) -> Arc<str> {
        self.graph.read().name_of(id)
    }

    /// Number of graph nodes (ablation metric).
    pub fn graph_size(&self) -> usize {
        self.graph.read().len()
    }

    /// Renders the event graph as Graphviz DOT (see [`crate::viz`]).
    pub fn to_dot(&self) -> String {
        self.quiesce(|graph, _| crate::viz::to_dot(graph))
    }

    /// Snapshot of detector statistics (signals processed, occurrences per
    /// event, per-shard counters).
    pub fn stats(&self) -> DetectorStats {
        self.quiesce(|graph, shards| {
            let mut counts: HashMap<EventId, u64> = HashMap::new();
            for shard in shards {
                for (id, n) in shard.counts.lock().iter() {
                    *counts.entry(*id).or_default() += n;
                }
            }
            let mut per_event: Vec<(Arc<str>, u64)> =
                counts.iter().map(|(id, n)| (graph.name_of(*id), *n)).collect();
            per_event.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let mut nodes: Vec<NodeStats> = graph
                .node_ids()
                .map(|id| graph.node(id))
                .filter(|n| n.total_emitted() + n.total_consumed() > 0)
                .map(|n| NodeStats {
                    name: n.name.clone(),
                    emitted: n.emitted,
                    consumed: n.consumed,
                })
                .collect();
            nodes.sort_by(|a, b| a.name.cmp(&b.name));
            let mut nodes_per_label: HashMap<u32, u64> = HashMap::new();
            for &label in graph.shard_labels() {
                *nodes_per_label.entry(label).or_default() += 1;
            }
            let shard_stats: Vec<ShardStats> = shards
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    let label = i as u32;
                    let owned = *nodes_per_label.get(&label).unwrap_or(&0);
                    if owned == 0 {
                        return None;
                    }
                    Some(ShardStats {
                        shard: label,
                        nodes: owned,
                        signals: s.signals.load(Ordering::Relaxed),
                        contention: s.contention.load(Ordering::Relaxed),
                        queue_depth: s.queue_depth.load(Ordering::Relaxed).max(0) as u64,
                    })
                })
                .collect();
            DetectorStats {
                signals: self.signals.load(Ordering::Relaxed),
                per_event,
                nodes,
                shards: shard_stats,
                flush_calls: self.flush_calls.get(),
                flushed_occurrences: self.flushed.get(),
            }
        })
    }

    // --- subscriptions ---------------------------------------------------

    /// Subscribes `sub` to `(event, ctx)`; detection in `ctx` starts on the
    /// counter's 0→1 transition.
    pub fn subscribe(
        &self,
        event: EventId,
        ctx: ParamContext,
        sub: SubscriberId,
    ) -> Result<(), GraphError> {
        self.graph.write().subscribe(event, ctx, sub)
    }

    /// Removes a subscription; state for `ctx` is dropped when the counter
    /// returns to zero.
    pub fn unsubscribe(
        &self,
        event: EventId,
        ctx: ParamContext,
        sub: SubscriberId,
    ) -> Result<(), GraphError> {
        self.graph.write().unsubscribe(event, ctx, sub)
    }

    // --- signalling -------------------------------------------------------

    /// Enables/disables primitive-event signalling *on the calling
    /// thread* (disabled while a rule condition runs, since conditions
    /// must be side-effect free, §3.2.1).
    ///
    /// The paper's flag is global because its detector is single-threaded
    /// per application. Here many server threads signal one shared
    /// detector concurrently, and a condition only ever runs on the
    /// thread whose signal fired the rule — so the suppression is scoped
    /// to that thread. A process-wide flag would silently drop *other*
    /// connections' unrelated signals that happen to arrive while any
    /// condition is evaluating (whole batches vanish under load).
    pub fn set_signaling(&self, on: bool) {
        SIGNALING_SUPPRESSED.with(|s| s.set(!on));
    }

    /// Whether signalling is currently enabled on the calling thread.
    pub fn signaling(&self) -> bool {
        !SIGNALING_SUPPRESSED.with(Cell::get)
    }

    /// Wrapper-method notification: a method of `class` on object `oid` was
    /// invoked; `edge` says whether this is the before- or after-call.
    /// Returns all detections this signal completed.
    pub fn notify_method(
        &self,
        class: &str,
        sig: &str,
        edge: EventModifier,
        oid: u64,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
    ) -> Vec<Detection> {
        if !self.signaling() {
            return Vec::new();
        }
        self.signal_method(class, sig, edge, oid, params, txn, None, true)
    }

    /// Method signal with a pre-assigned timestamp (batch replay). Not
    /// forwarded to the log/sink — replaying a journal must not re-append
    /// to it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn notify_method_at(
        &self,
        class: &str,
        sig: &str,
        edge: EventModifier,
        oid: u64,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        ts: Timestamp,
    ) -> Vec<Detection> {
        self.signal_method(class, sig, edge, oid, params, txn, Some(ts), false)
    }

    /// Live method signal with a pre-assigned timestamp (pool delivery:
    /// the timestamp was drawn at submission so queue order equals
    /// timestamp order). Forwarded to the log/sink like
    /// [`Self::notify_method`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn notify_method_at_live(
        &self,
        class: &str,
        sig: &str,
        edge: EventModifier,
        oid: u64,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        ts: Timestamp,
    ) -> Vec<Detection> {
        if !self.signaling() {
            return Vec::new();
        }
        self.signal_method(class, sig, edge, oid, params, txn, Some(ts), true)
    }

    /// One method signal: route to the class's shard, timestamp under its
    /// order lock, record, propagate. In serial mode (batch recording)
    /// the whole signal runs quiesced instead.
    #[allow(clippy::too_many_arguments)]
    fn signal_method(
        &self,
        class: &str,
        sig: &str,
        edge: EventModifier,
        oid: u64,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        at: Option<Timestamp>,
        live: bool,
    ) -> Vec<Detection> {
        loop {
            if self.serial.load(Ordering::SeqCst) {
                return self.quiesce(|graph, shards| {
                    let label = graph
                        .class_events(class)
                        .first()
                        .map(|&id| graph.shard_of(id))
                        .unwrap_or(0);
                    let ts = self.stamp(at);
                    if live {
                        self.record(label, Arc::from(class), ts, txn, || LoggedEvent::Method {
                            class: class.to_string(),
                            sig: sig.to_string(),
                            edge,
                            oid,
                            params: params.clone(),
                            txn,
                            ts,
                        });
                    }
                    let labels = Self::all_labels(shards);
                    self.method_core(graph, shards, &labels, class, sig, edge, oid, params, txn, ts)
                });
            }
            let graph = self.graph.read();
            let shards = self.shards.read();
            let Some(&first) = graph.class_events(class).first() else {
                // No events declared for this class: nothing can match,
                // but the signal is still timestamped and recorded (the
                // journal must not drop it).
                let ts = self.stamp(at);
                if live {
                    self.record(0, Arc::from(class), ts, txn, || LoggedEvent::Method {
                        class: class.to_string(),
                        sig: sig.to_string(),
                        edge,
                        oid,
                        params: params.clone(),
                        txn,
                        ts,
                    });
                }
                self.signals.fetch_add(1, Ordering::Relaxed);
                return Vec::new();
            };
            let label = graph.shard_of(first);
            let shard = shards[label as usize].clone();
            let _order = self.lock_shard(&shard);
            if self.serial.load(Ordering::SeqCst) {
                // Recording switched on between the check above and the
                // shard lock: retry through the serial path, so the
                // drain in `start_recording` cannot miss this signal.
                continue;
            }
            let ts = self.stamp(at);
            if live {
                self.record(label, Arc::from(class), ts, txn, || LoggedEvent::Method {
                    class: class.to_string(),
                    sig: sig.to_string(),
                    edge,
                    oid,
                    params: params.clone(),
                    txn,
                    ts,
                });
            }
            return self.method_core(
                &graph,
                &shards,
                &[label],
                class,
                sig,
                edge,
                oid,
                params,
                txn,
                ts,
            );
        }
    }

    /// Propagates one timestamped method signal. Caller holds the graph
    /// read lock and the order lock of every shard in `fire_labels`
    /// (which includes the class's shard).
    #[allow(clippy::too_many_arguments)]
    fn method_core(
        &self,
        graph: &EventGraph,
        shards: &[Arc<ShardState>],
        fire_labels: &[u32],
        class: &str,
        sig: &str,
        edge: EventModifier,
        oid: u64,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        ts: Timestamp,
    ) -> Vec<Detection> {
        self.signals.fetch_add(1, Ordering::Relaxed);
        if let Some(&first) = graph.class_events(class).first() {
            shards[graph.shard_of(first) as usize].signals.fetch_add(1, Ordering::Relaxed);
        }
        let tracer = self.tracer();
        let signal_span = tracer
            .as_deref()
            .map(|s| Self::open_signal_span(s, Arc::from(format!("{class}::{sig}"))));
        let signal_ctx = signal_span.as_ref().map(|h| h.ctx);
        let mut detections = self.fire_due_alarms(graph, shards, fire_labels, ts);
        // "When the local event detector is notified of a method invocation
        // for a class, the invocation is propagated only to the primitive
        // events defined for that class" (§3.2).
        let candidates: Vec<EventId> = graph.class_events(class).to_vec();
        for leaf in candidates {
            // The leaf guard must be dropped before propagation (which
            // re-locks the leaf to deliver to its subscribers).
            let (name, prim_ctx) = {
                let node = graph.node(leaf);
                let crate::graph::NodeKind::Primitive { modifier, sig: node_sig, target, .. } =
                    &node.kind
                else {
                    continue;
                };
                // Signature check, then begin/end variant, then instance
                // filter.
                if node_sig.as_deref() != Some(sig) {
                    continue;
                }
                if !modifier.matches(edge) {
                    continue;
                }
                if let PrimTarget::Instance(want) = target {
                    if *want != oid {
                        continue;
                    }
                }
                let prim_ctx = match (tracer.as_deref(), signal_ctx) {
                    (Some(s), Some(sig_ctx)) => Some(Self::record_primitive_span(
                        s,
                        sig_ctx,
                        node.name.clone(),
                        ts,
                        txn,
                        Some(oid),
                    )),
                    _ => None,
                };
                (node.name.clone(), prim_ctx)
            };
            let occ = Occurrence::primitive_spanned(
                leaf,
                name,
                ts,
                txn,
                self.app,
                Some(oid),
                params.clone(),
                prim_ctx,
            );
            detections.extend(self.propagate(graph, shards, leaf, occ, None));
        }
        if let (Some(s), Some(h)) = (tracer.as_deref(), signal_span) {
            s.finish(h, 0, vec![("detections", Field::U64(detections.len() as u64))]);
        }
        detections
    }

    /// Records the (point) span of one primitive occurrence, parented on
    /// the signal span, and returns its context for the occurrence.
    fn record_primitive_span(
        store: &TraceStore,
        signal: SpanContext,
        name: Arc<str>,
        ts: Timestamp,
        txn: Option<u64>,
        oid: Option<u64>,
    ) -> SpanContext {
        let h = store.start(signal.trace, Some(signal.span), "primitive", name);
        let ctx = h.ctx;
        let mut fields = vec![("at", Field::U64(ts))];
        if let Some(t) = txn {
            fields.push(("txn", Field::U64(t)));
        }
        if let Some(o) = oid {
            fields.push(("oid", Field::U64(o)));
        }
        store.finish(h, 0, fields);
        ctx
    }

    /// Signals an explicit/abstract event by name (transaction events,
    /// user-raised events, forwarded global events). Unknown names are
    /// declared on the fly.
    pub fn signal_explicit(
        &self,
        name: &str,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
    ) -> Vec<Detection> {
        if !self.signaling() {
            return Vec::new();
        }
        self.signal_explicit_impl(name, params, txn, None, true)
    }

    /// Explicit signal with a pre-assigned timestamp (batch replay). Not
    /// forwarded to the log/sink — replaying a journal must not re-append
    /// to it.
    pub(crate) fn signal_explicit_at(
        &self,
        name: &str,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        ts: Timestamp,
    ) -> Vec<Detection> {
        self.signal_explicit_impl(name, params, txn, Some(ts), false)
    }

    /// Live explicit signal with a pre-assigned timestamp (pool
    /// delivery). Forwarded to the log/sink like
    /// [`Self::signal_explicit`].
    pub(crate) fn signal_explicit_at_live(
        &self,
        name: &str,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        ts: Timestamp,
    ) -> Vec<Detection> {
        if !self.signaling() {
            return Vec::new();
        }
        self.signal_explicit_impl(name, params, txn, Some(ts), true)
    }

    /// One explicit signal: ensure the leaf exists (a write-lock DDL step
    /// when unknown), then route to its shard, timestamp under its order
    /// lock, record, propagate. In serial mode (batch recording) the
    /// propagation runs quiesced instead.
    fn signal_explicit_impl(
        &self,
        name: &str,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        at: Option<Timestamp>,
        live: bool,
    ) -> Vec<Detection> {
        let leaf = self.ensure_explicit(name);
        loop {
            if self.serial.load(Ordering::SeqCst) {
                return self.quiesce(|graph, shards| {
                    let ts = self.stamp(at);
                    if live {
                        self.record(graph.shard_of(leaf), graph.name_of(leaf), ts, txn, || {
                            LoggedEvent::Explicit {
                                name: name.to_string(),
                                params: params.clone(),
                                txn,
                                ts,
                            }
                        });
                    }
                    let labels = Self::all_labels(shards);
                    self.explicit_core(graph, shards, &labels, leaf, params, txn, ts)
                });
            }
            let graph = self.graph.read();
            let shards = self.shards.read();
            let label = graph.shard_of(leaf);
            let shard = shards[label as usize].clone();
            let _order = self.lock_shard(&shard);
            if self.serial.load(Ordering::SeqCst) {
                // Recording switched on between the check above and the
                // shard lock: retry through the serial path, so the
                // drain in `start_recording` cannot miss this signal.
                continue;
            }
            let ts = self.stamp(at);
            if live {
                self.record(label, graph.name_of(leaf), ts, txn, || LoggedEvent::Explicit {
                    name: name.to_string(),
                    params: params.clone(),
                    txn,
                    ts,
                });
            }
            return self.explicit_core(&graph, &shards, &[label], leaf, params, txn, ts);
        }
    }

    /// Looks up an explicit event, declaring it (and its shard) if new.
    fn ensure_explicit(&self, name: &str) -> EventId {
        if let Some(id) = self.graph.read().lookup(name) {
            return id;
        }
        let mut graph = self.graph.write();
        let id = graph.declare_explicit(name);
        self.sync_shards(&mut graph);
        id
    }

    /// Propagates one timestamped explicit signal. Caller holds the graph
    /// read lock and the order lock of every shard in `fire_labels`
    /// (which includes the leaf's shard).
    #[allow(clippy::too_many_arguments)]
    fn explicit_core(
        &self,
        graph: &EventGraph,
        shards: &[Arc<ShardState>],
        fire_labels: &[u32],
        leaf: EventId,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        ts: Timestamp,
    ) -> Vec<Detection> {
        self.signals.fetch_add(1, Ordering::Relaxed);
        shards[graph.shard_of(leaf) as usize].signals.fetch_add(1, Ordering::Relaxed);
        let tracer = self.tracer();
        let mut detections = self.fire_due_alarms(graph, shards, fire_labels, ts);
        let leaf_name = graph.name_of(leaf);
        let signal_span = tracer.as_deref().map(|s| Self::open_signal_span(s, leaf_name.clone()));
        let prim_ctx = match (tracer.as_deref(), signal_span.as_ref()) {
            (Some(s), Some(h)) => {
                Some(Self::record_primitive_span(s, h.ctx, leaf_name.clone(), ts, txn, None))
            }
            _ => None,
        };
        let occ = Occurrence::primitive_spanned(
            leaf, leaf_name, ts, txn, self.app, None, params, prim_ctx,
        );
        detections.extend(self.propagate(graph, shards, leaf, occ, None));
        if let (Some(s), Some(h)) = (tracer.as_deref(), signal_span) {
            s.finish(h, 0, vec![("detections", Field::U64(detections.len() as u64))]);
        }
        detections
    }

    /// Advances logical time (firing due temporal alarms in every shard)
    /// without signalling any event.
    pub fn advance_time(&self, to: Timestamp) -> Vec<Detection> {
        self.clock.advance_to(to);
        self.quiesce(|graph, shards| {
            let labels = Self::all_labels(shards);
            let detections = self.fire_due_alarms(graph, shards, &labels, to);
            self.cut_fence(FenceKind::AdvanceTime(to));
            detections
        })
    }

    // --- propagation core ---------------------------------------------

    /// Pushes an occurrence created at `origin` through the graph.
    /// `ctx_filter` is None for leaf occurrences (which feed every active
    /// context of each parent) and Some(c) for operator emissions (which
    /// stay within their context). Everything reachable from `origin`
    /// lives in `origin`'s shard, whose order lock the caller holds.
    fn propagate(
        &self,
        graph: &EventGraph,
        shards: &[Arc<ShardState>],
        origin: EventId,
        occ: Arc<Occurrence>,
        ctx_filter: Option<ParamContext>,
    ) -> Vec<Detection> {
        let mut detections = Vec::new();
        let bus = self.trace.read().clone();
        let tracer = self.tracer();
        let mut work: Vec<(EventId, Arc<Occurrence>, Option<ParamContext>)> =
            vec![(origin, occ, ctx_filter)];
        while let Some((node_id, occ, filter)) = work.pop() {
            // Statistics: one occurrence of this node's event. Composite
            // occurrences are tagged with their context; count once per
            // (node, context-or-leaf) pop, which matches detection counts.
            *shards[graph.shard_of(node_id) as usize].counts.lock().entry(node_id).or_default() +=
                1;
            // Deliver to rule subscribers of this node.
            {
                let node = graph.node(node_id);
                let contexts: &[ParamContext] = match filter {
                    Some(ref ctx) => std::slice::from_ref(ctx),
                    // A primitive occurrence satisfies a direct rule
                    // subscription in any context (contexts only matter
                    // for composite grouping).
                    None => &ParamContext::ALL,
                };
                for &ctx in contexts {
                    if node.rule_subs[ctx.index()].is_empty() {
                        continue;
                    }
                    if let Some(bus) = bus.as_deref().filter(|b| b.is_active()) {
                        bus.emit(
                            "detector",
                            "detection",
                            vec![
                                ("event", Field::Str(node.name.clone())),
                                ("context", Field::Str(Arc::from(ctx_name(ctx)))),
                                ("at", Field::U64(occ.at)),
                                (
                                    "subscribers",
                                    Field::U64(node.rule_subs[ctx.index()].len() as u64),
                                ),
                            ],
                        );
                    }
                    detections.push(Detection {
                        event: node_id,
                        context: ctx,
                        occurrence: occ.clone(),
                        subscribers: node.rule_subs[ctx.index()].clone(),
                    });
                }
            }
            // Feed parents. Edges to the same parent are grouped: a binary
            // operator whose two children are the same node (`a ; a`)
            // receives the occurrence once through the dual-role path;
            // other multi-role deliveries go terminator-role first
            // (descending), so an occurrence can close a window opened by
            // an earlier occurrence before re-initiating.
            let mut parents = graph.node(node_id).parents.clone();
            parents.sort_by_key(|(p, r)| (p.0, std::cmp::Reverse(*r)));
            let mut i = 0;
            while i < parents.len() {
                let (parent_id, first_role) = parents[i];
                let mut roles = vec![first_role];
                while i + 1 < parents.len() && parents[i + 1].0 == parent_id {
                    i += 1;
                    roles.push(parents[i].1);
                }
                i += 1;
                let (contexts, is_binary, is_temporal) = {
                    let parent = graph.node(parent_id);
                    let contexts: Vec<ParamContext> = match filter {
                        Some(c) => {
                            if parent.active(c) {
                                vec![c]
                            } else {
                                Vec::new()
                            }
                        }
                        None => {
                            ParamContext::ALL.into_iter().filter(|c| parent.active(*c)).collect()
                        }
                    };
                    let is_binary = matches!(
                        parent.kind,
                        crate::graph::NodeKind::And(..)
                            | crate::graph::NodeKind::Or(..)
                            | crate::graph::NodeKind::Seq(..)
                    );
                    (contexts, is_binary, parent.kind.is_temporal())
                };
                for ctx in contexts {
                    // The parent guard must be dropped before building the
                    // occurrence (which re-locks the parent for its name).
                    let emissions = {
                        let mut parent = graph.node(parent_id);
                        parent.consumed[ctx.index()] += 1;
                        let ems = if roles.len() == 2 && is_binary {
                            parent.on_child_dual(&occ, ctx)
                        } else {
                            let mut ems = Vec::new();
                            for &role in &roles {
                                ems.extend(parent.on_child(role, &occ, ctx));
                            }
                            ems
                        };
                        parent.emitted[ctx.index()] += ems.len() as u64;
                        ems
                    };
                    for em in emissions {
                        let comp =
                            self.make_occurrence(graph, parent_id, em, ctx, tracer.as_deref());
                        work.push((parent_id, comp, Some(ctx)));
                    }
                    if is_temporal {
                        self.reschedule(graph, shards, parent_id);
                    }
                }
            }
        }
        detections
    }

    /// Builds the composite occurrence for one operator emission. When a
    /// span store is enabled, records a per-context "detect" span: its
    /// trace/parent come from the terminating constituent (the one whose
    /// signal completed the detection) and it links every constituent's
    /// span — the linked parameter list, lifted into the trace model.
    fn make_occurrence(
        &self,
        graph: &EventGraph,
        node: EventId,
        em: Emission,
        ctx: ParamContext,
        tracer: Option<&TraceStore>,
    ) -> Arc<Occurrence> {
        let name = graph.name_of(node);
        let span = tracer.map(|s| {
            let terminator = em.constituents.iter().max_by_key(|o| o.at);
            let anchor = terminator
                .and_then(|o| o.span)
                .or_else(|| em.constituents.iter().rev().find_map(|o| o.span));
            let (trace, parent) = match anchor {
                Some(a) => (a.trace, Some(a.span)),
                // No traced constituent (e.g. a periodic alarm tick, or
                // tracing enabled mid-composition): start a fresh trace.
                None => (s.new_trace(), None),
            };
            let links: Vec<SpanContext> = em.constituents.iter().filter_map(|o| o.span).collect();
            let h = s.start(trace, parent, "detect", name.clone());
            let ctx_out = h.ctx;
            s.finish_linked(h, 0, links, vec![("context", Field::from(ctx_name(ctx)))]);
            ctx_out
        });
        if em.at.is_none() && em.params.is_empty() {
            Occurrence::composite_spanned(node, name, em.constituents, span)
        } else {
            let mut constituents = em.constituents;
            constituents.sort_by_key(|o| o.at);
            let at = em.at.unwrap_or_else(|| constituents.last().map_or(0, |o| o.at));
            let txn = constituents.last().and_then(|o| o.txn);
            Arc::new(Occurrence {
                event: node,
                event_name: name,
                at,
                txn,
                app: self.app,
                source: None,
                params: em.params,
                constituents,
                span,
            })
        }
    }

    /// Re-queues a temporal node's next alarm on its shard's heap.
    fn reschedule(&self, graph: &EventGraph, shards: &[Arc<ShardState>], node: EventId) {
        if let Some(due) = graph.node(node).earliest_due() {
            shards[graph.shard_of(node) as usize].alarms.lock().push(Reverse((due, node)));
        }
    }

    /// Fires every alarm due at `now` in the given shards (a signal fires
    /// its own shard's alarms; `advance_time` and serial mode fire all).
    fn fire_due_alarms(
        &self,
        graph: &EventGraph,
        shards: &[Arc<ShardState>],
        labels: &[u32],
        now: Timestamp,
    ) -> Vec<Detection> {
        let mut detections = Vec::new();
        let tracer = self.tracer();
        for &label in labels {
            let Some(shard) = shards.get(label as usize) else { continue };
            loop {
                let next = {
                    let mut alarms = shard.alarms.lock();
                    match alarms.peek() {
                        Some(Reverse((due, _))) if *due <= now => alarms.pop(),
                        _ => None,
                    }
                };
                let Some(Reverse((_, node_id))) = next else { break };
                for ctx in ParamContext::ALL {
                    if !graph.node(node_id).active(ctx) {
                        continue;
                    }
                    let emissions = {
                        let mut node = graph.node(node_id);
                        let ems = node.fire_alarms(now, ctx);
                        node.emitted[ctx.index()] += ems.len() as u64;
                        ems
                    };
                    for em in emissions {
                        let occ = self.make_occurrence(graph, node_id, em, ctx, tracer.as_deref());
                        detections.extend(self.propagate(graph, shards, node_id, occ, Some(ctx)));
                    }
                }
                self.reschedule(graph, shards, node_id);
            }
        }
        detections
    }

    // --- transaction hygiene -------------------------------------------

    /// Flushes every buffered occurrence belonging to `txn` from the whole
    /// graph (invoked on commit/abort so "events are not carried over across
    /// transaction boundaries", §3.2 item 3). Quiesces all shards.
    pub fn flush_txn(&self, txn: u64) {
        self.quiesce(|graph, _| {
            let mut removed = 0u64;
            for id in graph.node_ids() {
                removed += graph.node(id).flush_txn(txn) as u64;
            }
            self.flush_calls.inc();
            self.flushed.add(removed);
            if let Some(bus) = self.trace.read().as_deref().filter(|b| b.is_active()) {
                bus.emit(
                    "detector",
                    "flush_txn",
                    vec![("txn", Field::U64(txn)), ("removed", Field::U64(removed))],
                );
            }
            // A flush performed inside a traced span (commit/abort
            // processing within a rule action) shows up as a child of that
            // span.
            if let (Some(s), Some(cur)) = (self.tracer(), span::current()) {
                let h = s.start(cur.trace, Some(cur.span), "flush", Arc::from("flush_txn"));
                s.finish(h, 0, vec![("txn", Field::U64(txn)), ("removed", Field::U64(removed))]);
            }
            self.cut_fence(FenceKind::FlushTxn(txn));
        })
    }

    /// Flushes the state of one event's sub-graph (the paper's selective
    /// flush for an event expression). Errors on an id that names no node
    /// of this detector's graph.
    pub fn flush_event(&self, event: EventId) -> Result<(), GraphError> {
        self.quiesce(|graph, _| {
            graph.check(event)?;
            let mut stack = vec![event];
            while let Some(id) = stack.pop() {
                for (child, _) in graph.node(id).kind.children() {
                    stack.push(child);
                }
                graph.node(id).flush_all_state();
            }
            self.cut_fence(FenceKind::Barrier);
            Ok(())
        })
    }

    /// Flushes the entire event graph.
    pub fn flush_all(&self) {
        self.quiesce(|graph, shards| {
            for id in graph.node_ids() {
                graph.node(id).flush_all_state();
            }
            for shard in shards {
                shard.alarms.lock().clear();
            }
            self.cut_fence(FenceKind::Barrier);
        })
    }

    // --- batch (event-log) detection -------------------------------------

    /// Starts recording signalled primitive events. Recording switches the
    /// detector to serial mode so the log order equals timestamp order.
    pub fn start_recording(&self) {
        let _admin = self.sink_admin.lock();
        self.serial.store(true, Ordering::SeqCst);
        // Quiesce once so every signal already in flight (which loaded
        // serial=false and already passed its post-lock re-check) drains
        // before the log is installed.
        self.quiesce(|_, _| {
            *self.log.lock() = Some(Vec::new());
        });
    }

    /// Stops recording and returns the log.
    pub fn take_log(&self) -> Vec<LoggedEvent> {
        let _admin = self.sink_admin.lock();
        // The serial recomputation happens inside the quiesce: done after
        // it, a signal could sneak between the take and the store and
        // miss both the log (gone) and the serial path (flag still on —
        // harmless) — or, worse, a racing `start_recording` without the
        // admin lock could have its serial=true clobbered to false.
        self.quiesce(|_, _| {
            let log = self.log.lock().take().unwrap_or_default();
            self.refresh_serial();
            log
        })
    }

    /// Attaches an event sink; every subsequently accepted primitive event
    /// is forwarded to it synchronously (see [`EventSink`]). Signals keep
    /// running in parallel — the sink observes each shard's stream under
    /// that shard's order lock, with fences at whole-graph operations.
    pub fn set_event_sink(&self, sink: Arc<dyn EventSink>) {
        let _admin = self.sink_admin.lock();
        // Quiesce once so every signal already in flight drains before
        // the sink can observe anything: attach is a clean cut.
        self.quiesce(|_, _| {
            *self.sink.write() = Some(sink);
        });
    }

    /// Detaches the event sink, if any. The quiesce drains every
    /// in-flight signal, so after return the sink is guaranteed to
    /// receive no further records.
    pub fn clear_event_sink(&self) {
        let _admin = self.sink_admin.lock();
        self.quiesce(|_, _| {
            *self.sink.write() = None;
        });
    }

    /// Records one accepted signal: flight-recorded always (the label is
    /// an `Arc` clone of an interned name — no allocation), materialized
    /// into a [`LoggedEvent`] via `make` only when a batch-recording log
    /// or a durable sink is actually attached. An in-memory system thus
    /// pays no per-signal string/param clones on the hot path.
    fn record(
        &self,
        shard: u32,
        label: Arc<str>,
        ts: Timestamp,
        txn: Option<u64>,
        make: impl FnOnce() -> LoggedEvent,
    ) {
        // Flight-record the accepted signal before the sink call: a sink
        // may block on a group commit, and the committer's dump should
        // already see this entry.
        sentinel_obs::flight::global().record(
            sentinel_obs::flight::FlightKind::Signal,
            label,
            ts,
            txn.unwrap_or(0),
        );
        if self.log.lock().is_none() && self.sink.read().is_none() {
            return;
        }
        let ev = make();
        if let Some(log) = self.log.lock().as_mut() {
            log.push(ev.clone());
        }
        // Clone the Arc out so the sink lock is not held across the call
        // (the sink may block on a group commit).
        let sink = self.sink.read().clone();
        if let Some(sink) = sink {
            sink.record(self, shard, &ev);
        }
    }

    /// Runs `f` with signalling quiesced: the graph lock and every shard's
    /// order lock are held, so no primitive event can be timestamped or
    /// propagated concurrently in any shard. Used for externally-triggered
    /// checkpoints; `f` may re-enter the detector (snapshot, restore,
    /// stats, flush) but must not signal or define events. Cuts a
    /// [`FenceKind::Barrier`] fence through the sink, so a count-based
    /// checkpoint tag taken inside `f` names an exact prefix of the
    /// journal's merged replay order.
    pub fn with_signals_paused<R>(&self, f: impl FnOnce() -> R) -> R {
        self.quiesce(|_, _| {
            self.cut_fence(FenceKind::Barrier);
            f()
        })
    }

    // --- checkpointable state ------------------------------------------

    /// Captures all detection state (buffered occurrences, open windows,
    /// pending temporal alarms, the clock) as a [`GraphSnapshot`].
    /// Quiesces all shards; safe to call from [`EventSink::fence`] (the
    /// fencing thread already holds the quiesce, so the nested call
    /// reuses the held locks) and from [`Self::with_signals_paused`]
    /// closures — but **not** from [`EventSink::record`], which holds
    /// only one shard's order lock.
    pub fn snapshot_state(&self) -> GraphSnapshot {
        self.quiesce(|graph, _| {
            let nodes = graph
                .node_ids()
                .map(|id| graph.node(id))
                .filter(|n| n.state.iter().any(|s| !s.is_empty()))
                .map(|n| NodeSnapshot {
                    id: n.id,
                    name: n.name.clone(),
                    shard: graph.shard_of(n.id),
                    state: n.state.clone(),
                })
                .collect();
            GraphSnapshot { clock: self.clock.peek(), nodes }
        })
    }

    /// Restores a previously captured [`GraphSnapshot`] into this
    /// detector's graph. The graph must have been rebuilt with the same
    /// definitions (every snapshot node id must exist and carry the same
    /// name); the snapshot is validated in full before any state is
    /// applied, so a failed restore leaves the detector untouched. On
    /// success the clock is advanced to the snapshot's clock and temporal
    /// alarms are rebuilt, on their current shards, from the restored
    /// windows — snapshot shard labels are ignored, so a snapshot cut
    /// before a component merge (or by the pre-shard format) restores
    /// cleanly into the current sharding.
    pub fn restore_snapshot(&self, snap: &GraphSnapshot) -> Result<(), RestoreError> {
        self.quiesce(|graph, shards| {
            for ns in &snap.nodes {
                if graph.check(ns.id).is_err() {
                    return Err(RestoreError::UnknownNode(ns.id));
                }
                let found = graph.node(ns.id).name.clone();
                if found != ns.name {
                    return Err(RestoreError::NameMismatch {
                        id: ns.id,
                        expected: ns.name.clone(),
                        found,
                    });
                }
            }
            for id in graph.node_ids() {
                graph.node(id).state = Default::default();
            }
            for ns in &snap.nodes {
                graph.node(ns.id).state = ns.state.clone();
            }
            self.clock.advance_to(snap.clock);
            for shard in shards {
                shard.alarms.lock().clear();
            }
            for id in graph.temporal_nodes() {
                if let Some(due) = graph.node(id).earliest_due() {
                    shards[graph.shard_of(id) as usize].alarms.lock().push(Reverse((due, id)));
                }
            }
            Ok(())
        })
    }

    /// Replays a primitive-event log through this detector's graph (batch /
    /// after-the-fact detection, §2.1). Timestamps from the log are
    /// preserved, so batch detection yields exactly the online detections.
    ///
    /// After the replay the clock is resynchronized past the highest
    /// replayed timestamp (not merely the last record's: a journal
    /// recovered from a crash can carry an unsorted tail), so fresh
    /// signals can never tick behind recovered history — order-sensitive
    /// operators like chronicle `SEQ` would silently misorder otherwise.
    pub fn replay(&self, log: &[LoggedEvent]) -> Vec<Detection> {
        let mut out = Vec::new();
        let mut max_ts = 0;
        for ev in log {
            max_ts = max_ts.max(ev.ts());
            match ev {
                LoggedEvent::Method { class, sig, edge, oid, params, txn, ts } => {
                    out.extend(self.notify_method_at(
                        class,
                        sig,
                        *edge,
                        *oid,
                        params.clone(),
                        *txn,
                        *ts,
                    ));
                }
                LoggedEvent::Explicit { name, params, txn, ts } => {
                    out.extend(self.signal_explicit_at(name, params.clone(), *txn, *ts));
                }
            }
        }
        self.clock.advance_to(max_ts);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_snoop::parse_event_expr;

    const SIG_SELL: &str = "int sell_stock(int qty)";
    const SIG_SET: &str = "void set_price(float price)";

    fn detector() -> LocalEventDetector {
        let d = LocalEventDetector::new(0);
        d.declare_primitive("e1", "STOCK", EventModifier::End, SIG_SELL, PrimTarget::AnyInstance)
            .unwrap();
        d.declare_primitive("e2", "STOCK", EventModifier::Begin, SIG_SET, PrimTarget::AnyInstance)
            .unwrap();
        d.declare_primitive("e3", "STOCK", EventModifier::End, SIG_SET, PrimTarget::AnyInstance)
            .unwrap();
        d
    }

    fn sell(d: &LocalEventDetector, oid: u64, qty: i64, txn: u64) -> Vec<Detection> {
        d.notify_method(
            "STOCK",
            SIG_SELL,
            EventModifier::End,
            oid,
            vec![(Arc::from("qty"), Value::Int(qty))],
            Some(txn),
        )
    }

    fn set_price(d: &LocalEventDetector, oid: u64, price: f64, txn: u64) -> Vec<Detection> {
        let mut out = d.notify_method(
            "STOCK",
            SIG_SET,
            EventModifier::Begin,
            oid,
            vec![(Arc::from("price"), Value::Float(price))],
            Some(txn),
        );
        out.extend(d.notify_method(
            "STOCK",
            SIG_SET,
            EventModifier::End,
            oid,
            vec![(Arc::from("price"), Value::Float(price))],
            Some(txn),
        ));
        out
    }

    #[test]
    fn primitive_rule_subscription_fires() {
        let d = detector();
        let e1 = d.lookup("e1").unwrap();
        d.subscribe(e1, ParamContext::Recent, 42).unwrap();
        let dets = sell(&d, 7, 100, 1);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].subscribers, vec![42]);
        assert_eq!(dets[0].occurrence.param("qty"), Some(&Value::Int(100)));
        assert_eq!(dets[0].occurrence.source, Some(7));
    }

    #[test]
    fn begin_and_end_variants_are_distinct() {
        let d = detector();
        let e2 = d.lookup("e2").unwrap(); // begin(set_price)
        let e3 = d.lookup("e3").unwrap(); // end(set_price)
        d.subscribe(e2, ParamContext::Recent, 2).unwrap();
        d.subscribe(e3, ParamContext::Recent, 3).unwrap();
        let dets = set_price(&d, 1, 55.5, 1);
        assert_eq!(dets.len(), 2);
        assert_eq!(dets[0].event, e2);
        assert_eq!(dets[1].event, e3);
        assert!(dets[0].occurrence.at < dets[1].occurrence.at);
    }

    #[test]
    fn composite_and_detects_the_paper_e4() {
        let d = detector();
        let expr = parse_event_expr("e1 ^ e2").unwrap();
        let e4 = d.define_named("e4", &expr).unwrap();
        d.subscribe(e4, ParamContext::Cumulative, 9).unwrap();
        assert!(sell(&d, 1, 10, 1).is_empty());
        let dets = set_price(&d, 1, 2.0, 1);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].event, e4);
        assert_eq!(dets[0].context, ParamContext::Cumulative);
        let prims = dets[0].occurrence.param_list().len();
        assert_eq!(prims, 2);
    }

    #[test]
    fn same_event_detected_in_two_contexts_simultaneously() {
        let d = detector();
        let expr = parse_event_expr("e1 ^ e2").unwrap();
        let e4 = d.define_named("e4", &expr).unwrap();
        d.subscribe(e4, ParamContext::Recent, 1).unwrap();
        d.subscribe(e4, ParamContext::Chronicle, 2).unwrap();
        sell(&d, 1, 10, 1);
        let dets = set_price(&d, 1, 2.0, 1);
        let mut ctxs: Vec<_> = dets.iter().map(|d| d.context).collect();
        ctxs.sort();
        assert_eq!(ctxs, vec![ParamContext::Recent, ParamContext::Chronicle]);
    }

    #[test]
    fn instance_level_event_filters_by_oid() {
        let d = detector();
        d.declare_primitive(
            "ibm_sell",
            "STOCK",
            EventModifier::End,
            SIG_SELL,
            PrimTarget::Instance(77),
        )
        .unwrap();
        let ev = d.lookup("ibm_sell").unwrap();
        d.subscribe(ev, ParamContext::Recent, 5).unwrap();
        assert!(sell(&d, 1, 10, 1).is_empty(), "other instance ignored");
        let dets = sell(&d, 77, 10, 1);
        assert_eq!(dets.len(), 1);
    }

    #[test]
    fn class_and_instance_rules_fire_together() {
        // The paper's any_stk_price (class) + set_IBM_price (instance).
        let d = detector();
        d.declare_primitive(
            "any_sell",
            "STOCK",
            EventModifier::End,
            SIG_SELL,
            PrimTarget::AnyInstance,
        )
        .unwrap();
        d.declare_primitive(
            "ibm_sell",
            "STOCK",
            EventModifier::End,
            SIG_SELL,
            PrimTarget::Instance(77),
        )
        .unwrap();
        d.subscribe(d.lookup("any_sell").unwrap(), ParamContext::Recent, 1).unwrap();
        d.subscribe(d.lookup("ibm_sell").unwrap(), ParamContext::Recent, 2).unwrap();
        // e1 also matches the same method but has no subscribers.
        let dets = sell(&d, 77, 10, 1);
        let mut subs: Vec<_> = dets.iter().flat_map(|d| d.subscribers.clone()).collect();
        subs.sort();
        assert_eq!(subs, vec![1, 2]);
    }

    #[test]
    fn signaling_disabled_suppresses_events() {
        let d = detector();
        let e1 = d.lookup("e1").unwrap();
        d.subscribe(e1, ParamContext::Recent, 1).unwrap();
        d.set_signaling(false);
        assert!(sell(&d, 1, 10, 1).is_empty());
        d.set_signaling(true);
        assert_eq!(sell(&d, 1, 10, 1).len(), 1);
    }

    #[test]
    fn flush_txn_prevents_cross_transaction_composites() {
        let d = detector();
        let expr = parse_event_expr("e1 ; e3").unwrap();
        let seq = d.define_named("seq13", &expr).unwrap();
        d.subscribe(seq, ParamContext::Chronicle, 1).unwrap();
        // T1 raises the initiator, then aborts -> flush.
        sell(&d, 1, 10, 1);
        d.flush_txn(1);
        // T2's terminator must NOT pair with T1's initiator.
        let dets = set_price(&d, 1, 2.0, 2);
        assert!(dets.is_empty(), "event crossed a transaction boundary");
        // Within T2 alone the sequence completes.
        sell(&d, 1, 10, 2);
        let dets = set_price(&d, 1, 2.0, 2);
        assert_eq!(dets.len(), 1);
    }

    #[test]
    fn deferred_rewrite_shape_a_star_over_txn_events() {
        // A*(begin-transaction, e1, pre-commit-transaction): the deferred
        // coupling rewrite of §3.1 — fires exactly once per transaction.
        let d = detector();
        let expr = parse_event_expr("A*(begin-transaction, e1, pre-commit-transaction)").unwrap();
        let ev = d.define_named("def_rule_event", &expr).unwrap();
        d.subscribe(ev, ParamContext::Recent, 1).unwrap();

        d.signal_explicit("begin-transaction", Vec::new(), Some(1));
        sell(&d, 1, 10, 1);
        sell(&d, 1, 20, 1);
        sell(&d, 1, 30, 1);
        let dets = d.signal_explicit("pre-commit-transaction", Vec::new(), Some(1));
        assert_eq!(dets.len(), 1, "deferred rule executes exactly once");
        // All three triggerings are in the parameter list (net effect).
        let prims = dets[0].occurrence.param_list();
        let sells = prims.iter().filter(|p| &*p.event_name == "e1").count();
        assert_eq!(sells, 3);

        // Second transaction with no e1: no firing at pre-commit.
        d.signal_explicit("begin-transaction", Vec::new(), Some(2));
        let dets = d.signal_explicit("pre-commit-transaction", Vec::new(), Some(2));
        assert!(dets.is_empty());
    }

    #[test]
    fn temporal_plus_fires_via_clock_advance() {
        let d = detector();
        let expr = parse_event_expr("PLUS(e1, 100)").unwrap();
        let ev = d.define_named("late", &expr).unwrap();
        d.subscribe(ev, ParamContext::Recent, 1).unwrap();
        sell(&d, 1, 10, 1); // ts = 1, due = 101
        assert!(d.advance_time(100).is_empty());
        let dets = d.advance_time(101);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].occurrence.at, 101);
    }

    #[test]
    fn periodic_fires_between_start_and_end_events() {
        let d = detector();
        let expr = parse_event_expr("P(e1, 10, e3)").unwrap();
        let ev = d.define_named("tick", &expr).unwrap();
        d.subscribe(ev, ParamContext::Recent, 1).unwrap();
        sell(&d, 1, 10, 1); // ts=1 -> ticks at 11, 21, …
        let dets = d.advance_time(25);
        assert_eq!(dets.len(), 2);
        assert_eq!(dets[0].occurrence.at, 11);
        assert_eq!(dets[1].occurrence.at, 21);
        set_price(&d, 1, 1.0, 1); // end closes the window
        assert!(d.advance_time(100).is_empty());
    }

    #[test]
    fn batch_replay_reproduces_online_detections() {
        // Online run with recording.
        let online = detector();
        let expr = parse_event_expr("e1 ^ e2").unwrap();
        let e4 = online.define_named("e4", &expr).unwrap();
        online.subscribe(e4, ParamContext::Chronicle, 1).unwrap();
        online.start_recording();
        sell(&online, 1, 10, 1);
        let online_dets = set_price(&online, 1, 2.0, 1);
        let log = online.take_log();
        assert_eq!(log.len(), 3);

        // Batch run over the stored log with the same graph shape.
        let batch = detector();
        let e4b = batch.define_named("e4", &expr).unwrap();
        batch.subscribe(e4b, ParamContext::Chronicle, 1).unwrap();
        let batch_dets = batch.replay(&log);
        assert_eq!(batch_dets.len(), online_dets.len());
        assert_eq!(
            batch_dets[0].occurrence.param_list().len(),
            online_dets[0].occurrence.param_list().len()
        );
        assert_eq!(batch_dets[0].occurrence.at, online_dets[0].occurrence.at);
    }

    #[test]
    fn unsubscribe_stops_detection_when_counter_zero() {
        let d = detector();
        let expr = parse_event_expr("e1 ^ e2").unwrap();
        let e4 = d.define_named("e4", &expr).unwrap();
        d.subscribe(e4, ParamContext::Recent, 1).unwrap();
        sell(&d, 1, 10, 1);
        d.unsubscribe(e4, ParamContext::Recent, 1).unwrap();
        // Buffered state dropped; re-subscribing starts fresh (NOW-like).
        d.subscribe(e4, ParamContext::Recent, 1).unwrap();
        let dets = set_price(&d, 1, 2.0, 1);
        assert!(dets.is_empty(), "old initiator must be gone");
    }

    #[test]
    fn stats_count_signals_and_per_event_occurrences() {
        let d = detector();
        let expr = parse_event_expr("e1 ^ e2").unwrap();
        let e4 = d.define_named("e4", &expr).unwrap();
        d.subscribe(e4, ParamContext::Recent, 1).unwrap();
        sell(&d, 1, 10, 1); // e1
        sell(&d, 1, 20, 1); // e1
        set_price(&d, 1, 2.0, 1); // e2 + e3 (two signals) -> e4 detected
        let stats = d.stats();
        assert_eq!(stats.signals, 4);
        let count = |name: &str| {
            stats.per_event.iter().find(|(n, _)| &**n == name).map(|(_, c)| *c).unwrap_or(0)
        };
        assert_eq!(count("e1"), 2);
        assert_eq!(count("e2"), 1);
        assert_eq!(count("e4"), 1, "composite detections counted too");
    }

    #[test]
    fn nested_composites_flow_upward() {
        let d = detector();
        let expr = parse_event_expr("(e1 ^ e2) ; e3").unwrap();
        let ev = d.define_named("nested", &expr).unwrap();
        d.subscribe(ev, ParamContext::Chronicle, 1).unwrap();
        sell(&d, 1, 10, 1); // e1
                            // set_price raises begin(e2) at t2 and end(e3) at t3:
                            // (e1 ^ e2) completes at t2, then e3 at t3 completes the SEQ.
        let dets = set_price(&d, 1, 2.0, 1);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].occurrence.param_list().len(), 3);
    }

    #[test]
    fn shard_stats_track_disjoint_components() {
        let d = LocalEventDetector::new(0);
        let a = d.declare_explicit("a");
        let b = d.declare_explicit("b");
        d.subscribe(a, ParamContext::Recent, 1).unwrap();
        d.subscribe(b, ParamContext::Recent, 2).unwrap();
        let sa = d.shard_of_event("a");
        let sb = d.shard_of_event("b");
        assert_ne!(sa, sb, "disjoint events live in disjoint shards");
        d.signal_explicit("a", Vec::new(), None);
        d.signal_explicit("a", Vec::new(), None);
        d.signal_explicit("b", Vec::new(), None);
        let stats = d.stats();
        let shard = |label: u32| stats.shards.iter().find(|s| s.shard == label).unwrap().clone();
        assert_eq!(shard(sa).signals, 2);
        assert_eq!(shard(sb).signals, 1);
    }

    #[test]
    fn event_sink_may_snapshot_reentrantly_from_fence() {
        // The durable journal checkpoints from inside EventSink::fence;
        // fences run with all shards quiesced by the fencing thread, so
        // the nested whole-graph calls must reuse the held locks instead
        // of deadlocking. `record` meanwhile runs per shard.
        struct SnapSink {
            records: Mutex<Vec<(u32, Timestamp)>>,
            fences: Mutex<Vec<(FenceKind, usize)>>,
        }
        impl EventSink for SnapSink {
            fn record(&self, _detector: &LocalEventDetector, shard: u32, ev: &LoggedEvent) {
                self.records.lock().push((shard, ev.ts()));
            }
            fn fence(&self, detector: &LocalEventDetector, kind: FenceKind, _ts: Timestamp) {
                let snap = detector.snapshot_state();
                detector.stats();
                self.fences.lock().push((kind, snap.nodes.len()));
            }
        }
        let d = detector();
        let expr = parse_event_expr("e1 ; e3").unwrap();
        let seq = d.define_named("seq13", &expr).unwrap();
        d.subscribe(seq, ParamContext::Chronicle, 1).unwrap();
        let sink =
            Arc::new(SnapSink { records: Mutex::new(Vec::new()), fences: Mutex::new(Vec::new()) });
        d.set_event_sink(sink.clone());
        sell(&d, 1, 10, 1);
        set_price(&d, 1, 2.0, 1);
        d.flush_txn(1);
        d.with_signals_paused(|| {});
        d.clear_event_sink();
        // After detach nothing further reaches the sink.
        sell(&d, 1, 10, 2);
        let records = sink.records.lock().clone();
        assert_eq!(records.len(), 3, "sink saw every signal while attached");
        assert!(records.windows(2).all(|w| w[0].1 < w[1].1), "one shard: timestamp order");
        let fences = sink.fences.lock().clone();
        assert_eq!(fences.len(), 2);
        assert_eq!(fences[0].0, FenceKind::FlushTxn(1));
        assert_eq!(fences[1].0, FenceKind::Barrier);
    }

    #[test]
    fn recording_attach_detach_survives_concurrent_signal_bursts() {
        // Regression: `start_recording` sets serial=true and then drains;
        // a signal that loaded serial=false before the store must either
        // complete before the log is installed (the drain waits on its
        // shard lock) or retry through the serial path (the post-lock
        // re-check) — so the log only ever sees timestamp-ordered
        // records. And `take_log` recomputes serial *inside* its quiesce
        // under the admin lock, so detach can never leave serial stuck on.
        let d = Arc::new(LocalEventDetector::new(0));
        d.declare_explicit("a");
        d.declare_explicit("b");
        let stop = Arc::new(AtomicBool::new(false));
        let threads: Vec<_> = ["a", "b"]
            .iter()
            .map(|&name| {
                let d = d.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        d.signal_explicit(name, Vec::new(), None);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            d.start_recording();
            std::thread::yield_now();
            let log = d.take_log();
            assert!(
                log.windows(2).all(|w| w[0].ts() < w[1].ts()),
                "recorded log must be in timestamp order"
            );
        }
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().unwrap();
        }
        assert!(!d.serial.load(Ordering::SeqCst), "serial stuck on after take_log");
    }

    #[test]
    fn with_signals_paused_is_reentrant_for_checkpoint_calls() {
        let d = detector();
        let expr = parse_event_expr("e1 ; e3").unwrap();
        let seq = d.define_named("seq13", &expr).unwrap();
        d.subscribe(seq, ParamContext::Chronicle, 1).unwrap();
        sell(&d, 1, 10, 1);
        let (a, b) = d.with_signals_paused(|| {
            // Both whole-graph reads happen inside one quiesce and must
            // observe the identical cut.
            (d.snapshot_state(), d.snapshot_state())
        });
        assert_eq!(a.encode(), b.encode());
        assert!(!a.nodes.is_empty(), "buffered initiator state captured");
        d.restore_snapshot(&a).unwrap();
        let dets = set_price(&d, 1, 2.0, 1);
        assert_eq!(dets.len(), 1, "restored initiator still pairs");
    }
}
